//! Phase-profiling harness for the interactive session hot path: breaks an
//! `add_example` update into its pipeline stages (context fold, snapshot,
//! abduction, query generation, evaluation, snapshot clone) on the IMDb
//! benchmark slate. Companion to `prof_adb.rs`.
//!
//! ```text
//! cargo run --release --example prof_session
//! ```
use squid_adb::ADb;
use squid_core::{
    abduce_filters, adb_query, evaluate, original_query, ContextState, Squid, SquidSession,
};
use squid_datasets::{generate_imdb, imdb_queries, ImdbConfig};
use std::time::Instant;

fn main() {
    let cfg = ImdbConfig {
        persons: 1_500,
        movies: 800,
        ..ImdbConfig::default()
    };
    let db = generate_imdb(&cfg);
    let adb = ADb::build(&db).unwrap();
    let queries = imdb_queries(&db);
    let q = queries.iter().find(|p| p.id == "IQ15").unwrap();
    let rs = squid_engine::Executor::new(&db).execute(&q.query).unwrap();
    let values = rs.project(&db, q.query.projection.as_str()).unwrap();
    let examples: Vec<String> = values.iter().take(5).map(|v| v.to_string()).collect();
    let refs: Vec<&str> = examples.iter().map(String::as_str).collect();
    let squid = Squid::new(&adb);
    let d = squid.discover(&refs).unwrap();
    let entity = adb.entity(&d.entity_table).unwrap();
    let rows = d.example_rows.clone();
    let params = squid_core::SquidParams::default();

    let n = 20000;
    // context fold (all 5 rows)
    let t = Instant::now();
    for _ in 0..n {
        let mut st = ContextState::new(entity);
        for &r in &rows {
            st.add_row(entity, r);
        }
        std::hint::black_box(st.candidates(entity, &params));
    }
    println!("ctx fold x5 + snapshot: {:?}", t.elapsed() / n);

    let mut st = ContextState::new(entity);
    for &r in &rows {
        st.add_row(entity, r);
    }
    let t = Instant::now();
    for _ in 0..n {
        std::hint::black_box(st.candidates(entity, &params));
    }
    println!("ctx snapshot only:      {:?}", t.elapsed() / n);

    let cands = st.candidates(entity, &params);
    let t = Instant::now();
    for _ in 0..n {
        std::hint::black_box(abduce_filters(cands.clone(), rows.len(), &params));
    }
    println!("abduce (incl clone):    {:?}", t.elapsed() / n);

    let scored = abduce_filters(cands.clone(), rows.len(), &params);
    let chosen: Vec<_> = scored
        .iter()
        .filter(|s| s.included)
        .map(|s| s.filter.clone())
        .collect();
    println!("candidates: {}, chosen: {}", cands.len(), chosen.len());
    let t = Instant::now();
    for _ in 0..n {
        std::hint::black_box(original_query(entity, &chosen, "title"));
    }
    println!("original_query:         {:?}", t.elapsed() / n);
    let t = Instant::now();
    for _ in 0..n {
        std::hint::black_box(adb_query(entity, &chosen, "title"));
    }
    println!("adb_query:              {:?}", t.elapsed() / n);
    let t = Instant::now();
    for _ in 0..n {
        std::hint::black_box(evaluate(entity, &chosen));
    }
    println!("evaluate:               {:?}", t.elapsed() / n);
    let t = Instant::now();
    for _ in 0..n {
        std::hint::black_box(d.clone());
    }
    println!("discovery clone:        {:?}", t.elapsed() / n);

    // session add timing sanity
    let mut base = SquidSession::new(&adb);
    for e in &refs[..4] {
        base.add_example(e).unwrap();
    }
    let t = Instant::now();
    for _ in 0..2000 {
        let mut s = base.clone();
        std::hint::black_box(s.add_example(refs[4]).unwrap());
    }
    println!("clone + add 5th:        {:?}", t.elapsed() / 2000);
}
