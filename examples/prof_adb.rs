//! Ad-hoc profiling harness for αDB build phases (not part of the test
//! suite; run with `cargo run --release --example prof_adb`).
use std::time::Instant;

use squid_adb::{ADb, AdbConfig};
use squid_datasets::{generate_imdb, ImdbConfig};
use squid_relation::InvertedIndex;

fn main() {
    let cfg = ImdbConfig {
        persons: 1_500,
        movies: 800,
        ..ImdbConfig::default()
    };
    let db = generate_imdb(&cfg);
    let _ = ADb::build(&db).unwrap(); // warmup
    for mat in [true, false] {
        let cfg = AdbConfig {
            materialize_derived: mat,
            ..Default::default()
        };
        let t0 = Instant::now();
        for _ in 0..20 {
            let _ = ADb::build_with(&db, &cfg).unwrap();
        }
        println!("materialize={mat}: {:?}/build", t0.elapsed() / 20);
    }
    let t0 = Instant::now();
    for _ in 0..20 {
        let _ = db.clone();
    }
    println!("db.clone: {:?}", t0.elapsed() / 20);
    let t0 = Instant::now();
    for _ in 0..20 {
        let _ = InvertedIndex::build(&db);
    }
    println!("inverted: {:?}", t0.elapsed() / 20);
}
