//! DBLP scenario: prolific database researchers (the §7.4 case study) and
//! the DQ2-style aggregated intent ("authors with ≥ k SIGMOD and ≥ k VLDB
//! papers"), showing intersection queries abduced from examples.
//!
//! ```text
//! cargo run --release --example dblp_researchers
//! ```

use squid_adb::ADb;
use squid_core::{Accuracy, Squid, SquidParams};
use squid_datasets::{dblp_queries, generate_dblp, prolific_db_researchers, DblpConfig};
use squid_engine::Executor;

fn main() {
    let cfg = DblpConfig::default();
    println!(
        "Generating synthetic DBLP ({} authors, {} publications)...",
        cfg.authors, cfg.publications
    );
    let db = generate_dblp(&cfg);
    let adb = ADb::build(&db).expect("αDB");
    println!(
        "αDB built: {} properties, {} derived rows\n",
        adb.build_stats.property_count, adb.build_stats.derived_row_count
    );
    let params = SquidParams {
        tau_a: 3,
        ..SquidParams::default()
    };
    let squid = Squid::with_params(&adb, params);

    // ---- DQ2: flagship-venue intent ------------------------------------
    let queries = dblp_queries(&db);
    let dq2 = queries.iter().find(|q| q.id == "DQ2").unwrap();
    let rs = Executor::new(&db).execute(&dq2.query).unwrap();
    let names = rs.project(&db, "name").unwrap();
    let examples: Vec<String> = names.iter().take(8).map(|v| v.to_string()).collect();
    let refs: Vec<&str> = examples.iter().map(String::as_str).collect();
    println!("Intent: {}", dq2.description);
    println!("Examples: {refs:?}\n");
    let d = squid
        .discover_on("author", "name", &refs)
        .expect("discovery");
    println!("Chosen filters:");
    for f in d.chosen_filters() {
        println!("  {}", f.describe());
    }
    let acc = Accuracy::of(&d.rows, &rs.rows);
    println!(
        "\nAccuracy vs intended query: precision={:.3} recall={:.3} f={:.3}",
        acc.precision, acc.recall, acc.f_score
    );
    println!("\nAbduced SQL:\n{}", d.sql());

    // ---- Case study: prolific DB researchers ---------------------------
    let study = prolific_db_researchers(&db);
    let examples: Vec<&str> = study.list.iter().take(10).map(String::as_str).collect();
    println!(
        "\nCase study: {} (list of {})",
        study.name,
        study.list.len()
    );
    match squid.discover_on("author", "name", &examples) {
        Ok(d) => {
            println!("Chosen filters:");
            for f in d.chosen_filters() {
                println!("  {}", f.describe());
            }
            println!("Result cardinality: {}", d.rows.len());
        }
        Err(e) => println!("discovery failed: {e}"),
    }
}
