//! Quickstart: the paper's Figure 1 / Example 1.1 scenario end to end —
//! interactively, the way SQuID is meant to be used.
//!
//! Builds the tiny CS-academics database, makes it abduction-ready, and
//! drops examples into a [`SquidSession`] one at a time, printing how the
//! abduced query refines after each. A structure-only QBE system would
//! answer `SELECT name FROM academics` (Q1); SQuID finds the shared
//! semantic context `interest = 'data management'` and abduces Q2.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use squid_adb::ADb;
use squid_core::{SquidParams, SquidSession};
use squid_relation::{Column, DataType, Database, TableRole, TableSchema, Value};

fn academics_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "academics",
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
            ],
        )
        .with_primary_key("id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "research",
            vec![
                Column::new("aid", DataType::Int),
                Column::new("interest", DataType::Text),
            ],
        )
        .with_role(TableRole::Fact)
        .with_foreign_key("aid", "academics", 0),
    )
    .unwrap();
    db.meta.exclude("academics", "name");
    for (id, name) in [
        (100, "Thomas Cormen"),
        (101, "Dan Suciu"),
        (102, "Jiawei Han"),
        (103, "Sam Madden"),
        (104, "James Kurose"),
        (105, "Joseph Hellerstein"),
    ] {
        db.insert("academics", vec![Value::Int(id), Value::text(name)])
            .unwrap();
    }
    for (aid, interest) in [
        (100, "algorithms"),
        (101, "data management"),
        (102, "data mining"),
        (103, "data management"),
        (103, "distributed systems"),
        (104, "computer networks"),
        (105, "data management"),
        (105, "distributed systems"),
    ] {
        db.insert("research", vec![Value::Int(aid), Value::text(interest)])
            .unwrap();
    }
    db
}

fn main() {
    let db = academics_db();
    println!(
        "Database: {} academics, {} research-interest facts\n",
        db.table("academics").unwrap().len(),
        db.table("research").unwrap().len()
    );

    // Offline phase: build the abduction-ready database.
    let adb = ADb::build(&db).expect("αDB build");
    println!(
        "αDB ready: {} semantic properties discovered, {} derived rows\n",
        adb.build_stats.property_count, adb.build_stats.derived_row_count
    );

    // Online phase: an interactive session, Figure 1 style. On a 6-row toy
    // database nothing is statistically rare (the shared interest still
    // covers half the table, ψ = 0.5), so we raise the base prior a notch;
    // at real data sizes the default ρ = 0.1 works (see the benchmarks).
    let params = SquidParams {
        rho: 0.2,
        ..SquidParams::default()
    };
    let mut session = SquidSession::with_params(&adb, params);
    for example in ["Dan Suciu", "Sam Madden", "Joseph Hellerstein"] {
        let delta = session.add_example(example).expect("discovery");
        let d = delta.discovery.as_ref().expect("session has examples");
        println!(
            "+ {example:<18} → {} result tuple(s), {} update in {:?}",
            d.rows.len(),
            if delta.incremental {
                "incremental"
            } else {
                "initial"
            },
            d.elapsed
        );
        for f in &delta.added_filters {
            println!("    filter in:  {f}");
        }
        for f in &delta.removed_filters {
            println!("    filter out: {f}");
        }
    }

    let d = session.discovery().expect("three examples resolved");
    println!("\nCandidate filters and abduction decisions:");
    for s in &d.scored {
        println!(
            "  {} ψ={:.3} prior={:.3} -> {}",
            s.filter.describe(),
            s.filter.selectivity,
            s.prior,
            if s.included { "INCLUDE" } else { "exclude" }
        );
    }
    println!("\nAbduced query:\n{}", d.sql());
    let names = {
        let rs = squid_engine::Executor::new(&adb.database)
            .execute(&d.query)
            .unwrap();
        rs.project(&adb.database, "name").unwrap()
    };
    println!("\nResult ({} tuples):", names.len());
    for n in names {
        println!("  {n}");
    }
}
