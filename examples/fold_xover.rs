//! Scratch: crossover between per-row hash-entry folds and radix-scatter
//! folds at varying row counts / distinct-key cardinalities.
//!
//! Two sections: a synthetic fold over a raw key vector (the original
//! measurement), and a probed fold where keys are emitted by a real
//! `ScanPlan::for_each_match` over a ~50%-selective predicate — i.e. the
//! fold downstream of the SIMD superbatch scan tier, exactly as
//! `squid-engine`'s semi-join path drives it.
use squid_relation::{
    kernel, CmpSpec, Column, ColumnBuilder, DataType, FxHashMap, ScanPlan, Table, TableSchema,
};
use std::time::Instant;

const RADIX: usize = 64;
#[inline]
fn radix_of(key: u64) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - RADIX.trailing_zeros())) as usize
}

fn main() {
    for &(rows, distinct) in &[
        (10_000usize, 1_000u64),
        (50_000, 2_000),
        (100_000, 10_000),
        (500_000, 50_000),
        (1_000_000, 200_000),
        (4_000_000, 1_000_000),
    ] {
        // Pseudo-random key stream.
        let keys: Vec<u64> = (0..rows)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % distinct
            })
            .collect();
        let reps = (2_000_000 / rows).max(1) as u32;
        let t = Instant::now();
        for _ in 0..reps {
            let mut map: FxHashMap<u64, u64> = FxHashMap::default();
            for &k in &keys {
                *map.entry(k).or_insert(0) += 1;
            }
            std::hint::black_box(map.len());
        }
        let hash = t.elapsed() / reps;
        let t = Instant::now();
        for _ in 0..reps {
            let mut parts: Vec<Vec<(u64, u64)>> = vec![Vec::new(); RADIX];
            for &k in &keys {
                parts[radix_of(k)].push((k, 1));
            }
            let mut total = 0usize;
            let mut map: FxHashMap<u64, u64> = FxHashMap::default();
            for p in &mut parts {
                p.sort_unstable_by_key(|e| e.0);
                p.dedup_by(|n, a| {
                    if a.0 == n.0 {
                        a.1 += n.1;
                        true
                    } else {
                        false
                    }
                });
                total += p.len();
            }
            map.reserve(total);
            for p in &parts {
                for &(k, w) in p {
                    map.insert(k, w);
                }
            }
            std::hint::black_box(map.len());
        }
        let radix = t.elapsed() / reps;
        // Variant: flat append, histogram, contiguous scatter, per-partition sort.
        let t = Instant::now();
        for _ in 0..reps {
            let mut buf: Vec<(u64, u64)> = Vec::new();
            for &k in &keys {
                buf.push((k, 1));
            }
            let mut hist = [0usize; RADIX + 1];
            for &(k, _) in &buf {
                hist[radix_of(k) + 1] += 1;
            }
            for i in 0..RADIX {
                hist[i + 1] += hist[i];
            }
            let mut cursors = hist;
            let mut scat: Vec<(u64, u64)> = vec![(0, 0); buf.len()];
            for &(k, w) in &buf {
                let p = radix_of(k);
                scat[cursors[p]] = (k, w);
                cursors[p] += 1;
            }
            let mut total = 0usize;
            for p in 0..RADIX {
                let run = &mut scat[hist[p]..hist[p + 1]];
                run.sort_unstable_by_key(|e| e.0);
                total += 1 + run.windows(2).filter(|w| w[0].0 != w[1].0).count();
            }
            let mut map: FxHashMap<u64, u64> = FxHashMap::default();
            map.reserve(total);
            for p in 0..RADIX {
                let run = &scat[hist[p]..hist[p + 1]];
                let mut i = 0;
                while i < run.len() {
                    let k = run[i].0;
                    let mut w = 0;
                    while i < run.len() && run[i].0 == k {
                        w += run[i].1;
                        i += 1;
                    }
                    map.insert(k, w);
                }
            }
            std::hint::black_box(map.len());
        }
        let radix2 = t.elapsed() / reps;
        println!("rows {rows:>8} distinct {distinct:>8}: hash {hash:>10?} radix {radix:>10?} flat {radix2:>10?} flat/hash {:.2}", radix2.as_nanos() as f64 / hash.as_nanos() as f64);
    }

    println!("\nprobed (keys emitted by a superbatched ScanPlan, ~50% selectivity):");
    for &(rows, distinct) in &[
        (100_000usize, 10_000u64),
        (500_000, 50_000),
        (1_000_000, 200_000),
        (4_000_000, 1_000_000),
    ] {
        let mut keys = ColumnBuilder::new(DataType::Int);
        let mut vals = ColumnBuilder::new(DataType::Int);
        for i in 0..rows {
            let x = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            keys.push_int(((x >> 33) % distinct) as i64);
            vals.push_int((x >> 17) as i64 % 100);
        }
        let table = Table::from_columns(
            TableSchema::new(
                "t",
                vec![
                    Column::new("k", DataType::Int),
                    Column::new("v", DataType::Int),
                ],
            ),
            vec![keys, vals],
        )
        .unwrap();
        let key_col = table.column(0);
        let val_col = table.column(1);
        let plan = ScanPlan::new(
            vec![kernel::compile(
                val_col,
                DataType::Int,
                &CmpSpec::Between(
                    squid_relation::Value::Int(0),
                    squid_relation::Value::Int(49),
                ),
            )],
            table.len(),
        );
        let reps = (2_000_000 / rows).max(1) as u32;
        let t = Instant::now();
        for _ in 0..reps {
            let mut map: FxHashMap<u64, u64> = FxHashMap::default();
            plan.for_each_match(|row| {
                if let Some(k) = key_col.int_at(row) {
                    *map.entry(k as u64).or_insert(0) += 1;
                }
            });
            std::hint::black_box(map.len());
        }
        let hash = t.elapsed() / reps;
        let t = Instant::now();
        for _ in 0..reps {
            let mut parts: Vec<Vec<(u64, u64)>> = vec![Vec::new(); RADIX];
            plan.for_each_match(|row| {
                if let Some(k) = key_col.int_at(row) {
                    parts[radix_of(k as u64)].push((k as u64, 1));
                }
            });
            let mut total = 0usize;
            for p in &mut parts {
                p.sort_unstable_by_key(|e| e.0);
                p.dedup_by(|n, a| {
                    if a.0 == n.0 {
                        a.1 += n.1;
                        true
                    } else {
                        false
                    }
                });
                total += p.len();
            }
            let mut map: FxHashMap<u64, u64> = FxHashMap::default();
            map.reserve(total);
            for p in &parts {
                for &(k, w) in p {
                    map.insert(k, w);
                }
            }
            std::hint::black_box(map.len());
        }
        let radix = t.elapsed() / reps;
        println!(
            "rows {rows:>8} distinct {distinct:>8}: hash {hash:>10?} radix {radix:>10?} radix/hash {:.2}",
            radix.as_nanos() as f64 / hash.as_nanos() as f64
        );
    }
}
