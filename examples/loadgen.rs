//! Self-contained serving demo: boot a `squid-serve` [`Server`] over the
//! IMDb dataset in-process, hammer it with the [`squid_serve::load`]
//! harness over real TCP sockets, and print the throughput/latency
//! report.
//!
//! ```text
//! cargo run --release --example loadgen            # 8 clients x 4 sessions
//! cargo run --release --example loadgen -- 32 8    # 32 clients x 8 sessions
//! ```
//!
//! To drive an already-running server instead, use the binary:
//! `squid-serve --loadgen <addr> < script.txt`.

use std::sync::Arc;

use squid_adb::ADb;
use squid_core::SessionManager;
use squid_datasets::{generate_imdb, imdb_queries, ImdbConfig};
use squid_serve::{run_load, LoadConfig, LoadTurn, ServeConfig, Server};

fn main() {
    let mut args = std::env::args().skip(1);
    let clients: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(8);
    let sessions: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(4);

    eprintln!("building αDB (imdb)...");
    let db = generate_imdb(&ImdbConfig::default());
    let adb = Arc::new(ADb::build(&db).unwrap());

    // A real workload: examples drawn from one of the paper's intent
    // queries, so the adds share filters and the shared cache matters.
    let queries = imdb_queries(&db);
    let q = queries.iter().find(|q| q.id == "IQ15").expect("IQ15");
    let examples = squid_bench_examples(&db, q);

    let manager = Arc::new(SessionManager::new(Arc::clone(&adb)));
    let server = Server::start(manager, ServeConfig::default()).unwrap();
    eprintln!("serving on {}", server.local_addr());

    let script: Vec<LoadTurn> = examples
        .iter()
        .take(5)
        .map(|e| LoadTurn::Add(e.clone()))
        .chain([LoadTurn::Sql, LoadTurn::Suggest(3), LoadTurn::Rows(5)])
        .collect();
    let cfg = LoadConfig {
        clients,
        sessions_per_client: sessions,
        script,
    };
    eprintln!(
        "load: {} clients x {} sessions x {} turns",
        cfg.clients,
        cfg.sessions_per_client,
        cfg.script.len()
    );
    let report = run_load(server.local_addr(), &cfg).unwrap();
    println!("{}", report.summary());

    let metrics = server.metrics();
    println!(
        "server: {} accepted, {} requests, {} turns, {} protocol errors, {} overloaded",
        metrics.accepted,
        metrics.requests,
        metrics.turns,
        metrics.protocol_errors,
        metrics.rejected_overloaded
    );
    let shutdown = server.shutdown();
    println!(
        "shutdown: {} live sessions, journal synced: {}",
        shutdown.live_sessions, shutdown.journal_synced
    );
    if report.errors > 0 {
        std::process::exit(1);
    }
}

/// First 8 distinct example values of a benchmark query's output (the
/// same sampling idea as `squid_bench::sample_examples`, inlined so the
/// example depends only on the serving stack).
fn squid_bench_examples(
    db: &squid_relation::Database,
    q: &squid_datasets::BenchmarkQuery,
) -> Vec<String> {
    let rs = squid_engine::Executor::new(db)
        .execute(&q.query)
        .expect("benchmark query runs");
    let values = rs
        .project(db, q.query.projection.as_str())
        .expect("projection");
    let mut out: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    out.sort();
    out.dedup();
    out.truncate(8);
    out
}
