//! IMDb scenarios in the spirit of the paper's Examples 1.2/1.3: the same
//! kind of example lists ("funny actors" vs "action stars") that a
//! structure-only QBE system cannot distinguish, resolved by SQuID through
//! implicit derived properties (how many Comedy movies someone appears in).
//!
//! ```text
//! cargo run --release --example imdb_intents
//! ```

use squid_adb::ADb;
use squid_core::{Squid, SquidParams};
use squid_datasets::{funny_actors, generate_imdb, imdb_queries, ImdbConfig};

fn main() {
    let cfg = ImdbConfig::default();
    println!(
        "Generating synthetic IMDb ({} persons, {} movies)...",
        cfg.persons, cfg.movies
    );
    let db = generate_imdb(&cfg);
    let t = std::time::Instant::now();
    let adb = ADb::build(&db).expect("αDB");
    println!(
        "αDB built in {:?}: {} properties, {} derived relations ({} rows)\n",
        t.elapsed(),
        adb.build_stats.property_count,
        adb.build_stats.derived_table_count,
        adb.build_stats.derived_row_count
    );

    // ---- Scenario 1: funny actors (Example 1.3) -----------------------
    // Take names from the simulated human list of comedy actors and ask
    // SQuID for the intent, with normalized association strength (§7.4).
    let study = funny_actors(&db);
    let examples: Vec<&str> = study.list.iter().take(3).map(String::as_str).collect();
    println!("Scenario 1 — funny actors. Examples: {examples:?}");
    let squid = Squid::with_params(&adb, SquidParams::normalized());
    match squid.discover(&examples) {
        Ok(d) => {
            println!("  abduced in {:?}; chosen filters:", d.elapsed);
            for f in d.chosen_filters() {
                println!("    {}", f.describe());
            }
            println!("  result cardinality: {}", d.rows.len());
        }
        Err(e) => println!("  discovery failed: {e}"),
    }

    // ---- Scenario 2: a precise structured intent (IQ15) ---------------
    // Japanese Animation movies: a SPJ intent with one basic fact-hop
    // filter (genre) and one direct attribute (country).
    let queries = imdb_queries(&db);
    let iq15 = queries.iter().find(|q| q.id == "IQ15").unwrap();
    let rs = squid_engine::Executor::new(&db)
        .execute(&iq15.query)
        .unwrap();
    let titles = rs.project(&db, "title").unwrap();
    let examples: Vec<String> = titles.iter().take(5).map(|v| v.to_string()).collect();
    let refs: Vec<&str> = examples.iter().map(String::as_str).collect();
    println!("\nScenario 2 — {}. Examples: {refs:?}", iq15.description);
    let squid = Squid::new(&adb);
    match squid.discover(&refs) {
        Ok(d) => {
            println!("  abduced SQL:\n{}", indent(&d.sql()));
            println!(
                "  result cardinality: {} (intended: {})",
                d.rows.len(),
                rs.len()
            );
        }
        Err(e) => println!("  discovery failed: {e}"),
    }

    // ---- Scenario 3: aggregated group-by intent (IQ9) ------------------
    let iq9 = queries.iter().find(|q| q.id == "IQ9").unwrap();
    let rs = squid_engine::Executor::new(&db)
        .execute(&iq9.query)
        .unwrap();
    let names = rs.project(&db, "name").unwrap();
    let examples: Vec<String> = names.iter().take(6).map(|v| v.to_string()).collect();
    let refs: Vec<&str> = examples.iter().map(String::as_str).collect();
    println!("\nScenario 3 — {}. Examples: {refs:?}", iq9.description);
    match squid.discover(&refs) {
        Ok(d) => {
            println!("  abduced SQL:\n{}", indent(&d.sql()));
            println!(
                "  result cardinality: {} (intended: {})",
                d.rows.len(),
                rs.len()
            );
        }
        Err(e) => println!("  discovery failed: {e}"),
    }
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
