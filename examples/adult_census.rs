//! Adult census scenario: single-relation intent discovery plus the §7.6
//! head-to-head against Elkan–Noto PU-learning with the same examples.
//!
//! ```text
//! cargo run --release --example adult_census
//! ```

use squid_adb::ADb;
use squid_baselines::{single_table, PuClassifier, PuConfig, PuEstimator};
use squid_core::{Accuracy, Squid, SquidParams};
use squid_datasets::{adult_queries, generate_adult, AdultConfig};
use squid_engine::Executor;
use squid_relation::RowId;

fn main() {
    let cfg = AdultConfig::default();
    println!("Generating synthetic Adult census ({} rows)...", cfg.rows);
    let db = generate_adult(&cfg);
    let adb = ADb::build(&db).expect("αDB");
    let queries = adult_queries(&db, 0xA0, 20);
    let q = &queries[0];
    println!("Hidden intent: {}\n", q.description);

    let rs = Executor::new(&db).execute(&q.query).unwrap();
    let names = rs.project(&db, "name").unwrap();
    // 20% of the output as examples.
    let k = (rs.len() / 5).max(3);
    let examples: Vec<String> = names.iter().take(k).map(|v| v.to_string()).collect();
    let refs: Vec<&str> = examples.iter().map(String::as_str).collect();
    println!("Providing {k} of {} output tuples as examples.\n", rs.len());

    // ---- SQuID ----------------------------------------------------------
    let squid = Squid::with_params(&adb, SquidParams::optimistic());
    let d = squid
        .discover_on("adult", "name", &refs)
        .expect("discovery");
    let acc = Accuracy::of(&d.rows, &rs.rows);
    println!(
        "SQuID     : precision={:.3} recall={:.3} f={:.3} time={:?}",
        acc.precision, acc.recall, acc.f_score, d.elapsed
    );
    println!("  abduced SQL:\n{}", indent(&d.sql()));

    // ---- PU-learning with the same positives ---------------------------
    let (x, _) = single_table(&db, "adult", &["name"]);
    let positives: Vec<RowId> = d.example_rows.clone();
    for (estimator, tag) in [
        (PuEstimator::DecisionTree, "PU (DT)"),
        (PuEstimator::RandomForest, "PU (RF)"),
    ] {
        let t = std::time::Instant::now();
        let clf = PuClassifier::fit(
            &x,
            &positives,
            &PuConfig {
                estimator,
                ..Default::default()
            },
        );
        let pred: squid_relation::RowSet = clf.predict_positive(&x).into_iter().collect();
        let acc = Accuracy::of(&pred, &rs.rows);
        println!(
            "{tag:<10}: precision={:.3} recall={:.3} f={:.3} time={:?} (c^={:.2})",
            acc.precision,
            acc.recall,
            acc.f_score,
            t.elapsed(),
            clf.c_hat
        );
    }
    println!("\nWith few positives PU-learning favors precision and loses recall;");
    println!("SQuID exploits the query-shaped hypothesis space and stays robust.");
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
