//! # squid-datasets
//!
//! Seeded synthetic datasets and benchmark workloads reproducing the shape
//! of the SQuID paper's evaluation data: an IMDb-like database (with
//! sm/bs/bd scaling variants per Appendix D.1), a DBLP-like database, the
//! Adult census table, the IQ1-IQ16 / DQ1-DQ5 / AQ01-AQ20 benchmark query
//! suites (Figures 19, 20, 22), and the three case studies of §7.4.
//!
//! Everything is deterministic given the configured seed.

#![warn(missing_docs)]

pub mod adult;
pub mod case_studies;
pub mod dblp;
pub mod imdb;
pub mod queries;
pub mod rng_util;

pub use adult::{generate_adult, AdultConfig};
pub use case_studies::{funny_actors, prolific_db_researchers, scifi_2000s, CaseStudy};
pub use dblp::{generate_dblp, DblpConfig};
pub use imdb::{generate_imdb, generate_imdb_variant, ImdbConfig, ImdbVariant};
pub use queries::{adult_queries, dblp_queries, imdb_queries, BenchmarkQuery};
