//! # squid-datasets
//!
//! Seeded synthetic datasets and benchmark workloads reproducing the shape
//! of the SQuID paper's evaluation data: an IMDb-like database (with
//! sm/bs/bd scaling variants per Appendix D.1), a DBLP-like database, the
//! Adult census table, the IQ1-IQ16 / DQ1-DQ5 / AQ01-AQ20 benchmark query
//! suites (Figures 19, 20, 22), and the three case studies of §7.4.
//!
//! Everything is deterministic given the configured seed.

#![warn(missing_docs)]

pub mod adult;
pub mod case_studies;
pub mod dblp;
pub mod imdb;
pub mod queries;
pub mod rng_util;

pub use adult::{generate_adult, AdultConfig};
pub use case_studies::{funny_actors, prolific_db_researchers, scifi_2000s, CaseStudy};
pub use dblp::{generate_dblp, DblpConfig};
pub use imdb::{generate_imdb, generate_imdb_variant, ImdbConfig, ImdbVariant};
pub use queries::{adult_queries, dblp_queries, imdb_queries, BenchmarkQuery};

/// Typed, pre-sized column builders for one table schema (the bulk-load
/// staging the generators stream rows into).
pub(crate) fn builders_for(
    schema: &squid_relation::TableSchema,
    cap: usize,
) -> Vec<squid_relation::ColumnBuilder> {
    schema
        .columns
        .iter()
        .map(|c| squid_relation::ColumnBuilder::with_capacity(c.dtype, cap))
        .collect()
}

/// Deterministic fingerprint over a database's complete contents: the
/// slate pins below assert byte-identical regeneration. The definition
/// lives in `squid-relation` (shared with the αDB snapshot loader, which
/// verifies loaded databases against the fingerprint recorded at save
/// time); re-exported here to keep the historical API.
pub use squid_relation::db_fingerprint;
