//! # squid-datasets
//!
//! Seeded synthetic datasets and benchmark workloads reproducing the shape
//! of the SQuID paper's evaluation data: an IMDb-like database (with
//! sm/bs/bd scaling variants per Appendix D.1), a DBLP-like database, the
//! Adult census table, the IQ1-IQ16 / DQ1-DQ5 / AQ01-AQ20 benchmark query
//! suites (Figures 19, 20, 22), and the three case studies of §7.4.
//!
//! Everything is deterministic given the configured seed.

#![warn(missing_docs)]

pub mod adult;
pub mod case_studies;
pub mod dblp;
pub mod imdb;
pub mod queries;
pub mod rng_util;

pub use adult::{generate_adult, AdultConfig};
pub use case_studies::{funny_actors, prolific_db_researchers, scifi_2000s, CaseStudy};
pub use dblp::{generate_dblp, DblpConfig};
pub use imdb::{generate_imdb, generate_imdb_variant, ImdbConfig, ImdbVariant};
pub use queries::{adult_queries, dblp_queries, imdb_queries, BenchmarkQuery};

/// Typed, pre-sized column builders for one table schema (the bulk-load
/// staging the generators stream rows into).
pub(crate) fn builders_for(
    schema: &squid_relation::TableSchema,
    cap: usize,
) -> Vec<squid_relation::ColumnBuilder> {
    schema
        .columns
        .iter()
        .map(|c| squid_relation::ColumnBuilder::with_capacity(c.dtype, cap))
        .collect()
}

/// Deterministic FNV-1a fingerprint over a database's complete contents:
/// every table (in name order) with its full schema (column names and
/// dtypes, role, primary/foreign keys), the administrator metadata
/// (non-semantic exclusions), and every cell in row order. Two databases
/// fingerprint equal iff they are byte-identical up to string interning
/// (cell *contents* are hashed, not symbol ids) — schema or metadata
/// drift changes the property space and must fail the slate pins too.
pub fn db_fingerprint(db: &squid_relation::Database) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for (t, c) in &db.meta.non_semantic {
        eat(t.as_bytes());
        eat(c.as_bytes());
    }
    for table in db.tables() {
        let schema = table.schema();
        eat(table.name().as_bytes());
        eat(&(schema.arity() as u64).to_le_bytes());
        eat(&[schema.role as u8]);
        eat(&(schema.primary_key.map(|i| i as u64 + 1).unwrap_or(0)).to_le_bytes());
        for col in &schema.columns {
            eat(col.name.as_bytes());
            eat(&[col.dtype as u8]);
        }
        for fk in &schema.foreign_keys {
            eat(&(fk.column as u64).to_le_bytes());
            eat(fk.ref_table.as_bytes());
            eat(&(fk.ref_column as u64).to_le_bytes());
        }
        eat(&(table.len() as u64).to_le_bytes());
        for (_, row) in table.iter() {
            for cell in row {
                match cell {
                    squid_relation::Value::Null => eat(&[0]),
                    squid_relation::Value::Int(v) => {
                        eat(&[1]);
                        eat(&v.to_le_bytes());
                    }
                    squid_relation::Value::Float(x) => {
                        eat(&[2]);
                        eat(&x.to_bits().to_le_bytes());
                    }
                    squid_relation::Value::Text(s) => {
                        eat(&[3]);
                        eat(s.as_str().as_bytes());
                    }
                    squid_relation::Value::Bool(b) => eat(&[4, *b as u8]),
                }
            }
        }
    }
    h
}
