//! Seeded synthetic IMDb-like dataset (substitute for the 633 MB IMDb dump
//! the paper uses; see DESIGN.md for the substitution argument).
//!
//! Schema (shape of the paper's Figure 2):
//!
//! * `person(id, name, gender, country, birth_year)` — entity
//! * `movie(id, title, year, country, language)` — entity
//! * `genre(id, name)` — property
//! * `company(id, name)` — property
//! * `castinfo(person_id, movie_id, role)` — fact
//! * `movietogenre(movie_id, genre_id)` — fact
//! * `movietocompany(movie_id, company_id)` — fact
//!
//! The generator plants the statistical structure the benchmark intents
//! need: heavy-tailed careers, genre-loyal specialists (comedy actors,
//! sci-fi actors), dedicated directors, genre-focused studios (an
//! "animation studio"), a shared-cast trilogy, a Japanese-animation
//! cluster, and a post-2010 Russian cluster (for IQ10's compound intent).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use squid_relation::{
    Column, ColumnBuilder, DataType, Database, Sym, Table, TableRole, TableSchema,
};

use crate::builders_for;
use crate::rng_util::{power_law, weighted_index};

/// Genre names with popularity weights.
pub const GENRES: &[(&str, f64)] = &[
    ("Drama", 0.20),
    ("Comedy", 0.17),
    ("Action", 0.12),
    ("Thriller", 0.09),
    ("Romance", 0.08),
    ("Crime", 0.06),
    ("SciFi", 0.05),
    ("Horror", 0.05),
    ("Adventure", 0.04),
    ("Fantasy", 0.03),
    ("Animation", 0.03),
    ("Documentary", 0.02),
    ("Mystery", 0.02),
    ("Family", 0.02),
    ("War", 0.01),
    ("Western", 0.01),
];

/// Country names with weights (used for both persons and movies).
pub const COUNTRIES: &[(&str, f64)] = &[
    ("USA", 0.45),
    ("UK", 0.12),
    ("France", 0.07),
    ("India", 0.07),
    ("Canada", 0.06),
    ("Germany", 0.05),
    ("Italy", 0.04),
    ("Japan", 0.04),
    ("Russia", 0.04),
    ("Spain", 0.03),
    ("Australia", 0.03),
];

/// Studio names; index 0 is the big generalist, index 1 the animation
/// house (the "Pixar" of this universe), index 2 the family blockbuster
/// studio (the "Walt Disney Pictures").
pub const COMPANIES: &[&str] = &[
    "Summit Entertainment",
    "Luxo Animation",
    "Magic Kingdom Pictures",
    "Northern Lights Films",
    "Silver Screen Studios",
    "Riverbend Productions",
    "Crescent Moon Media",
    "Golden Gate Films",
    "Evergreen Pictures",
    "Bluebird Studios",
    "Ironclad Productions",
    "Starfall Entertainment",
    "Harbor Light Films",
    "Redwood Media",
    "Falcon Crest Pictures",
];

/// Generation knobs.
#[derive(Debug, Clone)]
pub struct ImdbConfig {
    /// Number of persons.
    pub persons: usize,
    /// Number of movies.
    pub movies: usize,
    /// RNG seed (same seed ⇒ identical database).
    pub seed: u64,
    /// Fraction of persons that reuse an earlier person's name (drives the
    /// disambiguation experiment, Figure 12).
    pub duplicate_name_rate: f64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        ImdbConfig {
            persons: 6_000,
            movies: 3_000,
            seed: 0xD1CE,
            duplicate_name_rate: 0.02,
        }
    }
}

impl ImdbConfig {
    /// Small preset for unit tests.
    pub fn tiny() -> Self {
        ImdbConfig {
            persons: 400,
            movies: 250,
            ..Default::default()
        }
    }
}

fn language_of(country: &str, rng: &mut StdRng) -> &'static str {
    let main = match country {
        "USA" | "UK" | "Canada" | "Australia" => "English",
        "France" => "French",
        "India" => "Hindi",
        "Germany" => "German",
        "Italy" => "Italian",
        "Japan" => "Japanese",
        "Russia" => "Russian",
        "Spain" => "Spanish",
        _ => "English",
    };
    // Small chance of an English-language production elsewhere.
    if main != "English" && rng.random_bool(0.15) {
        "English"
    } else {
        main
    }
}

/// The seven table schemas, in a fixed order (see [`TABLES`]).
fn table_schemas() -> Vec<TableSchema> {
    vec![
        TableSchema::new(
            "person",
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::new("gender", DataType::Text),
                Column::new("country", DataType::Text),
                Column::new("birth_year", DataType::Int),
            ],
        )
        .with_primary_key("id"),
        TableSchema::new(
            "movie",
            vec![
                Column::new("id", DataType::Int),
                Column::new("title", DataType::Text),
                Column::new("year", DataType::Int),
                Column::new("country", DataType::Text),
                Column::new("language", DataType::Text),
            ],
        )
        .with_primary_key("id"),
        TableSchema::new(
            "genre",
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
            ],
        )
        .with_primary_key("id")
        .with_role(TableRole::Property),
        TableSchema::new(
            "company",
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
            ],
        )
        .with_primary_key("id")
        .with_role(TableRole::Property),
        TableSchema::new(
            "castinfo",
            vec![
                Column::new("person_id", DataType::Int),
                Column::new("movie_id", DataType::Int),
                Column::new("role", DataType::Text),
            ],
        )
        .with_role(TableRole::Fact)
        .with_foreign_key("person_id", "person", 0)
        .with_foreign_key("movie_id", "movie", 0),
        TableSchema::new(
            "movietogenre",
            vec![
                Column::new("movie_id", DataType::Int),
                Column::new("genre_id", DataType::Int),
            ],
        )
        .with_role(TableRole::Fact)
        .with_foreign_key("movie_id", "movie", 0)
        .with_foreign_key("genre_id", "genre", 0),
        TableSchema::new(
            "movietocompany",
            vec![
                Column::new("movie_id", DataType::Int),
                Column::new("company_id", DataType::Int),
            ],
        )
        .with_role(TableRole::Fact)
        .with_foreign_key("movie_id", "movie", 0)
        .with_foreign_key("company_id", "company", 0),
    ]
}

/// Typed column builders for all seven tables, bulk-assembled into a
/// [`Database`] at the end of generation — no per-row arity/type checks on
/// the load path. Pushes happen in exactly the order the former per-row
/// `insert` calls did, so the RNG stream and the resulting row orders are
/// byte-identical to the row-insert generator (pinned by the
/// `generated_slates_are_byte_identical` test).
#[derive(Default)]
struct ImdbBuilders {
    person: Vec<ColumnBuilder>,
    movie: Vec<ColumnBuilder>,
    genre: Vec<ColumnBuilder>,
    company: Vec<ColumnBuilder>,
    castinfo: Vec<ColumnBuilder>,
    movietogenre: Vec<ColumnBuilder>,
    movietocompany: Vec<ColumnBuilder>,
}

impl ImdbBuilders {
    fn new(config: &ImdbConfig) -> ImdbBuilders {
        let schemas = table_schemas();
        ImdbBuilders {
            person: builders_for(&schemas[0], config.persons),
            movie: builders_for(&schemas[1], config.movies),
            genre: builders_for(&schemas[2], GENRES.len()),
            company: builders_for(&schemas[3], COMPANIES.len()),
            castinfo: builders_for(&schemas[4], config.persons * 4),
            movietogenre: builders_for(&schemas[5], config.movies * 2),
            movietocompany: builders_for(&schemas[6], config.movies),
        }
    }

    fn person(&mut self, id: i64, name: &str, gender: &str, country: &str, birth_year: i64) {
        self.person[0].push_int(id);
        self.person[1].push_sym(Sym::intern(name));
        self.person[2].push_sym(Sym::intern(gender));
        self.person[3].push_sym(Sym::intern(country));
        self.person[4].push_int(birth_year);
    }

    fn movie(&mut self, id: i64, title: &str, year: i64, country: &str, language: &str) {
        self.movie[0].push_int(id);
        self.movie[1].push_sym(Sym::intern(title));
        self.movie[2].push_int(year);
        self.movie[3].push_sym(Sym::intern(country));
        self.movie[4].push_sym(Sym::intern(language));
    }

    fn castinfo(&mut self, person_id: i64, movie_id: i64, role: &str) {
        self.castinfo[0].push_int(person_id);
        self.castinfo[1].push_int(movie_id);
        self.castinfo[2].push_sym(Sym::intern(role));
    }

    fn pair(cols: &mut [ColumnBuilder], a: i64, b: i64) {
        cols[0].push_int(a);
        cols[1].push_int(b);
    }

    fn finish(self) -> Database {
        let mut db = Database::new();
        let mut schemas = table_schemas().into_iter();
        for cols in [
            self.person,
            self.movie,
            self.genre,
            self.company,
            self.castinfo,
            self.movietogenre,
            self.movietocompany,
        ] {
            let schema = schemas.next().expect("one schema per table");
            db.add_table(Table::from_columns(schema, cols).expect("generated columns are typed"))
                .expect("distinct table names");
        }
        db.meta.exclude("person", "name");
        db.meta.exclude("movie", "title");
        db
    }
}

/// Generate the synthetic IMDb database.
pub fn generate_imdb(config: &ImdbConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = ImdbBuilders::new(config);

    for (i, (g, _)) in GENRES.iter().enumerate() {
        b.genre[0].push_int(i as i64);
        b.genre[1].push_sym(Sym::intern(g));
    }
    for (i, c) in COMPANIES.iter().enumerate() {
        b.company[0].push_int(i as i64);
        b.company[1].push_sym(Sym::intern(c));
    }

    let genre_weights: Vec<f64> = GENRES.iter().map(|(_, w)| *w).collect();
    let country_weights: Vec<f64> = COUNTRIES.iter().map(|(_, w)| *w).collect();

    // ---- Movies ------------------------------------------------------
    // movie_genres[m] = genre indices; movies_by_genre[g] = movie ids.
    let mut movie_rows: Vec<(i64, String, i64, &str, &str)> = Vec::with_capacity(config.movies);
    let mut movie_genres: Vec<Vec<usize>> = Vec::with_capacity(config.movies);
    let mut movies_by_genre: Vec<Vec<i64>> = vec![Vec::new(); GENRES.len()];
    let russian_cluster = (config.movies / 50).max(10); // post-2010 Russian movies (IQ10)
    let anime_idx = GENRES.iter().position(|(g, _)| *g == "Animation").unwrap();
    let horror_idx = GENRES.iter().position(|(g, _)| *g == "Horror").unwrap();
    let drama_idx = GENRES.iter().position(|(g, _)| *g == "Drama").unwrap();
    // Planted anchor slate (in the same spirit as the Russian cluster and
    // the saga trilogy): a few USA Horror-Drama movies from 2005-2008 keep
    // the rare IQ11 genre pair non-empty at every dataset scale and seed.
    let festival_slate = russian_cluster..russian_cluster + (config.movies / 60).max(4);

    for m in 0..config.movies as i64 {
        let is_russian_cluster = (m as usize) < russian_cluster;
        let country = if is_russian_cluster {
            "Russia"
        } else {
            COUNTRIES[weighted_index(&mut rng, &country_weights)].0
        };
        let year = if is_russian_cluster {
            rng.random_range(2011..=2020)
        } else {
            // Skew toward recent decades.
            let base: i64 = rng.random_range(1960..=2020);
            let recent: i64 = rng.random_range(1990..=2020);
            if rng.random_bool(0.6) {
                recent
            } else {
                base
            }
        };
        // Japanese movies skew toward Animation (the anime cluster, IQ15).
        let primary = if country == "Japan" && rng.random_bool(0.5) {
            anime_idx
        } else {
            weighted_index(&mut rng, &genre_weights)
        };
        let mut genres = vec![primary];
        let extra = rng.random_range(0..=2);
        for _ in 0..extra {
            let g = weighted_index(&mut rng, &genre_weights);
            if !genres.contains(&g) {
                genres.push(g);
            }
        }
        let language = language_of(country, &mut rng);
        let (country, year, genres, language) = if festival_slate.contains(&(m as usize)) {
            (
                "USA",
                2005 + m.rem_euclid(4),
                vec![horror_idx, drama_idx],
                "English",
            )
        } else {
            (country, year, genres, language)
        };
        let title = format!("The {} Story {m:05}", GENRES[genres[0]].0);
        movie_rows.push((m, title, year, country, language));
        for &g in &genres {
            movies_by_genre[g].push(m);
        }
        movie_genres.push(genres);
    }

    // Trilogy for IQ2: the last three movies become "Saga Part 1..3".
    let saga_ids: Vec<i64> = (0..3).map(|k| config.movies as i64 - 3 + k).collect();
    for (k, &mid) in saga_ids.iter().enumerate() {
        movie_rows[mid as usize].1 = format!("Saga Part {}", k + 1);
    }

    for (m, title, year, country, language) in &movie_rows {
        b.movie(*m, title, *year, country, language);
    }
    // Genre and company facts.
    for (m, genres) in movie_genres.iter().enumerate() {
        for &g in genres {
            ImdbBuilders::pair(&mut b.movietogenre, m as i64, g as i64);
        }
        // Studio: the animation house makes animation; the family studio
        // favors Family/Adventure; otherwise zipf-weighted generalists.
        let primary = genres[0];
        let company: usize = if GENRES[primary].0 == "Animation" && rng.random_bool(0.6) {
            1
        } else if matches!(GENRES[primary].0, "Family" | "Adventure") && rng.random_bool(0.5) {
            2
        } else {
            let w: Vec<f64> = (0..COMPANIES.len())
                .map(|i| 1.0 / (i as f64 + 1.0))
                .collect();
            weighted_index(&mut rng, &w)
        };
        ImdbBuilders::pair(&mut b.movietocompany, m as i64, company as i64);
    }

    // ---- Persons -----------------------------------------------------
    let mut names: Vec<String> = Vec::with_capacity(config.persons);
    let russian_actor_cluster = (config.persons / 100).max(20);
    for p in 0..config.persons as i64 {
        let dup = p > 10 && rng.random_bool(config.duplicate_name_rate);
        let name = if dup {
            names[rng.random_range(0..names.len())].clone()
        } else {
            format!("Person {p:06}")
        };
        names.push(name.clone());

        let gender = if rng.random_bool(0.65) {
            "Male"
        } else {
            "Female"
        };
        let in_russian_cluster = (p as usize) < russian_actor_cluster;
        let country = if in_russian_cluster {
            "Russia"
        } else {
            COUNTRIES[weighted_index(&mut rng, &country_weights)].0
        };
        let birth_year = rng.random_range(1930..=2000);
        b.person(p, &name, gender, country, birth_year);

        // Career: archetype with genre loyalty + heavy-tailed size.
        let is_director = rng.random_bool(0.01);
        let career = if is_director {
            rng.random_range(8..=30)
        } else {
            power_law(&mut rng, 0.9, 100)
        };
        let primary_genre = weighted_index(&mut rng, &genre_weights);
        let loyalty = match rng.random_range(0..10) {
            0..=2 => 0.85, // specialist
            3..=6 => 0.5,
            _ => 0.15,
        };
        let mut seen: HashSet<i64> = HashSet::new();
        for _ in 0..career {
            let movie = if in_russian_cluster && rng.random_bool(0.8) {
                rng.random_range(0..russian_cluster as i64)
            } else if rng.random_bool(loyalty) && !movies_by_genre[primary_genre].is_empty() {
                *crate::rng_util::choose(&mut rng, &movies_by_genre[primary_genre])
            } else {
                rng.random_range(0..config.movies as i64)
            };
            if !seen.insert(movie) {
                continue;
            }
            let role = if is_director {
                "director"
            } else if rng.random_bool(0.9) {
                if gender == "Female" {
                    "actress"
                } else {
                    "actor"
                }
            } else if rng.random_bool(0.5) {
                "director"
            } else {
                "producer"
            };
            b.castinfo(p, movie, role);
        }
        // Saga core cast: the first 20 non-cluster persons appear in all
        // three saga movies.
        if (russian_actor_cluster..russian_actor_cluster + 20).contains(&(p as usize)) {
            for &mid in &saga_ids {
                if seen.insert(mid) {
                    let role = if gender == "Female" {
                        "actress"
                    } else {
                        "actor"
                    };
                    b.castinfo(p, mid, role);
                }
            }
        }
    }

    let db = b.finish();
    db.validate().expect("generated schema is valid");
    db
}

/// The four dataset-size variants of Figure 9(b) / Appendix D.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImdbVariant {
    /// ~10% of the base size.
    Small,
    /// The base dataset.
    Base,
    /// Doubled entities, duplicated associations only between duplicates
    /// (sparse): `(P2, M2)` added for each `(P1, M1)`.
    BigSparse,
    /// Doubled entities with dense cross associations: `(P1, M2)`,
    /// `(P2, M2)`, `(P2, M1)` added.
    BigDense,
}

/// Generate a variant per Appendix D.1's duplication rules.
pub fn generate_imdb_variant(config: &ImdbConfig, variant: ImdbVariant) -> Database {
    match variant {
        ImdbVariant::Small => {
            let small = ImdbConfig {
                persons: (config.persons / 10).max(50),
                movies: (config.movies / 10).max(30),
                ..config.clone()
            };
            generate_imdb(&small)
        }
        ImdbVariant::Base => generate_imdb(config),
        ImdbVariant::BigSparse | ImdbVariant::BigDense => {
            let base = generate_imdb(config);
            duplicate_entities(&base, variant == ImdbVariant::BigDense, config)
        }
    }
}

fn duplicate_entities(base: &Database, dense: bool, config: &ImdbConfig) -> Database {
    let mut b = ImdbBuilders::new(config);
    let np = config.persons as i64;
    let nm = config.movies as i64;

    for (g, name) in base
        .table("genre")
        .unwrap()
        .iter()
        .map(|(_, r)| (r[0].as_int().unwrap(), r[1]))
    {
        b.genre[0].push_int(g);
        b.genre[1].push_value(&name).unwrap();
    }
    for (c, name) in base
        .table("company")
        .unwrap()
        .iter()
        .map(|(_, r)| (r[0].as_int().unwrap(), r[1]))
    {
        b.company[0].push_int(c);
        b.company[1].push_value(&name).unwrap();
    }
    for (_, r) in base.table("person").unwrap().iter() {
        for (col, v) in b.person.iter_mut().zip(r) {
            col.push_value(v).unwrap();
        }
    }
    for (_, r) in base.table("person").unwrap().iter() {
        b.person[0].push_int(r[0].as_int().unwrap() + np);
        b.person[1].push_sym(Sym::intern(&format!("Dup {}", r[1])));
        for (col, v) in b.person[2..].iter_mut().zip(&r[2..]) {
            col.push_value(v).unwrap();
        }
    }
    for (_, r) in base.table("movie").unwrap().iter() {
        for (col, v) in b.movie.iter_mut().zip(r) {
            col.push_value(v).unwrap();
        }
    }
    for (_, r) in base.table("movie").unwrap().iter() {
        b.movie[0].push_int(r[0].as_int().unwrap() + nm);
        b.movie[1].push_sym(Sym::intern(&format!("Dup {}", r[1])));
        for (col, v) in b.movie[2..].iter_mut().zip(&r[2..]) {
            col.push_value(v).unwrap();
        }
    }
    for (_, r) in base.table("movietogenre").unwrap().iter() {
        let (m, g) = (r[0].as_int().unwrap(), r[1].as_int().unwrap());
        ImdbBuilders::pair(&mut b.movietogenre, m, g);
        ImdbBuilders::pair(&mut b.movietogenre, m + nm, g);
    }
    for (_, r) in base.table("movietocompany").unwrap().iter() {
        let (m, c) = (r[0].as_int().unwrap(), r[1].as_int().unwrap());
        ImdbBuilders::pair(&mut b.movietocompany, m, c);
        ImdbBuilders::pair(&mut b.movietocompany, m + nm, c);
    }
    for (_, r) in base.table("castinfo").unwrap().iter() {
        let (p, m) = (r[0].as_int().unwrap(), r[1].as_int().unwrap());
        let role = r[2].as_sym().expect("role is text");
        b.castinfo[0].push_int(p);
        b.castinfo[1].push_int(m);
        b.castinfo[2].push_sym(role);
        // Appendix D.1: bs adds (P2, M2); bd additionally adds (P1, M2)
        // and (P2, M1).
        b.castinfo[0].push_int(p + np);
        b.castinfo[1].push_int(m + nm);
        b.castinfo[2].push_sym(role);
        if dense {
            b.castinfo[0].push_int(p);
            b.castinfo[1].push_int(m + nm);
            b.castinfo[2].push_sym(role);
            b.castinfo[0].push_int(p + np);
            b.castinfo[1].push_int(m);
            b.castinfo[2].push_sym(role);
        }
    }
    let db = b.finish();
    db.validate().expect("variant schema is valid");
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = ImdbConfig::tiny();
        let a = generate_imdb(&cfg);
        let b = generate_imdb(&cfg);
        assert_eq!(
            a.table("castinfo").unwrap().len(),
            b.table("castinfo").unwrap().len()
        );
        assert_eq!(
            a.table("person").unwrap().cell(17, 1),
            b.table("person").unwrap().cell(17, 1)
        );
    }

    #[test]
    fn cardinalities_match_config() {
        let cfg = ImdbConfig::tiny();
        let db = generate_imdb(&cfg);
        assert_eq!(db.table("person").unwrap().len(), cfg.persons);
        assert_eq!(db.table("movie").unwrap().len(), cfg.movies);
        assert_eq!(db.table("genre").unwrap().len(), GENRES.len());
        assert!(db.table("castinfo").unwrap().len() > cfg.persons);
    }

    #[test]
    fn saga_trilogy_exists_with_shared_cast() {
        let db = generate_imdb(&ImdbConfig::tiny());
        let movie = db.table("movie").unwrap();
        let titles: Vec<String> = movie
            .iter()
            .filter_map(|(_, r)| r[1].as_text().map(str::to_string))
            .filter(|t| t.starts_with("Saga Part"))
            .collect();
        assert_eq!(titles.len(), 3);
    }

    #[test]
    fn russian_cluster_planted() {
        let cfg = ImdbConfig::tiny();
        let db = generate_imdb(&cfg);
        let movie = db.table("movie").unwrap();
        let russian_recent = movie
            .iter()
            .filter(|(_, r)| r[3].as_text() == Some("Russia") && r[2].as_int().unwrap_or(0) > 2010)
            .count();
        assert!(russian_recent >= 5, "{russian_recent}");
    }

    #[test]
    fn duplicate_names_exist() {
        let db = generate_imdb(&ImdbConfig::default());
        let person = db.table("person").unwrap();
        let mut names: Vec<&str> = person.iter().filter_map(|(_, r)| r[1].as_text()).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert!(names.len() < total, "some names must repeat");
    }

    #[test]
    fn variants_scale_as_specified() {
        let cfg = ImdbConfig {
            persons: 200,
            movies: 120,
            ..ImdbConfig::tiny()
        };
        let base = generate_imdb(&cfg);
        let sm = generate_imdb_variant(&cfg, ImdbVariant::Small);
        let bs = generate_imdb_variant(&cfg, ImdbVariant::BigSparse);
        let bd = generate_imdb_variant(&cfg, ImdbVariant::BigDense);
        assert!(sm.table("person").unwrap().len() < cfg.persons / 2);
        assert_eq!(bs.table("person").unwrap().len(), 2 * cfg.persons);
        assert_eq!(bd.table("person").unwrap().len(), 2 * cfg.persons);
        let base_ci = base.table("castinfo").unwrap().len();
        assert_eq!(bs.table("castinfo").unwrap().len(), 2 * base_ci);
        assert_eq!(bd.table("castinfo").unwrap().len(), 4 * base_ci);
    }

    #[test]
    fn variants_validate() {
        let cfg = ImdbConfig {
            persons: 100,
            movies: 60,
            ..ImdbConfig::tiny()
        };
        for v in [
            ImdbVariant::Small,
            ImdbVariant::Base,
            ImdbVariant::BigSparse,
            ImdbVariant::BigDense,
        ] {
            generate_imdb_variant(&cfg, v).validate().unwrap();
        }
    }
}
