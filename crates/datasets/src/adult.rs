//! Seeded synthetic Adult-like census dataset (substitute for the UCI Adult
//! dataset, 32,561 rows, single relation).
//!
//! Attribute marginals approximate the real dataset's published statistics;
//! a synthetic unique `name` column serves as the projection attribute (the
//! paper's benchmark queries on Adult project `name`, Figure 22).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use squid_relation::{Column, DataType, Database, TableSchema, Value};

use crate::rng_util::weighted_index;

/// Categorical attribute domains with approximate real-data weights.
pub mod domains {
    /// (value, weight) pairs for `workclass`.
    pub const WORKCLASS: &[(&str, f64)] = &[
        ("Private", 0.70),
        ("Self-emp-not-inc", 0.08),
        ("Local-gov", 0.06),
        ("State-gov", 0.04),
        ("Self-emp-inc", 0.03),
        ("Federal-gov", 0.03),
        ("Without-pay", 0.01),
        ("Never-worked", 0.05),
    ];
    /// (value, weight) pairs for `education`.
    pub const EDUCATION: &[(&str, f64)] = &[
        ("HS-grad", 0.32),
        ("Some-college", 0.22),
        ("Bachelors", 0.16),
        ("Masters", 0.05),
        ("Assoc-voc", 0.04),
        ("11th", 0.04),
        ("Assoc-acdm", 0.03),
        ("10th", 0.03),
        ("7th-8th", 0.02),
        ("Prof-school", 0.02),
        ("9th", 0.02),
        ("12th", 0.01),
        ("Doctorate", 0.01),
        ("5th-6th", 0.01),
        ("1st-4th", 0.01),
        ("Preschool", 0.01),
    ];
    /// (value, weight) pairs for `maritalstatus`.
    pub const MARITAL: &[(&str, f64)] = &[
        ("Married-civ-spouse", 0.46),
        ("Never-married", 0.33),
        ("Divorced", 0.14),
        ("Separated", 0.03),
        ("Widowed", 0.03),
        ("Married-spouse-absent", 0.01),
    ];
    /// (value, weight) pairs for `occupation`.
    pub const OCCUPATION: &[(&str, f64)] = &[
        ("Prof-specialty", 0.13),
        ("Craft-repair", 0.13),
        ("Exec-managerial", 0.12),
        ("Adm-clerical", 0.12),
        ("Sales", 0.11),
        ("Other-service", 0.10),
        ("Machine-op-inspct", 0.06),
        ("Transport-moving", 0.05),
        ("Handlers-cleaners", 0.04),
        ("Farming-fishing", 0.03),
        ("Tech-support", 0.03),
        ("Protective-serv", 0.02),
        ("Priv-house-serv", 0.01),
        ("Armed-Forces", 0.05),
    ];
    /// (value, weight) pairs for `relationship`.
    pub const RELATIONSHIP: &[(&str, f64)] = &[
        ("Husband", 0.40),
        ("Not-in-family", 0.26),
        ("Own-child", 0.16),
        ("Unmarried", 0.11),
        ("Wife", 0.05),
        ("Other-relative", 0.02),
    ];
    /// (value, weight) pairs for `race`.
    pub const RACE: &[(&str, f64)] = &[
        ("White", 0.85),
        ("Black", 0.10),
        ("Asian-Pac-Islander", 0.03),
        ("Amer-Indian-Eskimo", 0.01),
        ("Other", 0.01),
    ];
    /// (value, weight) pairs for `nativecountry`.
    pub const COUNTRY: &[(&str, f64)] = &[
        ("United-States", 0.90),
        ("Mexico", 0.02),
        ("Philippines", 0.01),
        ("Germany", 0.01),
        ("Canada", 0.01),
        ("Puerto-Rico", 0.01),
        ("India", 0.01),
        ("Cuba", 0.01),
        ("England", 0.01),
        ("China", 0.01),
    ];
}

/// Generation knobs.
#[derive(Debug, Clone)]
pub struct AdultConfig {
    /// Number of rows.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AdultConfig {
    fn default() -> Self {
        AdultConfig {
            rows: 8_000,
            seed: 0xAD01,
        }
    }
}

impl AdultConfig {
    /// Small preset for unit tests.
    pub fn tiny() -> Self {
        AdultConfig {
            rows: 800,
            ..Default::default()
        }
    }

    /// Replicated dataset for the scalability experiment (Figure 16b).
    pub fn scaled(factor: usize) -> Self {
        AdultConfig {
            rows: 8_000 * factor,
            ..Default::default()
        }
    }
}

/// Generate the synthetic Adult census table.
pub fn generate_adult(config: &AdultConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "adult",
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::new("age", DataType::Int),
                Column::new("workclass", DataType::Text),
                Column::new("education", DataType::Text),
                Column::new("maritalstatus", DataType::Text),
                Column::new("occupation", DataType::Text),
                Column::new("relationship", DataType::Text),
                Column::new("race", DataType::Text),
                Column::new("sex", DataType::Text),
                Column::new("capitalgain", DataType::Int),
                Column::new("capitalloss", DataType::Int),
                Column::new("hoursperweek", DataType::Int),
                Column::new("nativecountry", DataType::Text),
            ],
        )
        .with_primary_key("id"),
    )
    .unwrap();
    db.meta.exclude("adult", "name");

    fn pick(rng: &mut StdRng, domain: &[(&'static str, f64)]) -> &'static str {
        let w: Vec<f64> = domain.iter().map(|(_, x)| *x).collect();
        domain[weighted_index(rng, &w)].0
    }

    for i in 0..config.rows as i64 {
        let sex = if rng.random_bool(0.67) {
            "Male"
        } else {
            "Female"
        };
        let marital = pick(&mut rng, domains::MARITAL);
        // Relationship correlates with sex and marital status, loosely.
        let relationship = if marital == "Married-civ-spouse" {
            if sex == "Male" {
                "Husband"
            } else {
                "Wife"
            }
        } else {
            pick(&mut rng, domains::RELATIONSHIP)
        };
        let age: i64 = (17.0 + rng.random_range(0.0f64..1.0).powf(1.5) * 73.0) as i64;
        let capitalgain: i64 = if rng.random_bool(0.08) {
            rng.random_range(100..=99_999)
        } else {
            0
        };
        let capitalloss: i64 = if capitalgain == 0 && rng.random_bool(0.05) {
            rng.random_range(100..=4_356)
        } else {
            0
        };
        let hours: i64 = if rng.random_bool(0.55) {
            40
        } else {
            rng.random_range(1..=99)
        };
        db.insert(
            "adult",
            vec![
                Value::Int(i),
                Value::text(format!("Citizen {i:06}")),
                Value::Int(age),
                Value::text(pick(&mut rng, domains::WORKCLASS)),
                Value::text(pick(&mut rng, domains::EDUCATION)),
                Value::text(marital),
                Value::text(pick(&mut rng, domains::OCCUPATION)),
                Value::text(relationship),
                Value::text(pick(&mut rng, domains::RACE)),
                Value::text(sex),
                Value::Int(capitalgain),
                Value::Int(capitalloss),
                Value::Int(hours),
                Value::text(pick(&mut rng, domains::COUNTRY)),
            ],
        )
        .unwrap();
    }
    db.validate().expect("generated schema is valid");
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let cfg = AdultConfig::tiny();
        let a = generate_adult(&cfg);
        let b = generate_adult(&cfg);
        assert_eq!(a.table("adult").unwrap().len(), cfg.rows);
        assert_eq!(
            a.table("adult").unwrap().cell(5, 4),
            b.table("adult").unwrap().cell(5, 4)
        );
    }

    #[test]
    fn marginals_are_roughly_census_like() {
        let db = generate_adult(&AdultConfig::default());
        let t = db.table("adult").unwrap();
        let white = t
            .iter()
            .filter(|(_, r)| r[8].as_text() == Some("White"))
            .count() as f64
            / t.len() as f64;
        assert!((0.78..0.92).contains(&white), "white fraction {white}");
        let forty =
            t.iter().filter(|(_, r)| r[12].as_int() == Some(40)).count() as f64 / t.len() as f64;
        assert!(forty > 0.4, "40-hour weeks {forty}");
    }

    #[test]
    fn ages_in_plausible_range() {
        let db = generate_adult(&AdultConfig::tiny());
        for (_, r) in db.table("adult").unwrap().iter() {
            let a = r[2].as_int().unwrap();
            assert!((17..=90).contains(&a), "age {a}");
        }
    }

    #[test]
    fn names_are_unique() {
        let db = generate_adult(&AdultConfig::tiny());
        let t = db.table("adult").unwrap();
        let mut names: Vec<&str> = t.iter().filter_map(|(_, r)| r[1].as_text()).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}
