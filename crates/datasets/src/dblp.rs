//! Seeded synthetic DBLP-like dataset (substitute for the paper's 22 MB
//! DBLP subset: 81 conferences, 2000–2015).
//!
//! Schema:
//!
//! * `author(id, name, country)` — entity
//! * `publication(id, title, year)` — entity
//! * `venue(id, name)` — property
//! * `writes(author_id, pub_id)` — fact
//! * `pubtovenue(pub_id, venue_id)` — fact
//!
//! Authors have heavy-tailed productivity and venue loyalty (database
//! people publish in database venues), which is what DQ1/DQ2's intents
//! ("authors with ≥ k SIGMOD papers") rely on.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use squid_relation::{Column, DataType, Database, Sym, Table, TableRole, TableSchema};

use crate::builders_for;
use crate::rng_util::{power_law, weighted_index};

/// Venue names with popularity weights. The first two are the database
/// flagships used by DQ1–DQ3.
pub const VENUES: &[(&str, f64)] = &[
    ("SIGMOD", 0.10),
    ("VLDB", 0.10),
    ("ICDE", 0.08),
    ("KDD", 0.08),
    ("SIGIR", 0.06),
    ("WWW", 0.06),
    ("AAAI", 0.08),
    ("IJCAI", 0.07),
    ("NIPS", 0.08),
    ("ICML", 0.07),
    ("SOSP", 0.03),
    ("OSDI", 0.03),
    ("PODS", 0.03),
    ("CIKM", 0.05),
    ("EDBT", 0.04),
    ("ICDT", 0.02),
    ("STOC", 0.01),
    ("FOCS", 0.01),
];

/// Author countries with weights.
pub const AUTHOR_COUNTRIES: &[(&str, f64)] = &[
    ("USA", 0.40),
    ("China", 0.15),
    ("Germany", 0.08),
    ("Canada", 0.07),
    ("UK", 0.07),
    ("India", 0.06),
    ("France", 0.05),
    ("Italy", 0.04),
    ("Japan", 0.04),
    ("Australia", 0.04),
];

/// Generation knobs.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of authors.
    pub authors: usize,
    /// Number of publications.
    pub publications: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            authors: 3_000,
            publications: 9_000,
            seed: 0xDB19,
        }
    }
}

impl DblpConfig {
    /// Small preset for unit tests.
    pub fn tiny() -> Self {
        DblpConfig {
            authors: 300,
            publications: 900,
            ..Default::default()
        }
    }
}

/// The five table schemas, in a fixed order.
fn table_schemas() -> Vec<TableSchema> {
    vec![
        TableSchema::new(
            "author",
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::new("country", DataType::Text),
            ],
        )
        .with_primary_key("id"),
        TableSchema::new(
            "publication",
            vec![
                Column::new("id", DataType::Int),
                Column::new("title", DataType::Text),
                Column::new("year", DataType::Int),
            ],
        )
        .with_primary_key("id"),
        TableSchema::new(
            "venue",
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
            ],
        )
        .with_primary_key("id")
        .with_role(TableRole::Property),
        TableSchema::new(
            "writes",
            vec![
                Column::new("author_id", DataType::Int),
                Column::new("pub_id", DataType::Int),
            ],
        )
        .with_role(TableRole::Fact)
        .with_foreign_key("author_id", "author", 0)
        .with_foreign_key("pub_id", "publication", 0),
        TableSchema::new(
            "pubtovenue",
            vec![
                Column::new("pub_id", DataType::Int),
                Column::new("venue_id", DataType::Int),
            ],
        )
        .with_role(TableRole::Fact)
        .with_foreign_key("pub_id", "publication", 0)
        .with_foreign_key("venue_id", "venue", 0),
    ]
}

/// Generate the synthetic DBLP database.
///
/// Bulk columnar load: rows stream into typed [`ColumnBuilder`]s in the
/// exact order the former per-row inserts ran (the RNG call order is
/// load-bearing for the fixed slates — pinned by the byte-identity test)
/// and assemble through [`Table::from_columns`] once at the end.
pub fn generate_dblp(config: &DblpConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schemas = table_schemas();
    let mut author = builders_for(&schemas[0], config.authors);
    let mut publication = builders_for(&schemas[1], config.publications);
    let mut venue = builders_for(&schemas[2], VENUES.len());
    let mut writes = builders_for(&schemas[3], config.authors * 8);
    let mut pubtovenue = builders_for(&schemas[4], config.publications);

    for (i, (v, _)) in VENUES.iter().enumerate() {
        venue[0].push_int(i as i64);
        venue[1].push_sym(Sym::intern(v));
    }

    // Publications with venue assignment; bucket by venue for the loyalty
    // sampling below.
    let venue_weights: Vec<f64> = VENUES.iter().map(|(_, w)| *w).collect();
    let mut pubs_by_venue: Vec<Vec<i64>> = vec![Vec::new(); VENUES.len()];
    for p in 0..config.publications as i64 {
        let year = rng.random_range(2000..=2015);
        let venue_i = weighted_index(&mut rng, &venue_weights);
        publication[0].push_int(p);
        publication[1].push_sym(Sym::intern(&format!("On the Theory of Things {p:06}")));
        publication[2].push_int(year);
        pubtovenue[0].push_int(p);
        pubtovenue[1].push_int(venue_i as i64);
        pubs_by_venue[venue_i].push(p);
    }

    // Authors with heavy-tailed productivity and venue loyalty. The first
    // dozens are "database people" anchored to SIGMOD/VLDB so that DQ1/DQ2
    // have non-trivial answers.
    let country_weights: Vec<f64> = AUTHOR_COUNTRIES.iter().map(|(_, w)| *w).collect();
    for a in 0..config.authors as i64 {
        let country = AUTHOR_COUNTRIES[weighted_index(&mut rng, &country_weights)].0;
        author[0].push_int(a);
        author[1].push_sym(Sym::intern(&format!("Author {a:05}")));
        author[2].push_sym(Sym::intern(country));
        let is_db_person = (a as usize) < config.authors / 25;
        let productivity = if is_db_person {
            rng.random_range(25..=60)
        } else {
            power_law(&mut rng, 0.9, 80)
        };
        let home_venue = if is_db_person {
            // Split the community between the two flagships.
            if a % 2 == 0 {
                0 // SIGMOD
            } else {
                1 // VLDB
            }
        } else {
            weighted_index(&mut rng, &venue_weights)
        };
        let loyalty = if is_db_person { 0.55 } else { 0.6 };
        let mut seen: HashSet<i64> = HashSet::new();
        for _ in 0..productivity {
            let p = if rng.random_bool(loyalty) && !pubs_by_venue[home_venue].is_empty() {
                *crate::rng_util::choose(&mut rng, &pubs_by_venue[home_venue])
            } else if is_db_person && rng.random_bool(0.6) {
                // DB people also publish in the sibling flagship.
                let other = 1 - home_venue;
                *crate::rng_util::choose(&mut rng, &pubs_by_venue[other])
            } else {
                rng.random_range(0..config.publications as i64)
            };
            if seen.insert(p) {
                writes[0].push_int(a);
                writes[1].push_int(p);
            }
        }
    }

    let mut db = Database::new();
    for (schema, cols) in
        table_schemas()
            .into_iter()
            .zip([author, publication, venue, writes, pubtovenue])
    {
        db.add_table(Table::from_columns(schema, cols).expect("generated columns are typed"))
            .expect("distinct table names");
    }
    db.meta.exclude("author", "name");
    db.meta.exclude("publication", "title");
    db.validate().expect("generated schema is valid");
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let cfg = DblpConfig::tiny();
        let a = generate_dblp(&cfg);
        let b = generate_dblp(&cfg);
        assert_eq!(
            a.table("writes").unwrap().len(),
            b.table("writes").unwrap().len()
        );
        assert_eq!(a.table("author").unwrap().len(), cfg.authors);
        assert_eq!(a.table("publication").unwrap().len(), cfg.publications);
    }

    #[test]
    fn db_community_is_prolific_in_flagships() {
        let cfg = DblpConfig::tiny();
        let db = generate_dblp(&cfg);
        // Count SIGMOD/VLDB papers of author 0 (a planted DB person).
        let writes = db.table("writes").unwrap();
        let ptv = db.table("pubtovenue").unwrap();
        let venue_of: std::collections::HashMap<i64, i64> = ptv
            .iter()
            .map(|(_, r)| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        let count = writes
            .iter()
            .filter(|(_, r)| r[0].as_int() == Some(0))
            .filter(|(_, r)| {
                let v = venue_of[&r[1].as_int().unwrap()];
                v == 0 || v == 1
            })
            .count();
        assert!(count >= 10, "planted DB person has {count} flagship papers");
    }

    #[test]
    fn years_in_range() {
        let db = generate_dblp(&DblpConfig::tiny());
        for (_, r) in db.table("publication").unwrap().iter() {
            let y = r[2].as_int().unwrap();
            assert!((2000..=2015).contains(&y));
        }
    }
}
