//! Benchmark query suites: IQ1–IQ16 (IMDb, Figure 19), DQ1–DQ5 (DBLP,
//! Figure 20), and the 20 randomized Adult queries (Figure 22).
//!
//! The paper's queries reference constants of the real datasets ("Pulp
//! Fiction", "Clint Eastwood"); here each suite inspects the generated
//! database and picks the structurally equivalent constants (the movie with
//! the largest cast, the most prolific director, the strongest co-star
//! pair), keeping the join/selection shape and result-cardinality profile
//! of the originals.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use squid_engine::{Executor, PathStep, Pred, Query, QueryBlock, SemiJoin};
use squid_relation::{DataType, Database};

/// One benchmark query: the hidden "intended" query of an experiment.
#[derive(Debug, Clone)]
pub struct BenchmarkQuery {
    /// Identifier ("IQ4", "DQ2", "AQ07").
    pub id: String,
    /// Human-readable intent.
    pub description: String,
    /// The ground-truth query.
    pub query: Query,
}

impl BenchmarkQuery {
    fn new(id: &str, description: &str, query: Query) -> Self {
        BenchmarkQuery {
            id: id.into(),
            description: description.into(),
            query,
        }
    }

    /// Result cardinality on a database.
    pub fn cardinality(&self, db: &Database) -> usize {
        Executor::new(db)
            .execute(&self.query)
            .map(|r| r.len())
            .unwrap_or(0)
    }
}

// ---------------------------------------------------------------- IMDb --

struct ImdbFacts {
    biggest_cast_movie: String,
    saga_titles: Vec<String>,
    costar_pair: (String, String),
    top_director: String,
    top_actor: String,
    scifi_actor: String,
}

/// Scan the generated database for the constants the IMDb suite needs.
fn imdb_facts(db: &Database) -> ImdbFacts {
    let person = db.table("person").unwrap();
    let movie = db.table("movie").unwrap();
    let cast = db.table("castinfo").unwrap();
    let m2g = db.table("movietogenre").unwrap();
    let genre = db.table("genre").unwrap();

    let title_of: HashMap<i64, String> = movie
        .iter()
        .map(|(_, r)| (r[0].as_int().unwrap(), r[1].to_string()))
        .collect();
    let name_of: HashMap<i64, String> = person
        .iter()
        .map(|(_, r)| (r[0].as_int().unwrap(), r[1].to_string()))
        .collect();
    let genre_name: HashMap<i64, String> = genre
        .iter()
        .map(|(_, r)| (r[0].as_int().unwrap(), r[1].to_string()))
        .collect();
    let scifi_id: i64 = genre_name
        .iter()
        .find(|(_, n)| n.as_str() == "SciFi")
        .map(|(id, _)| *id)
        .unwrap();

    // Cast lists per movie; acting/directing counts per person.
    let mut cast_by_movie: HashMap<i64, Vec<i64>> = HashMap::new();
    let mut act_count: HashMap<i64, usize> = HashMap::new();
    let mut dir_count: HashMap<i64, usize> = HashMap::new();
    for (_, r) in cast.iter() {
        let (p, m) = (r[0].as_int().unwrap(), r[1].as_int().unwrap());
        let role = r[2].as_text().unwrap_or("");
        cast_by_movie.entry(m).or_default().push(p);
        match role {
            "actor" | "actress" => *act_count.entry(p).or_insert(0) += 1,
            "director" => *dir_count.entry(p).or_insert(0) += 1,
            _ => {}
        }
    }
    // Exclude persons with duplicate names from constant roles: benchmark
    // constants must be unambiguous.
    let mut name_freq: HashMap<&str, usize> = HashMap::new();
    for (_, r) in person.iter() {
        *name_freq.entry(r[1].as_text().unwrap()).or_insert(0) += 1;
    }
    let unambiguous = |p: &i64| name_freq.get(name_of[p].as_str()).copied() == Some(1);

    let biggest_cast = cast_by_movie
        .iter()
        .max_by_key(|(m, c)| (c.len(), -**m))
        .map(|(m, _)| *m)
        .unwrap();

    // Strongest co-star pair (bounded scan).
    let mut pair_counts: HashMap<(i64, i64), usize> = HashMap::new();
    for members in cast_by_movie.values() {
        if members.len() > 60 {
            continue;
        }
        let mut ms = members.clone();
        ms.sort_unstable();
        ms.dedup();
        for i in 0..ms.len() {
            for j in (i + 1)..ms.len() {
                *pair_counts.entry((ms[i], ms[j])).or_insert(0) += 1;
            }
        }
    }
    let (best_pair, _) = pair_counts
        .iter()
        .filter(|((a, b), _)| unambiguous(a) && unambiguous(b))
        .max_by_key(|((a, b), c)| (**c, -(a + b)))
        .map(|(p, c)| (*p, *c))
        .unwrap();

    let top_director = dir_count
        .iter()
        .filter(|(p, _)| unambiguous(p))
        .max_by_key(|(p, c)| (**c, -**p))
        .map(|(p, _)| *p)
        .unwrap();
    let top_actor = act_count
        .iter()
        .filter(|(p, _)| unambiguous(p))
        .max_by_key(|(p, c)| (**c, -**p))
        .map(|(p, _)| *p)
        .unwrap();

    // Person with the most SciFi appearances.
    let scifi_movies: std::collections::HashSet<i64> = m2g
        .iter()
        .filter(|(_, r)| r[1].as_int() == Some(scifi_id))
        .map(|(_, r)| r[0].as_int().unwrap())
        .collect();
    let mut scifi_count: HashMap<i64, usize> = HashMap::new();
    for (m, members) in &cast_by_movie {
        if scifi_movies.contains(m) {
            for p in members {
                *scifi_count.entry(*p).or_insert(0) += 1;
            }
        }
    }
    let scifi_actor = scifi_count
        .iter()
        .filter(|(p, _)| unambiguous(p))
        .max_by_key(|(p, c)| (**c, -**p))
        .map(|(p, _)| *p)
        .unwrap();

    let mut saga_titles: Vec<String> = title_of
        .values()
        .filter(|t| t.starts_with("Saga Part"))
        .cloned()
        .collect();
    saga_titles.sort();

    ImdbFacts {
        biggest_cast_movie: title_of[&biggest_cast].clone(),
        saga_titles,
        costar_pair: (name_of[&best_pair.0].clone(), name_of[&best_pair.1].clone()),
        top_director: name_of[&top_director].clone(),
        top_actor: name_of[&top_actor].clone(),
        scifi_actor: name_of[&scifi_actor].clone(),
    }
}

fn movie_has_genre(g: &str) -> SemiJoin {
    SemiJoin::exists(vec![
        PathStep::new("movietogenre", "id", "movie_id"),
        PathStep::new("genre", "genre_id", "id").filter(Pred::eq("name", g)),
    ])
}

fn movie_has_company(c: &str) -> SemiJoin {
    SemiJoin::exists(vec![
        PathStep::new("movietocompany", "id", "movie_id"),
        PathStep::new("company", "company_id", "id").filter(Pred::eq("name", c)),
    ])
}

fn movie_has_person(name: &str) -> SemiJoin {
    SemiJoin::exists(vec![
        PathStep::new("castinfo", "id", "movie_id"),
        PathStep::new("person", "person_id", "id").filter(Pred::eq("name", name)),
    ])
}

fn person_in_movie(title: &str) -> SemiJoin {
    SemiJoin::exists(vec![
        PathStep::new("castinfo", "id", "person_id"),
        PathStep::new("movie", "movie_id", "id").filter(Pred::eq("title", title)),
    ])
}

/// Pick the largest `k` from `candidates` whose query cardinality is at
/// least `lo`; falls back to the smallest candidate.
fn tune_k(db: &Database, make: impl Fn(u64) -> Query, candidates: &[u64], lo: usize) -> u64 {
    for &k in candidates {
        let q = make(k);
        if Executor::new(db).execute(&q).map(|r| r.len()).unwrap_or(0) >= lo {
            return k;
        }
    }
    *candidates.last().unwrap()
}

/// The 16 IMDb benchmark queries (Figure 19, adapted to the generated
/// data's constants).
pub fn imdb_queries(db: &Database) -> Vec<BenchmarkQuery> {
    let f = imdb_facts(db);
    let mut out = Vec::with_capacity(16);

    out.push(BenchmarkQuery::new(
        "IQ1",
        &format!("Entire cast of {}", f.biggest_cast_movie),
        Query::single(
            QueryBlock::new("person").semi_join(person_in_movie(&f.biggest_cast_movie)),
            "name",
        ),
    ));
    out.push(BenchmarkQuery::new(
        "IQ2",
        "Actors who appeared in all of the Saga trilogy",
        Query::intersect(
            f.saga_titles
                .iter()
                .map(|t| QueryBlock::new("person").semi_join(person_in_movie(t)))
                .collect(),
            "name",
        ),
    ));
    out.push(BenchmarkQuery::new(
        "IQ3",
        "Canadian actresses born after 1970",
        Query::single(
            QueryBlock::new("person")
                .filter(Pred::eq("country", "Canada"))
                .filter(Pred::ge("birth_year", 1970))
                .semi_join(SemiJoin::exists(vec![PathStep::new(
                    "castinfo",
                    "id",
                    "person_id",
                )
                .filter(Pred::eq("role", "actress"))])),
            "name",
        ),
    ));
    out.push(BenchmarkQuery::new(
        "IQ4",
        "SciFi movies released in USA, 2010-2016",
        Query::single(
            QueryBlock::new("movie")
                .filter(Pred::eq("country", "USA"))
                .filter(Pred::between("year", 2010, 2016))
                .semi_join(movie_has_genre("SciFi")),
            "title",
        ),
    ));
    out.push(BenchmarkQuery::new(
        "IQ5",
        &format!(
            "Movies where {} and {} acted together",
            f.costar_pair.0, f.costar_pair.1
        ),
        Query::single(
            QueryBlock::new("movie")
                .semi_join(movie_has_person(&f.costar_pair.0))
                .semi_join(movie_has_person(&f.costar_pair.1)),
            "title",
        ),
    ));
    out.push(BenchmarkQuery::new(
        "IQ6",
        &format!("Movies directed by {}", f.top_director),
        Query::single(
            QueryBlock::new("movie").semi_join(SemiJoin::exists(vec![
                PathStep::new("castinfo", "id", "movie_id").filter(Pred::eq("role", "director")),
                PathStep::new("person", "person_id", "id")
                    .filter(Pred::eq("name", f.top_director.as_str())),
            ])),
            "title",
        ),
    ));
    out.push(BenchmarkQuery::new(
        "IQ7",
        "All movies (pure projection, no selection)",
        Query::single(QueryBlock::new("movie"), "title"),
    ));
    out.push(BenchmarkQuery::new(
        "IQ8",
        &format!("Movies featuring {}", f.top_actor),
        Query::single(
            QueryBlock::new("movie").semi_join(movie_has_person(&f.top_actor)),
            "title",
        ),
    ));
    let iq9_k = tune_k(
        db,
        |k| {
            Query::single(
                QueryBlock::new("person")
                    .filter(Pred::eq("country", "India"))
                    .semi_join(SemiJoin::at_least(
                        k,
                        vec![
                            PathStep::new("castinfo", "id", "person_id"),
                            PathStep::new("movie", "movie_id", "id")
                                .filter(Pred::eq("country", "USA")),
                        ],
                    )),
                "name",
            )
        },
        &[15, 10, 8, 5, 3],
        8,
    );
    out.push(BenchmarkQuery::new(
        "IQ9",
        &format!("Indian actors in at least {iq9_k} USA movies"),
        Query::single(
            QueryBlock::new("person")
                .filter(Pred::eq("country", "India"))
                .semi_join(SemiJoin::at_least(
                    iq9_k,
                    vec![
                        PathStep::new("castinfo", "id", "person_id"),
                        PathStep::new("movie", "movie_id", "id").filter(Pred::eq("country", "USA")),
                    ],
                )),
            "name",
        ),
    ));
    let iq10_k = tune_k(
        db,
        |k| {
            Query::single(
                QueryBlock::new("person").semi_join(SemiJoin::at_least(
                    k,
                    vec![
                        PathStep::new("castinfo", "id", "person_id"),
                        PathStep::new("movie", "movie_id", "id")
                            .filter(Pred::eq("country", "Russia"))
                            .filter(Pred::ge("year", 2011)),
                    ],
                )),
                "name",
            )
        },
        &[10, 8, 5, 3],
        8,
    );
    out.push(BenchmarkQuery::new(
        "IQ10",
        &format!("Actors in more than {iq10_k} Russian movies released after 2010 (compound: outside SQuID's space)"),
        Query::single(
            QueryBlock::new("person").semi_join(SemiJoin::at_least(
                iq10_k,
                vec![
                    PathStep::new("castinfo", "id", "person_id"),
                    PathStep::new("movie", "movie_id", "id")
                        .filter(Pred::eq("country", "Russia"))
                        .filter(Pred::ge("year", 2011)),
                ],
            )),
            "name",
        ),
    ));
    out.push(BenchmarkQuery::new(
        "IQ11",
        "USA Horror-Drama movies, 2005-2008",
        Query::single(
            QueryBlock::new("movie")
                .filter(Pred::eq("country", "USA"))
                .filter(Pred::between("year", 2005, 2008))
                .semi_join(movie_has_genre("Horror"))
                .semi_join(movie_has_genre("Drama")),
            "title",
        ),
    ));
    out.push(BenchmarkQuery::new(
        "IQ12",
        "Movies produced by Magic Kingdom Pictures",
        Query::single(
            QueryBlock::new("movie").semi_join(movie_has_company("Magic Kingdom Pictures")),
            "title",
        ),
    ));
    out.push(BenchmarkQuery::new(
        "IQ13",
        "Animation movies produced by Luxo Animation",
        Query::single(
            QueryBlock::new("movie")
                .semi_join(movie_has_genre("Animation"))
                .semi_join(movie_has_company("Luxo Animation")),
            "title",
        ),
    ));
    out.push(BenchmarkQuery::new(
        "IQ14",
        &format!("SciFi movies featuring {}", f.scifi_actor),
        Query::single(
            QueryBlock::new("movie")
                .semi_join(movie_has_genre("SciFi"))
                .semi_join(movie_has_person(&f.scifi_actor)),
            "title",
        ),
    ));
    out.push(BenchmarkQuery::new(
        "IQ15",
        "Japanese Animation movies",
        Query::single(
            QueryBlock::new("movie")
                .filter(Pred::eq("country", "Japan"))
                .semi_join(movie_has_genre("Animation")),
            "title",
        ),
    ));
    let iq16_k = tune_k(
        db,
        |k| {
            Query::single(
                QueryBlock::new("movie")
                    .semi_join(movie_has_company("Magic Kingdom Pictures"))
                    .semi_join(SemiJoin::at_least(
                        k,
                        vec![
                            PathStep::new("castinfo", "id", "movie_id"),
                            PathStep::new("person", "person_id", "id")
                                .filter(Pred::eq("country", "USA")),
                        ],
                    )),
                "title",
            )
        },
        &[15, 10, 8, 5, 3],
        8,
    );
    out.push(BenchmarkQuery::new(
        "IQ16",
        &format!("Magic Kingdom movies with at least {iq16_k} American cast members"),
        Query::single(
            QueryBlock::new("movie")
                .semi_join(movie_has_company("Magic Kingdom Pictures"))
                .semi_join(SemiJoin::at_least(
                    iq16_k,
                    vec![
                        PathStep::new("castinfo", "id", "movie_id"),
                        PathStep::new("person", "person_id", "id")
                            .filter(Pred::eq("country", "USA")),
                    ],
                )),
            "title",
        ),
    ));
    out
}

// ---------------------------------------------------------------- DBLP --

fn author_in_venue(v: &str) -> Vec<PathStep> {
    vec![
        PathStep::new("writes", "id", "author_id"),
        PathStep::new("pubtovenue", "pub_id", "pub_id"),
        PathStep::new("venue", "venue_id", "id").filter(Pred::eq("name", v)),
    ]
}

/// The 5 DBLP benchmark queries (Figure 20, adapted).
pub fn dblp_queries(db: &Database) -> Vec<BenchmarkQuery> {
    let mut out = Vec::with_capacity(5);
    out.push(BenchmarkQuery::new(
        "DQ1",
        "Authors who published in both SIGMOD and VLDB",
        Query::intersect(
            vec![
                QueryBlock::new("author").semi_join(SemiJoin::exists(author_in_venue("SIGMOD"))),
                QueryBlock::new("author").semi_join(SemiJoin::exists(author_in_venue("VLDB"))),
            ],
            "name",
        ),
    ));
    let dq2_k = tune_k(
        db,
        |k| {
            Query::intersect(
                vec![
                    QueryBlock::new("author")
                        .semi_join(SemiJoin::at_least(k, author_in_venue("SIGMOD"))),
                    QueryBlock::new("author")
                        .semi_join(SemiJoin::at_least(k, author_in_venue("VLDB"))),
                ],
                "name",
            )
        },
        &[10, 8, 5, 3],
        8,
    );
    out.push(BenchmarkQuery::new(
        "DQ2",
        &format!("Authors with at least {dq2_k} SIGMOD and {dq2_k} VLDB publications"),
        Query::intersect(
            vec![
                QueryBlock::new("author")
                    .semi_join(SemiJoin::at_least(dq2_k, author_in_venue("SIGMOD"))),
                QueryBlock::new("author")
                    .semi_join(SemiJoin::at_least(dq2_k, author_in_venue("VLDB"))),
            ],
            "name",
        ),
    ));
    out.push(BenchmarkQuery::new(
        "DQ3",
        "SIGMOD publications, 2010-2012",
        Query::single(
            QueryBlock::new("publication")
                .filter(Pred::between("year", 2010, 2012))
                .semi_join(SemiJoin::exists(vec![
                    PathStep::new("pubtovenue", "id", "pub_id"),
                    PathStep::new("venue", "venue_id", "id").filter(Pred::eq("name", "SIGMOD")),
                ])),
            "title",
        ),
    ));
    // DQ4: publications coauthored by the strongest coauthor pair.
    let writes = db.table("writes").unwrap();
    let mut by_pub: HashMap<i64, Vec<i64>> = HashMap::new();
    for (_, r) in writes.iter() {
        by_pub
            .entry(r[1].as_int().unwrap())
            .or_default()
            .push(r[0].as_int().unwrap());
    }
    let mut pair_counts: HashMap<(i64, i64), usize> = HashMap::new();
    for authors in by_pub.values() {
        if authors.len() > 40 {
            continue;
        }
        let mut a = authors.clone();
        a.sort_unstable();
        a.dedup();
        for i in 0..a.len() {
            for j in (i + 1)..a.len() {
                *pair_counts.entry((a[i], a[j])).or_insert(0) += 1;
            }
        }
    }
    let (pa, pb) = pair_counts
        .iter()
        .max_by_key(|((a, b), c)| (**c, -(a + b)))
        .map(|(p, _)| *p)
        .unwrap();
    let author_table = db.table("author").unwrap();
    let name_of = |id: i64| -> String {
        author_table
            .iter()
            .find(|(_, r)| r[0].as_int() == Some(id))
            .map(|(_, r)| r[1].to_string())
            .unwrap()
    };
    let (na, nb) = (name_of(pa), name_of(pb));
    let pub_has_author = |n: &str| {
        SemiJoin::exists(vec![
            PathStep::new("writes", "id", "pub_id"),
            PathStep::new("author", "author_id", "id").filter(Pred::eq("name", n)),
        ])
    };
    out.push(BenchmarkQuery::new(
        "DQ4",
        &format!("Publications coauthored by {na} and {nb}"),
        Query::single(
            QueryBlock::new("publication")
                .semi_join(pub_has_author(&na))
                .semi_join(pub_has_author(&nb)),
            "title",
        ),
    ));
    out.push(BenchmarkQuery::new(
        "DQ5",
        "Publications with authors from both USA and Canada",
        Query::single(
            QueryBlock::new("publication")
                .semi_join(SemiJoin::exists(vec![
                    PathStep::new("writes", "id", "pub_id"),
                    PathStep::new("author", "author_id", "id").filter(Pred::eq("country", "USA")),
                ]))
                .semi_join(SemiJoin::exists(vec![
                    PathStep::new("writes", "id", "pub_id"),
                    PathStep::new("author", "author_id", "id")
                        .filter(Pred::eq("country", "Canada")),
                ])),
            "title",
        ),
    ));
    out
}

// --------------------------------------------------------------- Adult --

/// Generate `count` randomized Adult benchmark queries in the style of
/// Figure 22: 2–7 selection predicates over random attributes, accepted
/// when the result cardinality lands in `[8, 1500]`.
pub fn adult_queries(db: &Database, seed: u64, count: usize) -> Vec<BenchmarkQuery> {
    let table = db.table("adult").unwrap();
    let schema = table.schema().clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let n = table.len();
    let mut out = Vec::with_capacity(count);
    let attrs: Vec<(usize, &str, DataType)> = schema
        .columns
        .iter()
        .enumerate()
        .filter(|(i, c)| c.name != "id" && c.name != "name" && schema.primary_key != Some(*i))
        .map(|(i, c)| (i, c.name.as_str(), c.dtype))
        .collect();

    let mut attempts = 0;
    while out.len() < count && attempts < count * 200 {
        attempts += 1;
        let k = rng.random_range(2..=7usize);
        // Choose k distinct attributes.
        let mut chosen: Vec<usize> = (0..attrs.len()).collect();
        for i in 0..k.min(chosen.len()) {
            let j = rng.random_range(i..chosen.len());
            chosen.swap(i, j);
        }
        chosen.truncate(k);

        // Seed the predicates from a random row so the query is satisfiable.
        let row = table.row(rng.random_range(0..n)).unwrap().to_vec();
        let mut block = QueryBlock::new("adult");
        let mut desc: Vec<String> = Vec::new();
        for &ai in &chosen {
            let (ci, name, dtype) = attrs[ai];
            match dtype {
                DataType::Text | DataType::Bool => {
                    let v = row[ci];
                    desc.push(format!("{name} = {v}"));
                    block = block.filter(Pred::eq(name, v));
                }
                DataType::Int | DataType::Float => {
                    let v = row[ci].as_int().unwrap_or(0);
                    let spread = match name {
                        "age" => rng.random_range(1..=8),
                        "hoursperweek" => rng.random_range(1..=6),
                        _ => rng.random_range(100..=4000), // capital columns
                    };
                    let (lo, hi) = (v - spread / 2, v + spread);
                    desc.push(format!("{name} in [{lo}, {hi}]"));
                    block = block.filter(Pred::between(name, lo, hi));
                }
            }
        }
        let q = Query::single(block, "name");
        let card = Executor::new(db).execute(&q).map(|r| r.len()).unwrap_or(0);
        if (8..=1500).contains(&card) {
            out.push(BenchmarkQuery::new(
                &format!("AQ{:02}", out.len() + 1),
                &desc.join(" AND "),
                q,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adult::{generate_adult, AdultConfig};
    use crate::dblp::{generate_dblp, DblpConfig};
    use crate::imdb::{generate_imdb, ImdbConfig};

    #[test]
    fn imdb_suite_has_16_nonempty_queries() {
        let db = generate_imdb(&ImdbConfig::tiny());
        let qs = imdb_queries(&db);
        assert_eq!(qs.len(), 16);
        for q in &qs {
            let card = q.cardinality(&db);
            assert!(card > 0, "{} ({}) returned no rows", q.id, q.description);
        }
    }

    #[test]
    fn iq2_is_an_intersection_with_shared_cast() {
        let db = generate_imdb(&ImdbConfig::tiny());
        let qs = imdb_queries(&db);
        let iq2 = qs.iter().find(|q| q.id == "IQ2").unwrap();
        assert_eq!(iq2.query.blocks.len(), 3);
        assert!(iq2.cardinality(&db) >= 20, "saga core cast");
    }

    #[test]
    fn iq7_returns_every_movie() {
        let cfg = ImdbConfig::tiny();
        let db = generate_imdb(&cfg);
        let qs = imdb_queries(&db);
        let iq7 = qs.iter().find(|q| q.id == "IQ7").unwrap();
        assert_eq!(iq7.cardinality(&db), cfg.movies);
    }

    #[test]
    fn dblp_suite_has_5_nonempty_queries() {
        let db = generate_dblp(&DblpConfig::tiny());
        let qs = dblp_queries(&db);
        assert_eq!(qs.len(), 5);
        for q in &qs {
            assert!(q.cardinality(&db) > 0, "{} empty", q.id);
        }
    }

    #[test]
    fn adult_suite_generates_in_cardinality_band() {
        let db = generate_adult(&AdultConfig::tiny());
        let qs = adult_queries(&db, 42, 10);
        assert!(qs.len() >= 8, "generated only {}", qs.len());
        for q in &qs {
            let card = q.cardinality(&db);
            assert!((8..=1500).contains(&card), "{}: {card}", q.id);
        }
    }

    #[test]
    fn adult_queries_are_deterministic() {
        let db = generate_adult(&AdultConfig::tiny());
        let a = adult_queries(&db, 7, 5);
        let b = adult_queries(&db, 7, 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.description, y.description);
        }
    }

    #[test]
    fn predicate_counts_match_shapes() {
        let db = generate_imdb(&ImdbConfig::tiny());
        let qs = imdb_queries(&db);
        let by_id = |id: &str| qs.iter().find(|q| q.id == id).unwrap();
        assert_eq!(by_id("IQ7").query.total_predicate_count(), 0);
        assert!(by_id("IQ2").query.total_predicate_count() >= 6);
        assert!(by_id("IQ16").query.total_predicate_count() >= 5);
    }
}
