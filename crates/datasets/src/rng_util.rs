//! Small deterministic sampling helpers shared by the dataset generators.

use rand::rngs::StdRng;
use rand::Rng;

/// Sample an index according to (unnormalized) weights.
pub fn weighted_index(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "weights must not all be zero");
    let mut x = rng.random_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// Sample from a bounded discrete power law on `[1, max]`:
/// `P(k) ∝ k^(-alpha)` approximated by inverse-transform sampling of the
/// continuous Pareto, then clamped. Produces the heavy-tailed career /
/// productivity sizes the IMDb and DBLP generators rely on.
pub fn power_law(rng: &mut StdRng, alpha: f64, max: u64) -> u64 {
    let u: f64 = rng.random_range(f64::EPSILON..1.0);
    let x = u.powf(-1.0 / alpha);
    (x.floor() as u64).clamp(1, max)
}

/// Choose one element of a slice uniformly.
pub fn choose<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.random_range(0..items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(7);
        let weights = [0.9, 0.1];
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert!(counts[0] > 8_000, "{counts:?}");
        assert!(counts[1] > 300, "{counts:?}");
    }

    #[test]
    fn power_law_is_heavy_tailed_and_bounded() {
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<u64> = (0..20_000).map(|_| power_law(&mut rng, 1.2, 100)).collect();
        assert!(samples.iter().all(|&s| (1..=100).contains(&s)));
        let ones = samples.iter().filter(|&&s| s == 1).count();
        let big = samples.iter().filter(|&&s| s >= 50).count();
        assert!(ones > samples.len() / 3, "mass at 1: {ones}");
        assert!(big > 10, "a tail must exist: {big}");
    }

    #[test]
    fn generators_are_deterministic() {
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..50).map(|_| power_law(&mut rng, 1.1, 80)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..50).map(|_| power_law(&mut rng, 1.1, 80)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn choose_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(choose(&mut rng, &items)));
        }
    }
}
