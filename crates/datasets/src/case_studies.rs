//! Case-study workloads (paper §7.4): human-curated example lists for
//! abstract intents ("funny actors") that no SQL query models exactly.
//!
//! The paper uses public IMDb lists; here we simulate the documented biases
//! of such lists: they sample the *popular* members of the true intent
//! (popularity = career size / productivity) and include some off-intent
//! noise. Precision is therefore bounded away from 1 while recall should
//! rise with enough examples — the Figure 13 shape. The paper counters the
//! popularity bias with a *popularity mask* (footnote 14); we provide one.

use std::collections::{BTreeSet, HashMap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use squid_relation::{Database, RowId, RowSet};

/// A simulated human list for one abstract intent.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Study name ("funny-actors").
    pub name: String,
    /// Entity table the intent ranges over.
    pub entity: String,
    /// Projection column.
    pub column: String,
    /// The human list: example values to sample from.
    pub list: Vec<String>,
    /// Ground-truth intent rows (for recall).
    pub intent_rows: RowSet,
    /// Popularity mask: rows considered "list-worthy"; precision is
    /// measured within this mask (Appendix D, footnote 14).
    pub popularity_mask: RowSet,
}

/// Career size (number of castinfo rows) per person row.
fn person_popularity(db: &Database) -> HashMap<RowId, usize> {
    let person = db.table("person").unwrap();
    let pk_to_row: HashMap<i64, RowId> = person
        .iter()
        .map(|(rid, r)| (r[0].as_int().unwrap(), rid))
        .collect();
    let mut pop: HashMap<RowId, usize> = HashMap::new();
    for (_, r) in db.table("castinfo").unwrap().iter() {
        if let Some(&rid) = pk_to_row.get(&r[0].as_int().unwrap()) {
            *pop.entry(rid).or_insert(0) += 1;
        }
    }
    pop
}

/// Comedy-appearance count per person row.
fn comedy_counts(db: &Database) -> HashMap<RowId, (usize, usize)> {
    let person = db.table("person").unwrap();
    let pk_to_row: HashMap<i64, RowId> = person
        .iter()
        .map(|(rid, r)| (r[0].as_int().unwrap(), rid))
        .collect();
    let genre = db.table("genre").unwrap();
    let comedy_id = genre
        .iter()
        .find(|(_, r)| r[1].as_text() == Some("Comedy"))
        .map(|(_, r)| r[0].as_int().unwrap())
        .unwrap();
    let comedy_movies: BTreeSet<i64> = db
        .table("movietogenre")
        .unwrap()
        .iter()
        .filter(|(_, r)| r[1].as_int() == Some(comedy_id))
        .map(|(_, r)| r[0].as_int().unwrap())
        .collect();
    let mut counts: HashMap<RowId, (usize, usize)> = HashMap::new();
    for (_, r) in db.table("castinfo").unwrap().iter() {
        if let Some(&rid) = pk_to_row.get(&r[0].as_int().unwrap()) {
            let e = counts.entry(rid).or_insert((0, 0));
            e.1 += 1;
            if comedy_movies.contains(&r[1].as_int().unwrap()) {
                e.0 += 1;
            }
        }
    }
    counts
}

#[allow(clippy::too_many_arguments)] // internal helper; the params are the knobs
fn build_list(
    db: &Database,
    table: &str,
    column: &str,
    intent: &RowSet,
    popularity: &HashMap<RowId, usize>,
    list_size: usize,
    noise_rate: f64,
    seed: u64,
) -> (Vec<String>, RowSet) {
    let t = db.table(table).unwrap();
    let ci = t.schema().column_index(column).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    // Rank intent members by popularity; the list takes the top slice.
    let mut ranked: Vec<RowId> = intent.iter().collect();
    ranked.sort_by_key(|&r| {
        (
            std::cmp::Reverse(popularity.get(&r).copied().unwrap_or(0)),
            r,
        )
    });
    let core = ((list_size as f64) * (1.0 - noise_rate)) as usize;
    let mut rows: Vec<RowId> = ranked.into_iter().take(core).collect();
    // Off-intent noise: popular entities that are NOT in the intent.
    let mut outsiders: Vec<RowId> = popularity
        .iter()
        .filter(|(r, _)| !intent.contains(**r))
        .map(|(r, _)| *r)
        .collect();
    outsiders.sort_by_key(|&r| {
        (
            std::cmp::Reverse(popularity.get(&r).copied().unwrap_or(0)),
            r,
        )
    });
    while rows.len() < list_size && !outsiders.is_empty() {
        let idx = rng.random_range(0..outsiders.len().min(200));
        rows.push(outsiders.swap_remove(idx));
    }
    // Popularity mask: everyone at least as popular as the least popular
    // list member.
    let min_pop = rows
        .iter()
        .map(|r| popularity.get(r).copied().unwrap_or(0))
        .min()
        .unwrap_or(0);
    let mask: RowSet = popularity
        .iter()
        .filter(|(_, &p)| p >= min_pop)
        .map(|(r, _)| *r)
        .collect();
    let list = rows
        .iter()
        .filter_map(|&r| t.cell(r, ci).and_then(|v| v.as_text().map(str::to_string)))
        .collect();
    (list, mask)
}

/// "Funny actors": persons whose careers are dominated by comedy
/// (≥ 60% comedy share and ≥ 8 comedies).
pub fn funny_actors(db: &Database) -> CaseStudy {
    let counts = comedy_counts(db);
    let intent: RowSet = counts
        .iter()
        .filter(|(_, (c, t))| *c >= 8 && (*c as f64) / (*t as f64).max(1.0) >= 0.6)
        .map(|(r, _)| *r)
        .collect();
    let pop = person_popularity(db);
    let list_size = intent.len().clamp(10, 200);
    let (list, mask) = build_list(db, "person", "name", &intent, &pop, list_size, 0.1, 101);
    CaseStudy {
        name: "funny-actors".into(),
        entity: "person".into(),
        column: "name".into(),
        list,
        intent_rows: intent,
        popularity_mask: mask,
    }
}

/// "2000s Sci-Fi movies": SciFi movies released 2000–2009; popularity =
/// cast size.
pub fn scifi_2000s(db: &Database) -> CaseStudy {
    let movie = db.table("movie").unwrap();
    let genre = db.table("genre").unwrap();
    let scifi_id = genre
        .iter()
        .find(|(_, r)| r[1].as_text() == Some("SciFi"))
        .map(|(_, r)| r[0].as_int().unwrap())
        .unwrap();
    let scifi: BTreeSet<i64> = db
        .table("movietogenre")
        .unwrap()
        .iter()
        .filter(|(_, r)| r[1].as_int() == Some(scifi_id))
        .map(|(_, r)| r[0].as_int().unwrap())
        .collect();
    let intent: RowSet = movie
        .iter()
        .filter(|(_, r)| {
            let y = r[2].as_int().unwrap_or(0);
            (2000..=2009).contains(&y) && scifi.contains(&r[0].as_int().unwrap())
        })
        .map(|(rid, _)| rid)
        .collect();
    // Popularity: cast size.
    let pk_to_row: HashMap<i64, RowId> = movie
        .iter()
        .map(|(rid, r)| (r[0].as_int().unwrap(), rid))
        .collect();
    let mut pop: HashMap<RowId, usize> = HashMap::new();
    for (_, r) in db.table("castinfo").unwrap().iter() {
        if let Some(&rid) = pk_to_row.get(&r[1].as_int().unwrap()) {
            *pop.entry(rid).or_insert(0) += 1;
        }
    }
    let list_size = intent.len().clamp(10, 160);
    let (list, mask) = build_list(db, "movie", "title", &intent, &pop, list_size, 0.08, 202);
    CaseStudy {
        name: "scifi-2000s".into(),
        entity: "movie".into(),
        column: "title".into(),
        list,
        intent_rows: intent,
        popularity_mask: mask,
    }
}

/// "Prolific database researchers": authors with ≥ 12 papers in the
/// database flagship venues; the list takes the 30 most prolific.
pub fn prolific_db_researchers(db: &Database) -> CaseStudy {
    let author = db.table("author").unwrap();
    let pk_to_row: HashMap<i64, RowId> = author
        .iter()
        .map(|(rid, r)| (r[0].as_int().unwrap(), rid))
        .collect();
    let venue = db.table("venue").unwrap();
    let db_venues: BTreeSet<i64> = venue
        .iter()
        .filter(|(_, r)| matches!(r[1].as_text(), Some("SIGMOD") | Some("VLDB")))
        .map(|(_, r)| r[0].as_int().unwrap())
        .collect();
    let db_pubs: BTreeSet<i64> = db
        .table("pubtovenue")
        .unwrap()
        .iter()
        .filter(|(_, r)| db_venues.contains(&r[1].as_int().unwrap()))
        .map(|(_, r)| r[0].as_int().unwrap())
        .collect();
    let mut counts: HashMap<RowId, usize> = HashMap::new();
    let mut pop: HashMap<RowId, usize> = HashMap::new();
    for (_, r) in db.table("writes").unwrap().iter() {
        if let Some(&rid) = pk_to_row.get(&r[0].as_int().unwrap()) {
            *pop.entry(rid).or_insert(0) += 1;
            if db_pubs.contains(&r[1].as_int().unwrap()) {
                *counts.entry(rid).or_insert(0) += 1;
            }
        }
    }
    let intent: RowSet = counts
        .iter()
        .filter(|(_, &c)| c >= 12)
        .map(|(r, _)| *r)
        .collect();
    let (list, mask) = build_list(db, "author", "name", &intent, &pop, 30, 0.1, 303);
    CaseStudy {
        name: "prolific-db-researchers".into(),
        entity: "author".into(),
        column: "name".into(),
        list,
        intent_rows: intent,
        popularity_mask: mask,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dblp::{generate_dblp, DblpConfig};
    use crate::imdb::{generate_imdb, ImdbConfig};

    #[test]
    fn funny_actors_list_is_nonempty_and_mostly_on_intent() {
        let db = generate_imdb(&ImdbConfig::tiny());
        let cs = funny_actors(&db);
        assert!(cs.list.len() >= 10);
        assert!(!cs.intent_rows.is_empty());
        assert!(cs.popularity_mask.len() >= cs.intent_rows.len() / 2);
    }

    #[test]
    fn scifi_study_targets_movies() {
        let db = generate_imdb(&ImdbConfig::tiny());
        let cs = scifi_2000s(&db);
        assert_eq!(cs.entity, "movie");
        assert!(!cs.list.is_empty());
    }

    #[test]
    fn researcher_study_has_30_names() {
        let db = generate_dblp(&DblpConfig::tiny());
        let cs = prolific_db_researchers(&db);
        assert!(
            cs.list.len() <= 30 && cs.list.len() >= 10,
            "{}",
            cs.list.len()
        );
        assert!(!cs.intent_rows.is_empty());
    }

    #[test]
    fn lists_are_deterministic() {
        let db = generate_imdb(&ImdbConfig::tiny());
        assert_eq!(funny_actors(&db).list, funny_actors(&db).list);
    }
}
