//! Feature extraction for the learning baselines: turn a (possibly
//! denormalized) relational table into a numeric/categorical feature
//! matrix.
//!
//! The TALOS-style QRE baseline (§7.5) "first performs a full join among
//! the participating relations and then performs classification on the
//! denormalized table". [`denormalize`] reproduces that: one output row per
//! (entity, fact row) pair, carrying the entity's attributes plus the fact
//! and associated table's attributes; entities absent from a fact table
//! keep a single row with missing fact features.

use std::collections::HashMap;

use squid_relation::{DataType, Database, RowId, TableRole, Value};

/// The kind of one feature column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureKind {
    /// Categorical (string-interned).
    Categorical,
    /// Numeric.
    Numeric,
}

/// One feature value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureValue {
    /// Interned categorical code.
    Cat(u32),
    /// Numeric value.
    Num(f64),
    /// Missing (nulls, or features from a block this row doesn't have).
    Missing,
}

/// A dense feature matrix with per-column string interning.
#[derive(Debug, Clone, Default)]
pub struct FeatureMatrix {
    /// Column names (qualified, e.g. `movie.year`).
    pub names: Vec<String>,
    /// Column kinds.
    pub kinds: Vec<FeatureKind>,
    /// Interned category labels per column (empty for numeric columns).
    pub vocab: Vec<Vec<String>>,
    /// Row-major data.
    pub rows: Vec<Vec<FeatureValue>>,
}

impl FeatureMatrix {
    /// Number of feature columns.
    pub fn width(&self) -> usize {
        self.names.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The label of a categorical code.
    pub fn label(&self, column: usize, code: u32) -> &str {
        &self.vocab[column][code as usize]
    }
}

/// Builder that interns categorical values per column.
struct MatrixBuilder {
    matrix: FeatureMatrix,
    intern: Vec<HashMap<String, u32>>,
}

impl MatrixBuilder {
    fn new() -> Self {
        MatrixBuilder {
            matrix: FeatureMatrix::default(),
            intern: Vec::new(),
        }
    }

    fn add_column(&mut self, name: String, kind: FeatureKind) -> usize {
        self.matrix.names.push(name);
        self.matrix.kinds.push(kind);
        self.matrix.vocab.push(Vec::new());
        self.intern.push(HashMap::new());
        self.matrix.names.len() - 1
    }

    fn encode(&mut self, column: usize, v: &Value) -> FeatureValue {
        match (self.matrix.kinds[column], v) {
            (_, Value::Null) => FeatureValue::Missing,
            (FeatureKind::Numeric, v) => v
                .as_float()
                .map(FeatureValue::Num)
                .unwrap_or(FeatureValue::Missing),
            (FeatureKind::Categorical, v) => {
                let s = v.to_string();
                let next = self.intern[column].len() as u32;
                let code = *self.intern[column].entry(s.clone()).or_insert_with(|| next);
                if code == next {
                    self.matrix.vocab[column].push(s);
                }
                FeatureValue::Cat(code)
            }
        }
    }
}

fn kind_of(dtype: DataType) -> FeatureKind {
    match dtype {
        DataType::Int | DataType::Float => FeatureKind::Numeric,
        DataType::Text | DataType::Bool => FeatureKind::Categorical,
    }
}

/// Extract features from a single table (one row per table row). Excludes
/// the primary key and any `name`-like projection columns passed in
/// `exclude`.
pub fn single_table(db: &Database, table: &str, exclude: &[&str]) -> (FeatureMatrix, Vec<RowId>) {
    let t = db.table(table).expect("table exists");
    let schema = t.schema();
    let mut b = MatrixBuilder::new();
    let mut cols: Vec<usize> = Vec::new();
    for (i, c) in schema.columns.iter().enumerate() {
        if schema.primary_key == Some(i) || exclude.contains(&c.name.as_str()) {
            continue;
        }
        b.add_column(format!("{table}.{}", c.name), kind_of(c.dtype));
        cols.push(i);
    }
    let mut origin = Vec::with_capacity(t.len());
    for (rid, row) in t.iter() {
        let frow: Vec<FeatureValue> = cols
            .iter()
            .enumerate()
            .map(|(fi, &ci)| b.encode(fi, &row[ci]))
            .collect();
        b.matrix.rows.push(frow);
        origin.push(rid);
    }
    (b.matrix, origin)
}

/// TALOS-style denormalization: the entity table joined with every fact
/// table that references it (plus the referenced tables' attributes). One
/// output row per (entity row, fact row); entities with no fact rows keep
/// one row of missing fact features. Returns the matrix and the entity row
/// id each feature row came from.
pub fn denormalize(db: &Database, entity: &str, exclude: &[&str]) -> (FeatureMatrix, Vec<RowId>) {
    let t = db.table(entity).expect("entity exists");
    let schema = t.schema();
    let pk = schema.primary_key.expect("entity pk");
    let mut b = MatrixBuilder::new();

    // Entity columns.
    let mut entity_cols: Vec<(usize, usize)> = Vec::new(); // (feature, column)
    for (i, c) in schema.columns.iter().enumerate() {
        if i == pk || exclude.contains(&c.name.as_str()) {
            continue;
        }
        let f = b.add_column(format!("{entity}.{}", c.name), kind_of(c.dtype));
        entity_cols.push((f, i));
    }

    // One feature block per fact table referencing the entity; each block
    // contributes the fact's own attributes plus the referenced target's
    // attributes (including its display name — TALOS sees `movie.title`).
    struct Block {
        fact: String,
        fact_feature_cols: Vec<(usize, usize)>,
        target: Option<TargetBlock>,
        /// entity pk value → fact row ids
        by_entity: HashMap<i64, Vec<RowId>>,
    }
    struct TargetBlock {
        table: String,
        feature_cols: Vec<(usize, usize)>,
        fact_target_col: usize,
        pk_to_row: HashMap<i64, RowId>,
    }

    let mut blocks: Vec<Block> = Vec::new();
    for assoc in db.associations_of(entity) {
        let fact_t = db.table(assoc.fact_table).unwrap();
        let fact_schema = fact_t.schema();
        let mut fact_feature_cols = Vec::new();
        for (i, c) in fact_schema.columns.iter().enumerate() {
            if fact_schema.foreign_key_on(i).is_some() || fact_schema.primary_key == Some(i) {
                continue;
            }
            let f = b.add_column(format!("{}.{}", assoc.fact_table, c.name), kind_of(c.dtype));
            fact_feature_cols.push((f, i));
        }
        let target_t = db.table(assoc.to_table).unwrap();
        let target_schema = target_t.schema();
        let target = if target_schema.role != TableRole::Fact {
            let tpk = target_schema.primary_key.expect("target pk");
            let mut feature_cols = Vec::new();
            for (i, c) in target_schema.columns.iter().enumerate() {
                if i == tpk {
                    continue;
                }
                let f = b.add_column(format!("{}.{}", assoc.to_table, c.name), kind_of(c.dtype));
                feature_cols.push((f, i));
            }
            let pk_to_row: HashMap<i64, RowId> = target_t
                .iter()
                .filter_map(|(rid, r)| r[tpk].as_int().map(|k| (k, rid)))
                .collect();
            Some(TargetBlock {
                table: assoc.to_table.to_string(),
                feature_cols,
                fact_target_col: assoc.to_column,
                pk_to_row,
            })
        } else {
            None
        };
        let mut by_entity: HashMap<i64, Vec<RowId>> = HashMap::new();
        for (rid, r) in fact_t.iter() {
            if let Some(k) = r[assoc.from_column].as_int() {
                by_entity.entry(k).or_default().push(rid);
            }
        }
        blocks.push(Block {
            fact: assoc.fact_table.to_string(),
            fact_feature_cols,
            target,
            by_entity,
        });
    }

    let width = b.matrix.names.len();
    let mut origin = Vec::new();
    for (rid, row) in t.iter() {
        let Some(pk_val) = row[pk].as_int() else {
            continue;
        };
        let mut base = vec![FeatureValue::Missing; width];
        for &(f, ci) in &entity_cols {
            base[f] = b.encode(f, &row[ci]);
        }
        let mut emitted = false;
        for block in &blocks {
            let Some(fact_rows) = block.by_entity.get(&pk_val) else {
                continue;
            };
            let fact_t = db.table(&block.fact).unwrap();
            for &fr in fact_rows {
                let frow = fact_t.row(fr).unwrap();
                let mut out = base.clone();
                for &(f, ci) in &block.fact_feature_cols {
                    out[f] = b.encode(f, &frow[ci]);
                }
                if let Some(tb) = &block.target {
                    if let Some(k) = frow[tb.fact_target_col].as_int() {
                        if let Some(&trid) = tb.pk_to_row.get(&k) {
                            let tt = db.table(&tb.table).unwrap();
                            let trow = tt.row(trid).unwrap();
                            for &(f, ci) in &tb.feature_cols {
                                out[f] = b.encode(f, &trow[ci]);
                            }
                        }
                    }
                }
                b.matrix.rows.push(out);
                origin.push(rid);
                emitted = true;
            }
        }
        if !emitted {
            b.matrix.rows.push(base);
            origin.push(rid);
        }
    }
    (b.matrix, origin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use squid_adb::test_fixtures::{figure6_db, mini_imdb};

    #[test]
    fn single_table_shapes() {
        let db = figure6_db();
        let (m, origin) = single_table(&db, "person", &["name"]);
        assert_eq!(m.width(), 2); // gender, age
        assert_eq!(m.len(), 6);
        assert_eq!(origin.len(), 6);
        assert_eq!(m.kinds[0], FeatureKind::Categorical);
        assert_eq!(m.kinds[1], FeatureKind::Numeric);
    }

    #[test]
    fn interning_is_stable() {
        let db = figure6_db();
        let (m, _) = single_table(&db, "person", &["name"]);
        // First row is Tom Cruise, Male → code 0.
        assert_eq!(m.rows[0][0], FeatureValue::Cat(0));
        assert_eq!(m.label(0, 0), "Male");
        // Julia Roberts (row 3) is Female → code 1.
        assert_eq!(m.rows[3][0], FeatureValue::Cat(1));
        assert_eq!(m.label(0, 1), "Female");
    }

    #[test]
    fn denormalize_emits_one_row_per_fact_row() {
        let db = mini_imdb();
        let (m, origin) = denormalize(&db, "person", &["name"]);
        // castinfo has 24 rows; every person appears in at least one movie,
        // so the matrix has exactly 24 rows.
        assert_eq!(m.len(), 24);
        assert_eq!(origin.len(), 24);
        // Features include person attrs, castinfo.role, and movie attrs.
        assert!(m.names.iter().any(|n| n == "person.gender"));
        assert!(m.names.iter().any(|n| n == "castinfo.role"));
        assert!(m.names.iter().any(|n| n == "movie.title"));
        assert!(m.names.iter().any(|n| n == "movie.year"));
    }

    #[test]
    fn denormalized_rows_map_back_to_entities() {
        let db = mini_imdb();
        let (_, origin) = denormalize(&db, "person", &["name"]);
        // Jim Carrey (row 0 of person) has 5 castinfo rows.
        let jim_rows = origin.iter().filter(|&&r| r == 0).count();
        assert_eq!(jim_rows, 5);
    }

    #[test]
    fn movie_denormalization_includes_genre_and_cast_blocks() {
        let db = mini_imdb();
        let (m, _) = denormalize(&db, "movie", &["title"]);
        assert!(m.names.iter().any(|n| n == "genre.name"));
        assert!(m.names.iter().any(|n| n == "person.country"));
        assert!(m.len() > db.table("movie").unwrap().len());
    }
}
