//! Feature extraction for the learning baselines: turn a (possibly
//! denormalized) relational table into a numeric/categorical feature
//! matrix.
//!
//! The TALOS-style QRE baseline (§7.5) "first performs a full join among
//! the participating relations and then performs classification on the
//! denormalized table". [`denormalize`] reproduces that: one output row per
//! (entity, fact row) pair, carrying the entity's attributes plus the fact
//! and associated table's attributes; entities absent from a fact table
//! keep a single row with missing fact features.
//!
//! Extraction is **batch-wise over the columnar views**: every table scan
//! goes through the shared kernels of [`squid_relation::kernel`] (non-null
//! words, contiguous typed slices), each source column is encoded once in
//! column order, and categorical codes are memoized per interned symbol —
//! the per-cell `Value::to_string` of the row-at-a-time path survives only
//! for the first occurrence of each distinct category.

use std::collections::HashMap;

use squid_relation::{
    kernel, ColumnData, ColumnVec, DataType, Database, FxHashMap, RowId, Sym, TableRole,
};

/// The kind of one feature column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureKind {
    /// Categorical (string-interned).
    Categorical,
    /// Numeric.
    Numeric,
}

/// One feature value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureValue {
    /// Interned categorical code.
    Cat(u32),
    /// Numeric value.
    Num(f64),
    /// Missing (nulls, or features from a block this row doesn't have).
    Missing,
}

/// A dense feature matrix with per-column string interning.
#[derive(Debug, Clone, Default)]
pub struct FeatureMatrix {
    /// Column names (qualified, e.g. `movie.year`).
    pub names: Vec<String>,
    /// Column kinds.
    pub kinds: Vec<FeatureKind>,
    /// Interned category labels per column (empty for numeric columns).
    pub vocab: Vec<Vec<String>>,
    /// Row-major data.
    pub rows: Vec<Vec<FeatureValue>>,
}

impl FeatureMatrix {
    /// Number of feature columns.
    pub fn width(&self) -> usize {
        self.names.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The label of a categorical code.
    pub fn label(&self, column: usize, code: u32) -> &str {
        &self.vocab[column][code as usize]
    }
}

/// Builder that interns categorical values per column.
struct MatrixBuilder {
    matrix: FeatureMatrix,
    intern: Vec<HashMap<String, u32>>,
}

impl MatrixBuilder {
    fn new() -> Self {
        MatrixBuilder {
            matrix: FeatureMatrix::default(),
            intern: Vec::new(),
        }
    }

    fn add_column(&mut self, name: String, kind: FeatureKind) -> usize {
        self.matrix.names.push(name);
        self.matrix.kinds.push(kind);
        self.matrix.vocab.push(Vec::new());
        self.intern.push(HashMap::new());
        self.matrix.names.len() - 1
    }

    /// Batch-encode one source column into `rows[.][slot]` (each row a
    /// pre-sized feature vector, `Missing`-initialized). Scans the
    /// columnar view through the shared kernels: null lanes are skipped
    /// 64 rows at a time, numeric cells come off the contiguous typed
    /// slices, and categorical cells resolve their code through a
    /// per-symbol memo instead of a per-cell `to_string`.
    fn encode_column_into(
        &mut self,
        feature: usize,
        slot: usize,
        cv: &ColumnVec,
        n: usize,
        rows: &mut [Vec<FeatureValue>],
    ) {
        match (self.matrix.kinds[feature], cv.data()) {
            (FeatureKind::Numeric, ColumnData::Int(xs)) => {
                kernel::scan_non_null(cv, n, |r| rows[r][slot] = FeatureValue::Num(xs[r] as f64));
            }
            (FeatureKind::Numeric, ColumnData::Float(xs)) => {
                kernel::scan_non_null(cv, n, |r| rows[r][slot] = FeatureValue::Num(xs[r]));
            }
            (FeatureKind::Categorical, ColumnData::Text(xs)) => {
                let vocab = &mut self.matrix.vocab[feature];
                let imap = &mut self.intern[feature];
                let mut code_of: FxHashMap<u32, u32> = FxHashMap::default();
                kernel::scan_non_null(cv, n, |r| {
                    let code = *code_of.entry(xs[r]).or_insert_with(|| {
                        let s = Sym::from_id(xs[r]).as_str();
                        let next = imap.len() as u32;
                        let code = *imap.entry(s.to_string()).or_insert(next);
                        if code == next {
                            vocab.push(s.to_string());
                        }
                        code
                    });
                    rows[r][slot] = FeatureValue::Cat(code);
                });
            }
            (FeatureKind::Categorical, ColumnData::Bool(xs)) => {
                let vocab = &mut self.matrix.vocab[feature];
                let imap = &mut self.intern[feature];
                let mut codes: [Option<u32>; 2] = [None, None];
                kernel::scan_non_null(cv, n, |r| {
                    let code = *codes[xs[r] as usize].get_or_insert_with(|| {
                        let s = if xs[r] { "true" } else { "false" };
                        let next = imap.len() as u32;
                        let code = *imap.entry(s.to_string()).or_insert(next);
                        if code == next {
                            vocab.push(s.to_string());
                        }
                        code
                    });
                    rows[r][slot] = FeatureValue::Cat(code);
                });
            }
            // Kind/type mismatches cannot happen (kind is derived from the
            // column's declared dtype); cells stay Missing if they do.
            _ => {}
        }
    }
}

fn kind_of(dtype: DataType) -> FeatureKind {
    match dtype {
        DataType::Int | DataType::Float => FeatureKind::Numeric,
        DataType::Text | DataType::Bool => FeatureKind::Categorical,
    }
}

/// Extract features from a single table (one row per table row). Excludes
/// the primary key and any `name`-like projection columns passed in
/// `exclude`. Scans column-by-column over the columnar view — one batch
/// kernel pass per feature, no per-cell `Value` dispatch.
pub fn single_table(db: &Database, table: &str, exclude: &[&str]) -> (FeatureMatrix, Vec<RowId>) {
    let t = db.table(table).expect("table exists");
    let schema = t.schema();
    let mut b = MatrixBuilder::new();
    let mut cols: Vec<usize> = Vec::new();
    for (i, c) in schema.columns.iter().enumerate() {
        if schema.primary_key == Some(i) || exclude.contains(&c.name.as_str()) {
            continue;
        }
        b.add_column(format!("{table}.{}", c.name), kind_of(c.dtype));
        cols.push(i);
    }
    let n = t.len();
    let mut rows = vec![vec![FeatureValue::Missing; cols.len()]; n];
    for (fi, &ci) in cols.iter().enumerate() {
        b.encode_column_into(fi, fi, t.column(ci), n, &mut rows);
    }
    b.matrix.rows = rows;
    (b.matrix, (0..n).collect())
}

/// TALOS-style denormalization: the entity table joined with every fact
/// table that references it (plus the referenced tables' attributes). One
/// output row per (entity row, fact row); entities with no fact rows keep
/// one row of missing fact features. Returns the matrix and the entity row
/// id each feature row came from.
///
/// Every source table is scanned **once, batch-wise**: entity, fact, and
/// target columns are pre-encoded column-by-column through the kernel
/// scans, and the output assembly is pure gathers from those encoded
/// blocks — no per-cell encoding inside the join loop.
pub fn denormalize(db: &Database, entity: &str, exclude: &[&str]) -> (FeatureMatrix, Vec<RowId>) {
    let t = db.table(entity).expect("entity exists");
    let schema = t.schema();
    let pk = schema.primary_key.expect("entity pk");
    let mut b = MatrixBuilder::new();

    // Entity columns.
    let mut entity_cols: Vec<(usize, usize)> = Vec::new(); // (feature, column)
    for (i, c) in schema.columns.iter().enumerate() {
        if i == pk || exclude.contains(&c.name.as_str()) {
            continue;
        }
        let f = b.add_column(format!("{entity}.{}", c.name), kind_of(c.dtype));
        entity_cols.push((f, i));
    }

    // One feature block per fact table referencing the entity; each block
    // contributes the fact's own attributes plus the referenced target's
    // attributes (including its display name — TALOS sees `movie.title`).
    // Feature cells of the fact/target columns are pre-encoded per source
    // row ("narrow" vectors in block-column order) and gathered during
    // assembly.
    struct Block {
        fact: String,
        /// Global feature indexes of the fact's own columns.
        fact_features: Vec<usize>,
        target: Option<TargetBlock>,
        /// entity pk value → fact row ids
        by_entity: FxHashMap<i64, Vec<RowId>>,
    }
    struct TargetBlock {
        /// Global feature indexes of the target's columns.
        features: Vec<usize>,
        fact_target_col: usize,
        pk_to_row: FxHashMap<i64, RowId>,
    }

    struct BlockCols {
        fact_cols: Vec<usize>,
        target: Option<(String, Vec<usize>)>,
    }

    let mut blocks: Vec<Block> = Vec::new();
    let mut block_cols: Vec<BlockCols> = Vec::new();
    for assoc in db.associations_of(entity) {
        let fact_t = db.table(assoc.fact_table).unwrap();
        let fact_schema = fact_t.schema();
        let mut fact_features = Vec::new();
        let mut fact_cols = Vec::new();
        for (i, c) in fact_schema.columns.iter().enumerate() {
            if fact_schema.foreign_key_on(i).is_some() || fact_schema.primary_key == Some(i) {
                continue;
            }
            let f = b.add_column(format!("{}.{}", assoc.fact_table, c.name), kind_of(c.dtype));
            fact_features.push(f);
            fact_cols.push(i);
        }
        let target_t = db.table(assoc.to_table).unwrap();
        let target_schema = target_t.schema();
        let (target, target_cols) = if target_schema.role != TableRole::Fact {
            let tpk = target_schema.primary_key.expect("target pk");
            let mut features = Vec::new();
            let mut cols = Vec::new();
            for (i, c) in target_schema.columns.iter().enumerate() {
                if i == tpk {
                    continue;
                }
                let f = b.add_column(format!("{}.{}", assoc.to_table, c.name), kind_of(c.dtype));
                features.push(f);
                cols.push(i);
            }
            let mut pk_to_row: FxHashMap<i64, RowId> = FxHashMap::default();
            kernel::scan_ints(target_t.column(tpk), target_t.len(), |rid, k| {
                pk_to_row.insert(k, rid);
            });
            (
                Some(TargetBlock {
                    features,
                    fact_target_col: assoc.to_column,
                    pk_to_row,
                }),
                Some((assoc.to_table.to_string(), cols)),
            )
        } else {
            (None, None)
        };
        let mut by_entity: FxHashMap<i64, Vec<RowId>> = FxHashMap::default();
        kernel::scan_ints(fact_t.column(assoc.from_column), fact_t.len(), |rid, k| {
            by_entity.entry(k).or_default().push(rid);
        });
        blocks.push(Block {
            fact: assoc.fact_table.to_string(),
            fact_features,
            target,
            by_entity,
        });
        block_cols.push(BlockCols {
            fact_cols,
            target: target_cols,
        });
    }

    let width = b.matrix.names.len();

    // Phase 1 — batch-encode every source table, column by column.
    let n = t.len();
    let mut bases = vec![vec![FeatureValue::Missing; width]; n];
    for &(f, ci) in &entity_cols {
        b.encode_column_into(f, f, t.column(ci), n, &mut bases);
    }
    let mut fact_encoded: Vec<Vec<Vec<FeatureValue>>> = Vec::with_capacity(blocks.len());
    let mut target_encoded: Vec<Vec<Vec<FeatureValue>>> = Vec::with_capacity(blocks.len());
    for (block, cols) in blocks.iter().zip(&block_cols) {
        let fact_t = db.table(&block.fact).unwrap();
        let mut enc = vec![vec![FeatureValue::Missing; cols.fact_cols.len()]; fact_t.len()];
        for (slot, (&f, &ci)) in block.fact_features.iter().zip(&cols.fact_cols).enumerate() {
            b.encode_column_into(f, slot, fact_t.column(ci), fact_t.len(), &mut enc);
        }
        fact_encoded.push(enc);
        let enc = match (&block.target, &cols.target) {
            (Some(tb), Some((tname, tcols))) => {
                let tt = db.table(tname).unwrap();
                let mut enc = vec![vec![FeatureValue::Missing; tcols.len()]; tt.len()];
                for (slot, (&f, &ci)) in tb.features.iter().zip(tcols).enumerate() {
                    b.encode_column_into(f, slot, tt.column(ci), tt.len(), &mut enc);
                }
                enc
            }
            _ => Vec::new(),
        };
        target_encoded.push(enc);
    }

    // Phase 2 — assemble output rows by gathering the encoded blocks.
    let mut origin = Vec::new();
    kernel::scan_ints(t.column(pk), n, |rid, pk_val| {
        let base = &bases[rid];
        let mut emitted = false;
        for (bi, block) in blocks.iter().enumerate() {
            let Some(fact_rows) = block.by_entity.get(&pk_val) else {
                continue;
            };
            let fact_t = db.table(&block.fact).unwrap();
            for &fr in fact_rows {
                let mut out = base.clone();
                for (slot, &f) in block.fact_features.iter().enumerate() {
                    out[f] = fact_encoded[bi][fr][slot];
                }
                if let Some(tb) = &block.target {
                    let tcol = fact_t.column(tb.fact_target_col);
                    if let Some(trid) = tcol.int_at(fr).and_then(|k| tb.pk_to_row.get(&k)) {
                        for (slot, &f) in tb.features.iter().enumerate() {
                            out[f] = target_encoded[bi][*trid][slot];
                        }
                    }
                }
                b.matrix.rows.push(out);
                origin.push(rid);
                emitted = true;
            }
        }
        if !emitted {
            b.matrix.rows.push(base.clone());
            origin.push(rid);
        }
    });
    (b.matrix, origin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use squid_adb::test_fixtures::{figure6_db, mini_imdb};

    #[test]
    fn single_table_shapes() {
        let db = figure6_db();
        let (m, origin) = single_table(&db, "person", &["name"]);
        assert_eq!(m.width(), 2); // gender, age
        assert_eq!(m.len(), 6);
        assert_eq!(origin.len(), 6);
        assert_eq!(m.kinds[0], FeatureKind::Categorical);
        assert_eq!(m.kinds[1], FeatureKind::Numeric);
    }

    #[test]
    fn interning_is_stable() {
        let db = figure6_db();
        let (m, _) = single_table(&db, "person", &["name"]);
        // First row is Tom Cruise, Male → code 0.
        assert_eq!(m.rows[0][0], FeatureValue::Cat(0));
        assert_eq!(m.label(0, 0), "Male");
        // Julia Roberts (row 3) is Female → code 1.
        assert_eq!(m.rows[3][0], FeatureValue::Cat(1));
        assert_eq!(m.label(0, 1), "Female");
    }

    #[test]
    fn denormalize_emits_one_row_per_fact_row() {
        let db = mini_imdb();
        let (m, origin) = denormalize(&db, "person", &["name"]);
        // castinfo has 24 rows; every person appears in at least one movie,
        // so the matrix has exactly 24 rows.
        assert_eq!(m.len(), 24);
        assert_eq!(origin.len(), 24);
        // Features include person attrs, castinfo.role, and movie attrs.
        assert!(m.names.iter().any(|n| n == "person.gender"));
        assert!(m.names.iter().any(|n| n == "castinfo.role"));
        assert!(m.names.iter().any(|n| n == "movie.title"));
        assert!(m.names.iter().any(|n| n == "movie.year"));
    }

    #[test]
    fn denormalized_rows_map_back_to_entities() {
        let db = mini_imdb();
        let (_, origin) = denormalize(&db, "person", &["name"]);
        // Jim Carrey (row 0 of person) has 5 castinfo rows.
        let jim_rows = origin.iter().filter(|&&r| r == 0).count();
        assert_eq!(jim_rows, 5);
    }

    #[test]
    fn movie_denormalization_includes_genre_and_cast_blocks() {
        let db = mini_imdb();
        let (m, _) = denormalize(&db, "movie", &["title"]);
        assert!(m.names.iter().any(|n| n == "genre.name"));
        assert!(m.names.iter().any(|n| n == "person.country"));
        assert!(m.len() > db.table("movie").unwrap().len());
    }
}
