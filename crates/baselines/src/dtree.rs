//! CART-style binary decision tree with Gini impurity: the classification
//! core of both the TALOS-style QRE baseline and the PU-learning
//! estimators (§7.5–7.6).
//!
//! Splits are `feature == category` (categorical) or `feature <= t`
//! (numeric); missing values follow the negative branch.

use rand::rngs::StdRng;
use rand::Rng;

use crate::features::{FeatureKind, FeatureMatrix, FeatureValue};

/// A split test on one feature.
#[derive(Debug, Clone, PartialEq)]
pub enum Split {
    /// `feature == code` goes left.
    CatEq {
        /// Feature index.
        feature: usize,
        /// Category code.
        code: u32,
    },
    /// `feature <= threshold` goes left.
    NumLe {
        /// Feature index.
        feature: usize,
        /// Threshold.
        threshold: f64,
    },
}

impl Split {
    /// Does a row go left?
    pub fn goes_left(&self, row: &[FeatureValue]) -> bool {
        match self {
            Split::CatEq { feature, code } => {
                matches!(row[*feature], FeatureValue::Cat(c) if c == *code)
            }
            Split::NumLe { feature, threshold } => {
                matches!(row[*feature], FeatureValue::Num(x) if x <= *threshold)
            }
        }
    }
}

/// Tree node.
#[derive(Debug, Clone)]
pub enum Node {
    /// Internal split node.
    Split {
        /// The test.
        split: Split,
        /// Left child (test true).
        left: Box<Node>,
        /// Right child (test false).
        right: Box<Node>,
    },
    /// Leaf with class statistics.
    Leaf {
        /// Number of positive training rows.
        positives: usize,
        /// Total training rows.
        total: usize,
    },
}

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum rows to attempt a split.
    pub min_samples_split: usize,
    /// If set, consider only `k` random features per split (random forest
    /// mode); `None` considers all.
    pub feature_subsample: Option<usize>,
    /// Maximum numeric thresholds evaluated per feature per split.
    pub max_thresholds: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 24,
            min_samples_split: 2,
            feature_subsample: None,
            max_thresholds: 32,
        }
    }
}

/// A fitted decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
}

fn gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

impl DecisionTree {
    /// Fit on rows (indices into `x`) with boolean labels.
    pub fn fit(
        x: &FeatureMatrix,
        y: &[bool],
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> DecisionTree {
        assert_eq!(x.len(), y.len());
        let idx: Vec<usize> = (0..x.len()).collect();
        DecisionTree {
            root: build(x, y, &idx, config, 0, rng),
        }
    }

    /// Probability that `row` is positive (leaf positive fraction).
    pub fn predict_proba(&self, row: &[FeatureValue]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { positives, total } => {
                    return if *total == 0 {
                        0.0
                    } else {
                        *positives as f64 / *total as f64
                    };
                }
                Node::Split { split, left, right } => {
                    node = if split.goes_left(row) { left } else { right };
                }
            }
        }
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, row: &[FeatureValue]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    /// Total number of split predicates on paths that reach a
    /// majority-positive leaf — the TALOS "number of predicates" metric.
    pub fn positive_path_predicates(&self) -> usize {
        fn rec(node: &Node, depth: usize) -> usize {
            match node {
                Node::Leaf { positives, total } => {
                    if *total > 0 && *positives * 2 >= *total {
                        depth
                    } else {
                        0
                    }
                }
                Node::Split { left, right, .. } => rec(left, depth + 1) + rec(right, depth + 1),
            }
        }
        rec(&self.root, 0)
    }

    /// Number of leaves (diagnostic).
    pub fn leaf_count(&self) -> usize {
        fn rec(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => rec(left) + rec(right),
            }
        }
        rec(&self.root)
    }
}

fn build(
    x: &FeatureMatrix,
    y: &[bool],
    idx: &[usize],
    config: &TreeConfig,
    depth: usize,
    rng: &mut StdRng,
) -> Node {
    let pos = idx.iter().filter(|&&i| y[i]).count();
    let total = idx.len();
    if depth >= config.max_depth || total < config.min_samples_split || pos == 0 || pos == total {
        return Node::Leaf {
            positives: pos,
            total,
        };
    }
    let parent_gini = gini(pos, total);

    // Candidate features.
    let mut features: Vec<usize> = (0..x.width()).collect();
    if let Some(k) = config.feature_subsample {
        for i in 0..k.min(features.len()) {
            let j = rng.random_range(i..features.len());
            features.swap(i, j);
        }
        features.truncate(k);
    }

    let mut best: Option<(f64, Split)> = None;
    for &f in &features {
        match x.kinds[f] {
            FeatureKind::Categorical => {
                // Evaluate == for each present category (bounded).
                let mut counts: std::collections::HashMap<u32, (usize, usize)> =
                    std::collections::HashMap::new();
                for &i in idx {
                    if let FeatureValue::Cat(c) = x.rows[i][f] {
                        let e = counts.entry(c).or_insert((0, 0));
                        e.1 += 1;
                        if y[i] {
                            e.0 += 1;
                        }
                    }
                }
                for (&code, &(lpos, ltot)) in &counts {
                    if ltot == 0 || ltot == total {
                        continue;
                    }
                    let rpos = pos - lpos;
                    let rtot = total - ltot;
                    let w = (ltot as f64 * gini(lpos, ltot) + rtot as f64 * gini(rpos, rtot))
                        / total as f64;
                    let gain = parent_gini - w;
                    if gain > 1e-12 && best.as_ref().is_none_or(|(g, _)| gain > *g) {
                        best = Some((gain, Split::CatEq { feature: f, code }));
                    }
                }
            }
            FeatureKind::Numeric => {
                // Gather the feature ONCE into a dense (value, label)
                // slice — the batch-scan shape: threshold evaluation then
                // runs on sorted contiguous data (two binary searches per
                // candidate) instead of re-walking the row-major matrix
                // per threshold. NaN cells are excluded up front: they
                // never satisfy `v <= t` (so they count on neither side,
                // like the per-row loop), and a negative NaN would sort
                // FIRST under total_cmp and break partition_point's
                // monotone-predicate precondition.
                let mut pairs: Vec<(f64, bool)> = idx
                    .iter()
                    .filter_map(|&i| match x.rows[i][f] {
                        FeatureValue::Num(v) if !v.is_nan() => Some((v, y[i])),
                        _ => None,
                    })
                    .collect();
                if pairs.is_empty() {
                    continue;
                }
                pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
                // prefix_pos[k] = positives among the k smallest values.
                let mut prefix_pos = Vec::with_capacity(pairs.len() + 1);
                prefix_pos.push(0usize);
                for &(_, label) in &pairs {
                    prefix_pos.push(prefix_pos.last().unwrap() + label as usize);
                }
                let mut vals: Vec<f64> = pairs.iter().map(|p| p.0).collect();
                vals.dedup();
                let step = (vals.len() / config.max_thresholds).max(1);
                for t in vals.iter().step_by(step) {
                    // Rows with a missing value never satisfy `v <= t`, so
                    // the left side counts only gathered pairs.
                    let ltot = pairs.partition_point(|&(v, _)| v <= *t);
                    let lpos = prefix_pos[ltot];
                    if ltot == 0 || ltot == total {
                        continue;
                    }
                    let rpos = pos - lpos;
                    let rtot = total - ltot;
                    let w = (ltot as f64 * gini(lpos, ltot) + rtot as f64 * gini(rpos, rtot))
                        / total as f64;
                    let gain = parent_gini - w;
                    if gain > 1e-12 && best.as_ref().is_none_or(|(g, _)| gain > *g) {
                        best = Some((
                            gain,
                            Split::NumLe {
                                feature: f,
                                threshold: *t,
                            },
                        ));
                    }
                }
            }
        }
    }

    let Some((_, split)) = best else {
        return Node::Leaf {
            positives: pos,
            total,
        };
    };
    let (mut li, mut ri) = (Vec::new(), Vec::new());
    for &i in idx {
        if split.goes_left(&x.rows[i]) {
            li.push(i);
        } else {
            ri.push(i);
        }
    }
    if li.is_empty() || ri.is_empty() {
        return Node::Leaf {
            positives: pos,
            total,
        };
    }
    Node::Split {
        split,
        left: Box::new(build(x, y, &li, config, depth + 1, rng)),
        right: Box::new(build(x, y, &ri, config, depth + 1, rng)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Tiny matrix: feature 0 categorical (A=0/B=1), feature 1 numeric.
    fn xor_free_matrix() -> (FeatureMatrix, Vec<bool>) {
        let mut m = FeatureMatrix {
            names: vec!["cat".into(), "num".into()],
            kinds: vec![FeatureKind::Categorical, FeatureKind::Numeric],
            vocab: vec![vec!["A".into(), "B".into()], vec![]],
            rows: vec![],
        };
        let mut y = Vec::new();
        for i in 0..40 {
            let cat = if i % 2 == 0 { 0 } else { 1 };
            let num = i as f64;
            m.rows
                .push(vec![FeatureValue::Cat(cat), FeatureValue::Num(num)]);
            // Positive iff cat == A and num <= 19.
            y.push(cat == 0 && num <= 19.0);
        }
        (m, y)
    }

    #[test]
    fn learns_a_separable_concept() {
        let (x, y) = xor_free_matrix();
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default(), &mut rng);
        for (i, row) in x.rows.iter().enumerate() {
            assert_eq!(tree.predict(row), y[i], "row {i}");
        }
    }

    #[test]
    fn pure_leaves_for_separable_data() {
        let (x, y) = xor_free_matrix();
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default(), &mut rng);
        assert!(tree.positive_path_predicates() >= 2);
        assert!(tree.leaf_count() >= 2);
    }

    #[test]
    fn depth_limit_produces_impure_leaves() {
        let (x, y) = xor_free_matrix();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = TreeConfig {
            max_depth: 0,
            ..Default::default()
        };
        let tree = DecisionTree::fit(&x, &y, &cfg, &mut rng);
        assert_eq!(tree.leaf_count(), 1);
        let p = tree.predict_proba(&x.rows[0]);
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    fn nan_cells_are_counted_on_neither_side() {
        // Negative NaN sorts FIRST under total_cmp; it must not corrupt
        // the sorted-prefix threshold counting (it goes right, like the
        // per-row `v <= t` check always decided).
        let mut m = FeatureMatrix {
            names: vec!["num".into()],
            kinds: vec![FeatureKind::Numeric],
            vocab: vec![vec![]],
            rows: vec![],
        };
        let mut y = Vec::new();
        m.rows.push(vec![FeatureValue::Num(-f64::NAN)]);
        y.push(false);
        m.rows.push(vec![FeatureValue::Num(f64::NAN)]);
        y.push(false);
        for i in 0..20 {
            m.rows.push(vec![FeatureValue::Num(i as f64)]);
            y.push(i < 10);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let tree = DecisionTree::fit(&m, &y, &TreeConfig::default(), &mut rng);
        for i in 0..20 {
            assert_eq!(
                tree.predict(&[FeatureValue::Num(i as f64)]),
                i < 10,
                "value {i}"
            );
        }
        // NaN rows fail every `v <= t` test and land in a right leaf.
        assert!(!tree.predict(&[FeatureValue::Num(f64::NAN)]));
        assert!(!tree.predict(&[FeatureValue::Num(-f64::NAN)]));
    }

    #[test]
    fn missing_values_go_right() {
        let (x, y) = xor_free_matrix();
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default(), &mut rng);
        // An all-missing row must still classify (follows right branches).
        let p = tree.predict_proba(&[FeatureValue::Missing, FeatureValue::Missing]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn feature_subsampling_still_learns_something() {
        let (x, y) = xor_free_matrix();
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = TreeConfig {
            feature_subsample: Some(1),
            ..Default::default()
        };
        let tree = DecisionTree::fit(&x, &y, &cfg, &mut rng);
        let correct = x
            .rows
            .iter()
            .enumerate()
            .filter(|(i, row)| tree.predict(row) == y[*i])
            .count();
        assert!(correct > x.len() / 2, "{correct}/{}", x.len());
    }
}
