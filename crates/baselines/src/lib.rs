//! # squid-baselines
//!
//! From-scratch implementations of the systems SQuID is evaluated against:
//! a CART decision tree and random forest, Elkan-Noto positive-unlabeled
//! learning (the §7.6 comparison), and a TALOS-style closed-world query
//! reverse engineering baseline (the §7.5 comparison). Feature extraction
//! (including TALOS's denormalizing join) lives in [`features`].

#![warn(missing_docs)]

pub mod dtree;
pub mod features;
pub mod forest;
pub mod pu;
pub mod talos;

pub use dtree::{DecisionTree, TreeConfig};
pub use features::{denormalize, single_table, FeatureKind, FeatureMatrix, FeatureValue};
pub use forest::{ForestConfig, RandomForest};
pub use pu::{PuClassifier, PuConfig, PuEstimator};
pub use talos::{default_excludes, talos_reverse_engineer, TalosResult};
