//! Random forest: bagged decision trees with per-split feature
//! subsampling. One of the two probability estimators used in the
//! PU-learning comparison (§7.6, "PU (RF)").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dtree::{DecisionTree, TreeConfig};
use crate::features::{FeatureMatrix, FeatureValue};

/// Forest configuration.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees.
    pub trees: usize,
    /// Per-tree config (feature subsampling is applied automatically when
    /// `None`: √width).
    pub tree: TreeConfig,
    /// Bootstrap sample size as a fraction of the training set.
    pub bootstrap_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            trees: 20,
            tree: TreeConfig {
                max_depth: 16,
                ..Default::default()
            },
            bootstrap_fraction: 1.0,
            seed: 0xF0E5,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Fit on the full matrix with boolean labels.
    pub fn fit(x: &FeatureMatrix, y: &[bool], config: &ForestConfig) -> RandomForest {
        assert_eq!(x.len(), y.len());
        let mut rng = StdRng::seed_from_u64(config.seed);
        let subsample = config
            .tree
            .feature_subsample
            .unwrap_or_else(|| ((x.width() as f64).sqrt().ceil() as usize).max(1));
        let n = x.len();
        let sample_size = ((n as f64) * config.bootstrap_fraction).ceil() as usize;
        let mut trees = Vec::with_capacity(config.trees);
        for _ in 0..config.trees {
            // Bootstrap by materializing a resampled matrix view.
            let mut bx = FeatureMatrix {
                names: x.names.clone(),
                kinds: x.kinds.clone(),
                vocab: x.vocab.clone(),
                rows: Vec::with_capacity(sample_size),
            };
            let mut by = Vec::with_capacity(sample_size);
            for _ in 0..sample_size {
                let i = rng.random_range(0..n);
                bx.rows.push(x.rows[i].clone());
                by.push(y[i]);
            }
            let cfg = TreeConfig {
                feature_subsample: Some(subsample),
                ..config.tree.clone()
            };
            trees.push(DecisionTree::fit(&bx, &by, &cfg, &mut rng));
        }
        RandomForest { trees }
    }

    /// Mean positive probability across trees.
    pub fn predict_proba(&self, row: &[FeatureValue]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees.iter().map(|t| t.predict_proba(row)).sum::<f64>() / self.trees.len() as f64
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, row: &[FeatureValue]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True iff the forest has no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureKind;

    fn dataset() -> (FeatureMatrix, Vec<bool>) {
        let mut m = FeatureMatrix {
            names: vec!["a".into(), "b".into()],
            kinds: vec![FeatureKind::Numeric, FeatureKind::Numeric],
            vocab: vec![vec![], vec![]],
            rows: vec![],
        };
        let mut y = Vec::new();
        for i in 0..120 {
            let a = (i % 30) as f64;
            let b = (i / 30) as f64;
            m.rows
                .push(vec![FeatureValue::Num(a), FeatureValue::Num(b)]);
            y.push(a < 15.0 && b < 2.0);
        }
        (m, y)
    }

    #[test]
    fn forest_learns_and_is_deterministic() {
        let (x, y) = dataset();
        let f1 = RandomForest::fit(&x, &y, &ForestConfig::default());
        let f2 = RandomForest::fit(&x, &y, &ForestConfig::default());
        let correct = x
            .rows
            .iter()
            .enumerate()
            .filter(|(i, row)| f1.predict(row) == y[*i])
            .count();
        assert!(correct as f64 / x.len() as f64 > 0.9, "{correct}/120");
        for row in &x.rows {
            assert_eq!(f1.predict_proba(row), f2.predict_proba(row));
        }
    }

    #[test]
    fn probabilities_average_over_trees() {
        let (x, y) = dataset();
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestConfig {
                trees: 5,
                ..Default::default()
            },
        );
        assert_eq!(f.len(), 5);
        for row in &x.rows {
            let p = f.predict_proba(row);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
