//! TALOS-style query reverse engineering baseline (§7.5).
//!
//! TALOS (Tran, Chan, Parthasarathy — "Query reverse engineering", VLDB J
//! 2014) operates in a closed world: the provided tuples are the COMPLETE
//! query output. It denormalizes the participating relations, labels every
//! denormalized row positive iff its entity is in the example set, and fits
//! a decision tree to purity; the query is read off the paths to positive
//! leaves.
//!
//! This reimplementation reproduces the two documented failure shapes:
//!
//! * **predicate blow-up** — covering arbitrary output sets on a wide
//!   denormalized table takes long disjunctive paths (Figures 14–15 report
//!   100+ predicates);
//! * **label noise under denormalization** — all rows of a cast member of
//!   Pulp Fiction get a positive label "regardless of the movie that row
//!   refers to" (the IQ1 discussion), so the tree learns person-level
//!   proxies and misses the movie predicate.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use squid_relation::{Database, RowId, RowSet, TableRole};

use crate::dtree::{DecisionTree, TreeConfig};
use crate::features::{denormalize, single_table, FeatureMatrix};

/// Result of one TALOS reverse-engineering run.
#[derive(Debug, Clone)]
pub struct TalosResult {
    /// Entities predicted to belong to the query output.
    pub predicted_rows: RowSet,
    /// Number of predicates in the extracted query (splits on paths to
    /// positive leaves).
    pub predicate_count: usize,
    /// Query discovery time.
    pub elapsed: Duration,
}

/// Reverse-engineer the query whose complete output over `entity` is
/// `output_rows`.
pub fn talos_reverse_engineer(
    db: &Database,
    entity: &str,
    projection_exclude: &[&str],
    output_rows: &RowSet,
) -> TalosResult {
    let started = Instant::now();
    // Denormalize when the entity participates in fact tables; otherwise
    // classify the single relation directly.
    let has_facts = !db.associations_of(entity).is_empty();
    let (x, origin): (FeatureMatrix, Vec<RowId>) = if has_facts {
        denormalize(db, entity, projection_exclude)
    } else {
        single_table(db, entity, projection_exclude)
    };
    // Closed world: label each denormalized row by entity membership.
    let y: Vec<bool> = origin.iter().map(|&r| output_rows.contains(r)).collect();
    let mut rng = StdRng::seed_from_u64(0x7A105);
    let cfg = TreeConfig {
        max_depth: 40,
        min_samples_split: 2,
        max_thresholds: 64,
        ..Default::default()
    };
    let tree = DecisionTree::fit(&x, &y, &cfg, &mut rng);

    // An entity is predicted positive if ANY of its denormalized rows is —
    // this is where the IQ1-style mislabeling shows up.
    let mut predicted = RowSet::new();
    for (i, row) in x.rows.iter().enumerate() {
        if tree.predict(row) {
            predicted.insert(origin[i]);
        }
    }
    TalosResult {
        predicted_rows: predicted,
        predicate_count: tree.positive_path_predicates(),
        elapsed: started.elapsed(),
    }
}

/// Convenience: the projection/display columns to exclude for an entity
/// table (its `name`/`title`-like non-semantic attrs would let the tree
/// memorize the output row by row — TALOS excludes the projection column).
pub fn default_excludes(db: &Database, entity: &str) -> Vec<String> {
    db.table(entity)
        .map(|t| {
            t.schema()
                .columns
                .iter()
                .filter(|c| db.meta.is_non_semantic(entity, &c.name))
                .map(|c| c.name.clone())
                .collect()
        })
        .unwrap_or_default()
}

/// Sanity helper used by tests and the harness: every entity table in the
/// database that TALOS can run against.
pub fn reversible_entities(db: &Database) -> Vec<String> {
    db.tables_with_role(TableRole::Entity)
        .into_iter()
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use squid_adb::test_fixtures::{figure6_db, mini_imdb};

    #[test]
    fn single_relation_qre_is_exact_for_expressible_queries() {
        // Closed world on Figure 6: output = males aged [50, 90]. A
        // decision tree recovers this exactly.
        let db = figure6_db();
        let output: RowSet = [0usize, 1, 2].into_iter().collect();
        let r = talos_reverse_engineer(&db, "person", &["name"], &output);
        assert_eq!(r.predicted_rows, output);
        assert!(r.predicate_count >= 1);
    }

    #[test]
    fn cast_of_movie_shows_label_noise() {
        // IQ1 shape: cast of "Funny Five" (movie 4) = persons 1, 2, 8.
        let db = mini_imdb();
        let output: RowSet = [0usize, 1, 7].into_iter().collect(); // rows of ids 1,2,8
        let r = talos_reverse_engineer(&db, "person", &["name"], &output);
        // TALOS covers the output (closed world lets it memorize)...
        for row in &output {
            assert!(
                r.predicted_rows.contains(row),
                "output row {row} must be covered"
            );
        }
        // ...but the extracted query is not the crisp 1-predicate intent.
        assert!(r.predicate_count >= 2);
    }

    #[test]
    fn empty_output_yields_empty_prediction() {
        let db = figure6_db();
        let r = talos_reverse_engineer(&db, "person", &["name"], &RowSet::new());
        assert!(r.predicted_rows.is_empty());
        assert_eq!(r.predicate_count, 0);
    }

    #[test]
    fn excludes_come_from_schema_meta() {
        let db = mini_imdb();
        assert_eq!(default_excludes(&db, "person"), vec!["name".to_string()]);
        assert_eq!(default_excludes(&db, "movie"), vec!["title".to_string()]);
    }

    #[test]
    fn reversible_entities_lists_entity_tables() {
        let db = mini_imdb();
        let mut ents = reversible_entities(&db);
        ents.sort();
        assert_eq!(ents, vec!["movie".to_string(), "person".to_string()]);
    }
}
