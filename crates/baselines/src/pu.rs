//! Positive-and-Unlabeled learning after Elkan & Noto (KDD 2008), the
//! method SQuID is compared against in §7.6 [21].
//!
//! Under the "selected completely at random" assumption, a classifier g
//! trained to separate *labeled* from *unlabeled* satisfies
//! `g(x) = c · p(y=1|x)` where `c = p(s=1|y=1)` is the label frequency.
//! Estimating ĉ as the average of g over held-out labeled positives turns
//! g into a true class-posterior estimate: `p(y=1|x) = g(x)/ĉ`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dtree::{DecisionTree, TreeConfig};
use crate::features::{FeatureMatrix, FeatureValue};
use crate::forest::{ForestConfig, RandomForest};

/// Probability estimator used inside PU-learning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PuEstimator {
    /// Single decision tree ("PU (DT)" in Figure 16).
    DecisionTree,
    /// Random forest ("PU (RF)").
    RandomForest,
}

/// PU-learning configuration.
#[derive(Debug, Clone)]
pub struct PuConfig {
    /// Estimator choice.
    pub estimator: PuEstimator,
    /// Fraction of positives held out to estimate ĉ.
    pub holdout_fraction: f64,
    /// Decision threshold on the adjusted posterior.
    pub threshold: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PuConfig {
    fn default() -> Self {
        PuConfig {
            estimator: PuEstimator::DecisionTree,
            holdout_fraction: 0.2,
            threshold: 0.5,
            seed: 0x9057,
        }
    }
}

enum Model {
    Tree(DecisionTree),
    Forest(RandomForest),
}

impl Model {
    fn proba(&self, row: &[FeatureValue]) -> f64 {
        match self {
            Model::Tree(t) => t.predict_proba(row),
            Model::Forest(f) => f.predict_proba(row),
        }
    }
}

/// A fitted PU classifier.
pub struct PuClassifier {
    model: Model,
    /// Estimated label frequency ĉ = p(s=1 | y=1).
    pub c_hat: f64,
    threshold: f64,
}

impl PuClassifier {
    /// Fit from positive example row indices over the full matrix; all
    /// other rows are unlabeled.
    pub fn fit(x: &FeatureMatrix, positives: &[usize], config: &PuConfig) -> PuClassifier {
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Split positives into train/holdout.
        let mut pos: Vec<usize> = positives.to_vec();
        for i in (1..pos.len()).rev() {
            let j = rng.random_range(0..=i);
            pos.swap(i, j);
        }
        let holdout_n = ((pos.len() as f64 * config.holdout_fraction).round() as usize)
            .clamp(1, pos.len().saturating_sub(1).max(1));
        let (holdout, train_pos) = pos.split_at(holdout_n.min(pos.len()));

        // s-labels: 1 for training positives, 0 otherwise.
        let mut s = vec![false; x.len()];
        for &i in train_pos {
            s[i] = true;
        }
        // Keep the holdout out of training by masking: we train on all rows
        // except the holdout (standard Elkan-Noto non-traditional setup).
        let keep: Vec<usize> = (0..x.len()).filter(|i| !holdout.contains(i)).collect();
        let mut tx = FeatureMatrix {
            names: x.names.clone(),
            kinds: x.kinds.clone(),
            vocab: x.vocab.clone(),
            rows: keep.iter().map(|&i| x.rows[i].clone()).collect(),
        };
        let ty: Vec<bool> = keep.iter().map(|&i| s[i]).collect();
        let model = match config.estimator {
            PuEstimator::DecisionTree => {
                let cfg = TreeConfig {
                    max_depth: 12,
                    min_samples_split: 4,
                    ..Default::default()
                };
                Model::Tree(DecisionTree::fit(&tx, &ty, &cfg, &mut rng))
            }
            PuEstimator::RandomForest => {
                let cfg = ForestConfig {
                    trees: 15,
                    seed: rng.random(),
                    ..Default::default()
                };
                Model::Forest(RandomForest::fit(&tx, &ty, &cfg))
            }
        };
        tx.rows.clear();

        // ĉ = mean g over held-out positives.
        let c_hat = if holdout.is_empty() {
            1.0
        } else {
            (holdout
                .iter()
                .map(|&i| model.proba(&x.rows[i]))
                .sum::<f64>()
                / holdout.len() as f64)
                .max(1e-6)
        };
        PuClassifier {
            model,
            c_hat,
            threshold: config.threshold,
        }
    }

    /// Adjusted posterior p(y=1|x) = g(x)/ĉ, clamped to [0, 1].
    pub fn predict_proba(&self, row: &[FeatureValue]) -> f64 {
        (self.model.proba(row) / self.c_hat).clamp(0.0, 1.0)
    }

    /// Predicted-positive row indices over a matrix.
    pub fn predict_positive(&self, x: &FeatureMatrix) -> Vec<usize> {
        (0..x.len())
            .filter(|&i| self.predict_proba(&x.rows[i]) >= self.threshold)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureKind;

    /// 400 rows, 2 numeric features; true class = quadrant (a<20, b<20).
    fn dataset() -> (FeatureMatrix, Vec<bool>) {
        let mut m = FeatureMatrix {
            names: vec!["a".into(), "b".into()],
            kinds: vec![FeatureKind::Numeric, FeatureKind::Numeric],
            vocab: vec![vec![], vec![]],
            rows: vec![],
        };
        let mut truth = Vec::new();
        for i in 0..400 {
            let a = (i % 40) as f64;
            let b = (i / 40) as f64 * 4.0;
            m.rows
                .push(vec![FeatureValue::Num(a), FeatureValue::Num(b)]);
            truth.push(a < 20.0 && b < 20.0);
        }
        (m, truth)
    }

    fn f_score(pred: &[usize], truth: &[bool]) -> f64 {
        let pred_set: std::collections::BTreeSet<usize> = pred.iter().copied().collect();
        let tp = truth
            .iter()
            .enumerate()
            .filter(|(i, &t)| t && pred_set.contains(i))
            .count() as f64;
        let p = if pred_set.is_empty() {
            0.0
        } else {
            tp / pred_set.len() as f64
        };
        let total_pos = truth.iter().filter(|&&t| t).count() as f64;
        let r = tp / total_pos;
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    #[test]
    fn recovers_concept_with_many_positives() {
        let (x, truth) = dataset();
        // Label 70% of the true positives.
        let positives: Vec<usize> = truth
            .iter()
            .enumerate()
            .filter(|(i, &t)| t && i % 10 < 7)
            .map(|(i, _)| i)
            .collect();
        let clf = PuClassifier::fit(&x, &positives, &PuConfig::default());
        let pred = clf.predict_positive(&x);
        let f = f_score(&pred, &truth);
        assert!(f > 0.8, "f-score {f}");
    }

    #[test]
    fn few_positives_hurt_recall() {
        let (x, truth) = dataset();
        let many: Vec<usize> = truth
            .iter()
            .enumerate()
            .filter(|(i, &t)| t && i % 10 < 7)
            .map(|(i, _)| i)
            .collect();
        let few: Vec<usize> = truth
            .iter()
            .enumerate()
            .filter(|(i, &t)| t && i % 10 == 0)
            .map(|(i, _)| i)
            .collect();
        let f_many = f_score(
            &PuClassifier::fit(&x, &many, &PuConfig::default()).predict_positive(&x),
            &truth,
        );
        let f_few = f_score(
            &PuClassifier::fit(&x, &few, &PuConfig::default()).predict_positive(&x),
            &truth,
        );
        assert!(
            f_many >= f_few,
            "more positives must not hurt: {f_many} vs {f_few}"
        );
    }

    #[test]
    fn c_hat_is_estimated_in_unit_interval() {
        let (x, truth) = dataset();
        let positives: Vec<usize> = truth
            .iter()
            .enumerate()
            .filter(|(_, &t)| t)
            .map(|(i, _)| i)
            .collect();
        let clf = PuClassifier::fit(&x, &positives, &PuConfig::default());
        assert!(clf.c_hat > 0.0 && clf.c_hat <= 1.0, "{}", clf.c_hat);
    }

    #[test]
    fn forest_estimator_also_works() {
        let (x, truth) = dataset();
        let positives: Vec<usize> = truth
            .iter()
            .enumerate()
            .filter(|(i, &t)| t && i % 2 == 0)
            .map(|(i, _)| i)
            .collect();
        let cfg = PuConfig {
            estimator: PuEstimator::RandomForest,
            ..Default::default()
        };
        let pred = PuClassifier::fit(&x, &positives, &cfg).predict_positive(&x);
        assert!(f_score(&pred, &truth) > 0.6);
    }
}
