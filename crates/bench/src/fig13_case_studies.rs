//! Figure 13: qualitative case studies on simulated human lists — funny
//! actors (IMDb), 2000s Sci-Fi movies (IMDb), prolific DB researchers
//! (DBLP). Ground truth is the list itself; the abduced output is filtered
//! through the popularity mask (Appendix D, footnote 14) before scoring.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use squid_core::{Accuracy, Squid, SquidParams};
use squid_datasets::{funny_actors, prolific_db_researchers, scifi_2000s, CaseStudy};
use squid_relation::RowSet;

use crate::context::{Context, Workload};
use crate::mean;

fn list_rows(workload: &Workload, cs: &CaseStudy) -> RowSet {
    let t = workload.db.table(&cs.entity).unwrap();
    let ci = t.schema().column_index(&cs.column).unwrap();
    let mut out = RowSet::new();
    for v in &cs.list {
        for (rid, row) in t.iter() {
            if row[ci].as_text() == Some(v.as_str()) {
                out.insert(rid);
            }
        }
    }
    out
}

fn run_study(workload: &Workload, cs: &CaseStudy, params: SquidParams, draws: u64) {
    println!("## Case study: {} (list size {})", cs.name, cs.list.len());
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "examples", "precision", "recall", "f-score"
    );
    let squid = Squid::with_params(&workload.adb, params);
    let truth = list_rows(workload, cs);
    let sizes = [5usize, 10, 15, 20, 25, 30];
    for &k in &sizes {
        if k > cs.list.len() {
            break;
        }
        let (mut ps, mut rs, mut fs) = (Vec::new(), Vec::new(), Vec::new());
        for seed in 0..draws {
            let mut rng = StdRng::seed_from_u64(seed * 77 + k as u64);
            let mut idx: Vec<usize> = (0..cs.list.len()).collect();
            for i in 0..k {
                let j = rng.random_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(k);
            let examples: Vec<&str> = idx.iter().map(|&i| cs.list[i].as_str()).collect();
            let Ok(d) = squid.discover_on(&cs.entity, &cs.column, &examples) else {
                continue;
            };
            // Popularity mask: score within the list-worthy population.
            let masked = d.rows.intersection(&cs.popularity_mask);
            let acc = Accuracy::of(&masked, &truth);
            ps.push(acc.precision);
            rs.push(acc.recall);
            fs.push(acc.f_score);
        }
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10.3}",
            k,
            mean(&ps),
            mean(&rs),
            mean(&fs)
        );
    }
}

/// Run all three case studies.
pub fn run(ctx: &Context) {
    println!("# Figure 13: case studies (lists are biased samples of the intent,");
    println!("# so precision is bounded; recall should rise with #examples)");
    let draws = if ctx.config.fast { 3 } else { 10 };
    // (a) Funny actors: normalized association strength (§7.4).
    let fa = funny_actors(&ctx.imdb.db);
    run_study(&ctx.imdb, &fa, SquidParams::normalized(), draws);
    // (b) 2000s Sci-Fi movies: default parameters.
    let sf = scifi_2000s(&ctx.imdb.db);
    run_study(&ctx.imdb, &sf, SquidParams::default(), draws);
    // (c) Prolific DB researchers.
    let pr = prolific_db_researchers(&ctx.dblp.db);
    run_study(
        &ctx.dblp,
        &pr,
        SquidParams {
            tau_a: 3,
            ..SquidParams::default()
        },
        draws,
    );
}
