//! Tabular outputs: Figure 18 (dataset descriptions + αDB precomputation
//! stats) and Figures 19/20/22 (benchmark query listings with join and
//! selection predicate counts and result cardinalities).

use squid_adb::ADb;
use squid_datasets::generate_imdb_variant;
use squid_datasets::ImdbVariant;

use crate::context::{Context, Workload};

/// Figure 18: dataset description table.
pub fn run_table18(ctx: &Context) {
    println!("# Figure 18: dataset descriptions and αDB precomputation stats");
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "dataset", "relations", "rows", "props", "derived_rows", "build_ms"
    );
    let report = |tag: &str, wl: &Workload| {
        let s = &wl.adb.build_stats;
        println!(
            "{:<12} {:>10} {:>10} {:>12} {:>12} {:>12}",
            tag,
            wl.db.tables().count(),
            s.original_row_count,
            s.property_count,
            s.derived_row_count,
            s.build_millis
        );
    };
    report("imdb", &ctx.imdb);
    report("dblp", &ctx.dblp);
    report("adult", &ctx.adult);

    // IMDb variants (sm / bs / bd).
    let cfg = ctx.imdb_config();
    for (tag, v) in [
        ("sm-imdb", ImdbVariant::Small),
        ("bs-imdb", ImdbVariant::BigSparse),
        ("bd-imdb", ImdbVariant::BigDense),
    ] {
        let db = generate_imdb_variant(&cfg, v);
        let adb = ADb::build(&db).expect("variant αDB");
        let s = &adb.build_stats;
        println!(
            "{:<12} {:>10} {:>10} {:>12} {:>12} {:>12}",
            tag,
            db.tables().count(),
            s.original_row_count,
            s.property_count,
            s.derived_row_count,
            s.build_millis
        );
    }
}

fn list_queries(workload: &Workload) {
    println!(
        "{:<6} {:>6} {:>6} {:>8}  description",
        "id", "joins", "sels", "card"
    );
    for q in &workload.queries {
        println!(
            "{:<6} {:>6} {:>6} {:>8}  {}",
            q.id,
            q.query.join_predicate_count(),
            q.query.selection_predicate_count(),
            q.cardinality(&workload.db),
            q.description
        );
    }
}

/// Figures 19 / 20 / 22: benchmark query listings.
pub fn run_query_tables(ctx: &Context) {
    println!("# Figure 19: IMDb benchmark queries");
    list_queries(&ctx.imdb);
    println!("# Figure 20: DBLP benchmark queries");
    list_queries(&ctx.dblp);
    println!("# Figure 22: Adult benchmark queries (randomized, seed-stable)");
    list_queries(&ctx.adult);
}
