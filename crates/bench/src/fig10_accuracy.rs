//! Figure 10: precision / recall / f-score vs number of examples for every
//! IMDb and DBLP benchmark query (10 random example draws per point).

use squid_core::Squid;

use crate::context::{Context, Workload};
use crate::{discover_and_score, mean, params_for, sample_examples};

fn run_workload(workload: &Workload, sizes: &[usize], draws: u64) {
    let squid = Squid::with_params(&workload.adb, params_for(workload.tag));
    for q in &workload.queries {
        println!("## {} — {}", q.id, q.description);
        println!(
            "{:<10} {:>10} {:>10} {:>10}",
            "examples", "precision", "recall", "f-score"
        );
        for &k in sizes {
            let (mut ps, mut rs, mut fs) = (Vec::new(), Vec::new(), Vec::new());
            for seed in 0..draws {
                let (examples, truth) = sample_examples(&workload.db, &q.query, k, seed);
                if examples.is_empty() {
                    continue;
                }
                if let Ok((_, acc)) = discover_and_score(&squid, &q.query, &examples, &truth) {
                    ps.push(acc.precision);
                    rs.push(acc.recall);
                    fs.push(acc.f_score);
                }
            }
            println!(
                "{:<10} {:>10.3} {:>10.3} {:>10.3}",
                k,
                mean(&ps),
                mean(&rs),
                mean(&fs)
            );
        }
    }
}

/// Figure 10(a): IMDb accuracy; Figure 10(b): DBLP accuracy.
pub fn run(ctx: &Context) {
    let sizes = [3usize, 5, 7, 10, 15, 20, 25];
    let draws = if ctx.config.fast { 3 } else { 10 };
    println!("# Figure 10(a): accuracy vs #examples, IMDb benchmark queries");
    run_workload(&ctx.imdb, &sizes, draws);
    println!("# Figure 10(b): accuracy vs #examples, DBLP benchmark queries");
    run_workload(&ctx.dblp, &sizes, draws);
    println!("# expectation: accuracy rises with #examples; IQ10 stays low (outside");
    println!("# SQuID's query family); common-property queries converge more slowly.");
}
