//! Shared experiment context: datasets, αDBs, and benchmark suites built
//! once per harness invocation.

use squid_adb::ADb;
use squid_datasets::{
    adult_queries, dblp_queries, generate_adult, generate_dblp, generate_imdb, imdb_queries,
    AdultConfig, BenchmarkQuery, DblpConfig, ImdbConfig,
};
use squid_relation::Database;

/// One dataset bundled with its αDB and benchmark suite.
pub struct Workload {
    /// Dataset tag ("imdb", "dblp", "adult").
    pub tag: &'static str,
    /// The generated database.
    pub db: Database,
    /// Its abduction-ready form.
    pub adb: ADb,
    /// The benchmark queries.
    pub queries: Vec<BenchmarkQuery>,
}

impl Workload {
    /// Look up a benchmark query by id.
    pub fn query(&self, id: &str) -> &BenchmarkQuery {
        self.queries
            .iter()
            .find(|q| q.id == id)
            .unwrap_or_else(|| panic!("unknown benchmark query {id}"))
    }
}

/// Harness-wide configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Reduced sizes/repeats for smoke runs.
    pub fast: bool,
}

/// Everything the figures need.
pub struct Context {
    /// IMDb workload.
    pub imdb: Workload,
    /// DBLP workload.
    pub dblp: Workload,
    /// Adult workload.
    pub adult: Workload,
    /// Harness configuration.
    pub config: HarnessConfig,
}

impl Context {
    /// IMDb generation config for the current mode.
    pub fn imdb_config(&self) -> ImdbConfig {
        if self.config.fast {
            ImdbConfig {
                persons: 1_500,
                movies: 800,
                ..ImdbConfig::default()
            }
        } else {
            ImdbConfig::default()
        }
    }

    /// Build all workloads.
    pub fn build(config: HarnessConfig) -> Context {
        let imdb_cfg = if config.fast {
            ImdbConfig {
                persons: 1_500,
                movies: 800,
                ..ImdbConfig::default()
            }
        } else {
            ImdbConfig::default()
        };
        let dblp_cfg = if config.fast {
            DblpConfig {
                authors: 800,
                publications: 2_400,
                ..DblpConfig::default()
            }
        } else {
            DblpConfig::default()
        };
        let adult_cfg = if config.fast {
            AdultConfig {
                rows: 2_000,
                ..AdultConfig::default()
            }
        } else {
            AdultConfig::default()
        };

        let imdb_db = generate_imdb(&imdb_cfg);
        let imdb = Workload {
            tag: "imdb",
            adb: ADb::build(&imdb_db).expect("imdb αDB"),
            queries: imdb_queries(&imdb_db),
            db: imdb_db,
        };
        let dblp_db = generate_dblp(&dblp_cfg);
        let dblp = Workload {
            tag: "dblp",
            adb: ADb::build(&dblp_db).expect("dblp αDB"),
            queries: dblp_queries(&dblp_db),
            db: dblp_db,
        };
        let adult_db = generate_adult(&adult_cfg);
        let adult = Workload {
            tag: "adult",
            adb: ADb::build(&adult_db).expect("adult αDB"),
            queries: adult_queries(&adult_db, 0xA0, 20),
            db: adult_db,
        };
        Context {
            imdb,
            dblp,
            adult,
            config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_context_builds_everything() {
        let ctx = Context::build(HarnessConfig { fast: true });
        assert_eq!(ctx.imdb.queries.len(), 16);
        assert_eq!(ctx.dblp.queries.len(), 5);
        assert!(ctx.adult.queries.len() >= 15);
        assert!(ctx.imdb.adb.build_stats.property_count > 0);
    }
}
