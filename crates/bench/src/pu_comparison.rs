//! Figure 16: comparison with Elkan–Noto PU-learning on the Adult dataset
//! — (a) accuracy vs fraction of positives given as examples, for decision
//! tree and random forest estimators; (b) scalability vs dataset size.

use std::time::Instant;

use squid_adb::ADb;
use squid_baselines::{single_table, PuClassifier, PuConfig, PuEstimator};
use squid_core::{Accuracy, Squid, SquidParams};
use squid_datasets::{adult_queries, generate_adult, AdultConfig};
use squid_relation::{RowId, RowSet};

use crate::context::Context;
use crate::{full_output, mean, sample_examples};

fn pu_run(
    db: &squid_relation::Database,
    positives: &[RowId],
    estimator: PuEstimator,
    seed: u64,
) -> (RowSet, f64) {
    let (x, origin) = single_table(db, "adult", &["name"]);
    // For a single table, feature row i corresponds to entity row origin[i]
    // (identity mapping), so positives index directly.
    debug_assert!(origin.iter().enumerate().all(|(i, &r)| i == r));
    let cfg = PuConfig {
        estimator,
        seed,
        ..Default::default()
    };
    let t = Instant::now();
    let clf = PuClassifier::fit(&x, positives, &cfg);
    let pred: RowSet = clf.predict_positive(&x).into_iter().collect();
    (pred, t.elapsed().as_secs_f64())
}

/// Figure 16(a): accuracy vs fraction of positive data used as examples.
pub fn run_fig16a(ctx: &Context) {
    println!("# Figure 16(a): SQuID vs PU-learning accuracy vs positive fraction (Adult)");
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "frac", "sq_p", "sq_r", "sq_f", "dt_p", "dt_r", "dt_f", "rf_p", "rf_r", "rf_f"
    );
    let squid = Squid::with_params(&ctx.adult.adb, SquidParams::optimistic());
    let n_queries = if ctx.config.fast { 5 } else { 10 };
    let fracs = [0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0];
    for &frac in &fracs {
        let mut sq = [Vec::new(), Vec::new(), Vec::new()];
        let mut dt = [Vec::new(), Vec::new(), Vec::new()];
        let mut rf = [Vec::new(), Vec::new(), Vec::new()];
        for q in ctx.adult.queries.iter().take(n_queries) {
            let (_, truth) = full_output(&ctx.adult.db, &q.query);
            let k = ((truth.len() as f64 * frac).round() as usize).max(2);
            let (examples, _) = sample_examples(&ctx.adult.db, &q.query, k, 13);
            let positives: Vec<RowId> = {
                // Map sampled example values back to rows via the truth set
                // order (names are unique).
                let refs: Vec<&str> = examples.iter().map(String::as_str).collect();
                let Ok(d) = squid.discover_on("adult", "name", &refs) else {
                    continue;
                };
                let rows = d.example_rows.clone();
                // SQuID accuracy from this same discovery:
                let acc = Accuracy::of(&d.rows, &truth);
                sq[0].push(acc.precision);
                sq[1].push(acc.recall);
                sq[2].push(acc.f_score);
                rows
            };
            let (pred, _) = pu_run(&ctx.adult.db, &positives, PuEstimator::DecisionTree, 5);
            let acc = Accuracy::of(&pred, &truth);
            dt[0].push(acc.precision);
            dt[1].push(acc.recall);
            dt[2].push(acc.f_score);
            let (pred, _) = pu_run(&ctx.adult.db, &positives, PuEstimator::RandomForest, 5);
            let acc = Accuracy::of(&pred, &truth);
            rf[0].push(acc.precision);
            rf[1].push(acc.recall);
            rf[2].push(acc.f_score);
        }
        println!(
            "{:<8.2} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            frac,
            mean(&sq[0]),
            mean(&sq[1]),
            mean(&sq[2]),
            mean(&dt[0]),
            mean(&dt[1]),
            mean(&dt[2]),
            mean(&rf[0]),
            mean(&rf[1]),
            mean(&rf[2])
        );
    }
    println!("# expectation: SQuID is robust at low fractions; PU-learning needs a");
    println!("# large fraction of the positives to catch up (recall collapses early).");
}

/// Figure 16(b): scalability vs dataset scale factor.
pub fn run_fig16b(ctx: &Context) {
    println!("# Figure 16(b): SQuID vs PU-learning total time vs scale factor (Adult)");
    println!(
        "{:<8} {:>10} {:>12} {:>12}",
        "scale", "rows", "squid_ms", "pu_dt_ms"
    );
    let factors = if ctx.config.fast {
        vec![1usize, 2, 4]
    } else {
        vec![1usize, 4, 7, 10]
    };
    for factor in factors {
        let cfg = AdultConfig {
            rows: (if ctx.config.fast { 2_000 } else { 8_000 }) * factor,
            ..AdultConfig::default()
        };
        let db = generate_adult(&cfg);
        let adb = ADb::build(&db).expect("αDB");
        let queries = adult_queries(&db, 0xA0, 5);
        let squid = Squid::with_params(&adb, SquidParams::optimistic());
        let mut squid_times = Vec::new();
        let mut pu_times = Vec::new();
        for q in &queries {
            let (_, truth) = full_output(&db, &q.query);
            // Fixed example count across scales: the user's effort does not
            // grow with the data, only the unlabeled pool does.
            let k = truth.len().clamp(2, 25);
            let (examples, _) = sample_examples(&db, &q.query, k, 21);
            let refs: Vec<&str> = examples.iter().map(String::as_str).collect();
            let Ok(d) = squid.discover_on("adult", "name", &refs) else {
                continue;
            };
            squid_times.push(d.elapsed.as_secs_f64());
            let positives = d.example_rows.clone();
            let (_, t) = pu_run(&db, &positives, PuEstimator::DecisionTree, 5);
            pu_times.push(t);
        }
        println!(
            "{:<8} {:>10} {:>12.2} {:>12.2}",
            factor,
            cfg.rows,
            mean(&squid_times) * 1e3,
            mean(&pu_times) * 1e3
        );
    }
    println!("# expectation: PU time grows linearly with data size; SQuID's abduction");
    println!("# time stays near-constant (it reads precomputed αDB statistics).");
}
