//! Figure 11: execution time of the abduced queries vs the actual
//! benchmark queries. Abduced queries may use the αDB's materialized
//! derived relations, which frequently makes them *faster* than the
//! originals.

use std::time::Instant;

use squid_core::Squid;
use squid_engine::{Executor, Query};
use squid_relation::Database;

use crate::context::{Context, Workload};
use crate::{params_for, sample_examples};

fn time_query(db: &Database, q: &Query, repeats: u32) -> f64 {
    let exec = Executor::new(db);
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        let _ = exec.execute(q);
        best = best.min(t.elapsed().as_secs_f64());
    }
    best * 1e3
}

fn run_workload(workload: &Workload, repeats: u32) {
    let squid = Squid::with_params(&workload.adb, params_for(workload.tag));
    println!(
        "{:<6} {:>14} {:>14} {:>10}",
        "query", "actual_ms", "squid_ms", "adb_form"
    );
    for q in &workload.queries {
        let (examples, _) = sample_examples(&workload.db, &q.query, 10, 1);
        let refs: Vec<&str> = examples.iter().map(String::as_str).collect();
        let Ok(d) = squid.discover_on(q.query.root(), q.query.projection.as_str(), &refs) else {
            continue;
        };
        let actual_ms = time_query(&workload.db, &q.query, repeats);
        // Run the abduced query in its cheapest executable form, as SQuID
        // would: the αDB SPJ form when available, else the original SPJAI.
        let (abduced, form) = match &d.adb_query {
            Some(aq) => (aq, "yes"),
            None => (&d.query, "no"),
        };
        let squid_ms = time_query(&workload.adb.database, abduced, repeats);
        println!(
            "{:<6} {:>14.3} {:>14.3} {:>10}",
            q.id, actual_ms, squid_ms, form
        );
    }
}

/// Figure 11(a): IMDb; Figure 11(b): DBLP.
pub fn run(ctx: &Context) {
    let repeats = if ctx.config.fast { 3 } else { 7 };
    println!("# Figure 11(a): abduced vs actual query runtime, IMDb");
    run_workload(&ctx.imdb, repeats);
    println!("# Figure 11(b): abduced vs actual query runtime, DBLP");
    run_workload(&ctx.dblp, repeats);
    println!("# expectation: abduced queries rarely slower; αDB-form queries often");
    println!("# faster than the originals thanks to precomputed derived relations.");
}
