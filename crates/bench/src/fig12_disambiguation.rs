//! Figure 12: effect of entity disambiguation on abduction accuracy, on an
//! IMDb variant with a high duplicate-name rate. "w/ DA" resolves
//! ambiguous examples to the mapping maximizing cross-example similarity;
//! "w/o DA" naively picks the first candidate.

use squid_adb::ADb;
use squid_core::{Squid, SquidParams};
use squid_datasets::{generate_imdb, imdb_queries};

use crate::context::Context;
use crate::{discover_and_score, mean, sample_examples};

/// Queries the paper reports in Figure 12.
const QUERIES: &[&str] = &["IQ2", "IQ3", "IQ4", "IQ11", "IQ14"];

/// Run the disambiguation ablation.
pub fn run(ctx: &Context) {
    println!("# Figure 12: effect of entity disambiguation (IMDb, 20% duplicate names)");
    let mut cfg = ctx.imdb_config();
    cfg.duplicate_name_rate = 0.20;
    cfg.seed ^= 0xD15A;
    let db = generate_imdb(&cfg);
    let adb = ADb::build(&db).expect("αDB");
    let queries = imdb_queries(&db);
    let with_da = Squid::new(&adb);
    let without_da = Squid::with_params(
        &adb,
        SquidParams {
            disambiguate: false,
            ..SquidParams::default()
        },
    );
    let sizes = [3usize, 5, 10, 15, 25];
    let draws = if ctx.config.fast { 3 } else { 10 };
    println!(
        "{:<6} {:<10} {:>12} {:>12}",
        "query", "examples", "f_with_DA", "f_without_DA"
    );
    for id in QUERIES {
        let Some(q) = queries.iter().find(|q| q.id == *id) else {
            continue;
        };
        for &k in &sizes {
            let (mut f_with, mut f_without) = (Vec::new(), Vec::new());
            for seed in 0..draws {
                let (examples, truth) = sample_examples(&db, &q.query, k, seed);
                if examples.is_empty() {
                    continue;
                }
                if let Ok((_, acc)) = discover_and_score(&with_da, &q.query, &examples, &truth) {
                    f_with.push(acc.f_score);
                }
                if let Ok((_, acc)) = discover_and_score(&without_da, &q.query, &examples, &truth) {
                    f_without.push(acc.f_score);
                }
            }
            println!(
                "{:<6} {:<10} {:>12.3} {:>12.3}",
                id,
                k,
                mean(&f_with),
                mean(&f_without)
            );
        }
    }
    println!("# expectation: disambiguation never hurts and can improve f-score");
    println!("# substantially when example names are ambiguous.");
}
