//! Figure 9: abduction time scalability — (a) against the number of
//! examples on IMDb and DBLP, (b) against dataset size on the four IMDb
//! variants (sm/base/bs/bd).

use std::time::Duration;

use squid_adb::ADb;
use squid_core::Squid;
use squid_datasets::{generate_imdb_variant, imdb_queries, ImdbVariant};

use crate::context::{Context, Workload};
use crate::{mean, params_for, sample_examples};

fn avg_abduction_time(workload: &Workload, k: usize, repeats: u64) -> Duration {
    let squid = Squid::with_params(&workload.adb, params_for(workload.tag));
    let mut times = Vec::new();
    for q in &workload.queries {
        for seed in 0..repeats {
            let (examples, _) = sample_examples(&workload.db, &q.query, k, seed);
            if examples.is_empty() {
                continue;
            }
            let refs: Vec<&str> = examples.iter().map(String::as_str).collect();
            if let Ok(d) = squid.discover_on(q.query.root(), q.query.projection.as_str(), &refs) {
                times.push(d.elapsed.as_secs_f64());
            }
        }
    }
    Duration::from_secs_f64(mean(&times))
}

/// Figure 9(a): average abduction time vs number of examples.
pub fn run_fig9a(ctx: &Context) {
    println!("# Figure 9(a): abduction time vs #examples (averaged over benchmark queries)");
    println!("{:<10} {:>14} {:>14}", "examples", "imdb_ms", "dblp_ms");
    let sizes = [5usize, 10, 15, 20, 25, 30];
    let repeats = if ctx.config.fast { 2 } else { 5 };
    for &k in &sizes {
        let t_imdb = avg_abduction_time(&ctx.imdb, k, repeats);
        let t_dblp = avg_abduction_time(&ctx.dblp, k, repeats);
        println!(
            "{:<10} {:>14.3} {:>14.3}",
            k,
            t_imdb.as_secs_f64() * 1e3,
            t_dblp.as_secs_f64() * 1e3
        );
    }
}

/// Figure 9(b): average abduction time vs dataset size (IMDb variants).
pub fn run_fig9b(ctx: &Context) {
    println!("# Figure 9(b): abduction time vs dataset size (IMDb variants)");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "examples", "sm_ms", "base_ms", "bs_ms", "bd_ms", ""
    );
    let cfg = ctx.imdb_config();
    let variants = [
        ImdbVariant::Small,
        ImdbVariant::Base,
        ImdbVariant::BigSparse,
        ImdbVariant::BigDense,
    ];
    let workloads: Vec<Workload> = variants
        .iter()
        .map(|&v| {
            let db = generate_imdb_variant(&cfg, v);
            Workload {
                tag: "imdb",
                adb: ADb::build(&db).expect("variant αDB"),
                queries: imdb_queries(&db),
                db,
            }
        })
        .collect();
    let sizes = [5usize, 10, 15, 20, 25, 30];
    let repeats = if ctx.config.fast { 1 } else { 3 };
    for &k in &sizes {
        let times: Vec<f64> = workloads
            .iter()
            .map(|w| avg_abduction_time(w, k, repeats).as_secs_f64() * 1e3)
            .collect();
        println!(
            "{:<10} {:>10.3} {:>12.3} {:>12.3} {:>12.3}",
            k, times[0], times[1], times[2], times[3]
        );
    }
    println!("# expectation: time grows with |E| (linear) and with dataset size;");
    println!("# bd (dense associations) is slower than bs at equal entity count.");
}
