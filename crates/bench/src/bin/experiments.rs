//! The experiment harness binary: regenerates every table and figure of
//! the paper's evaluation on the synthetic datasets.
//!
//! ```text
//! cargo run --release -p squid-bench --bin experiments -- all
//! cargo run --release -p squid-bench --bin experiments -- fig10 fig14 --fast
//! ```

use squid_bench::context::{Context, HarnessConfig};
use squid_bench::{
    ablation, fig10_accuracy, fig11_runtime, fig12_disambiguation, fig13_case_studies,
    fig9_scalability, pu_comparison, qre_comparison, sensitivity, tables,
};

const USAGE: &str = "\
usage: experiments [--fast] <experiment>...
experiments:
  fig9a    abduction time vs #examples (IMDb, DBLP)
  fig9b    abduction time vs dataset size (IMDb variants)
  fig10    accuracy vs #examples (all IMDb + DBLP queries)
  fig11    abduced vs actual query runtime
  fig12    effect of entity disambiguation
  fig13    case studies (funny actors, sci-fi, researchers)
  fig14    QRE on Adult: SQuID vs TALOS
  fig15    QRE on IMDb/DBLP: SQuID vs TALOS
  fig16a   PU-learning accuracy comparison
  fig16b   PU-learning scalability comparison
  fig23    sensitivity to rho
  fig24    sensitivity to gamma
  fig25    sensitivity to tau_a
  fig26    sensitivity to tau_s
  ablation prior-component ablation (delta/alpha/lambda on/off)
  table18  dataset description table
  tables   benchmark query listings (fig 19/20/22)
  all      everything above";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let mut selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if selected.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    if selected.contains(&"all") {
        selected = vec![
            "table18", "tables", "fig9a", "fig9b", "fig10", "fig11", "fig12", "fig13", "fig14",
            "fig15", "fig16a", "fig16b", "fig23", "fig24", "fig25", "fig26", "ablation",
        ];
    }
    let t0 = std::time::Instant::now();
    eprintln!("building datasets and αDBs (fast={fast})...");
    let ctx = Context::build(HarnessConfig { fast });
    eprintln!("context ready in {:?}", t0.elapsed());

    for exp in selected {
        let t = std::time::Instant::now();
        match exp {
            "fig9a" => fig9_scalability::run_fig9a(&ctx),
            "fig9b" => fig9_scalability::run_fig9b(&ctx),
            "fig10" => fig10_accuracy::run(&ctx),
            "fig11" => fig11_runtime::run(&ctx),
            "fig12" => fig12_disambiguation::run(&ctx),
            "fig13" => fig13_case_studies::run(&ctx),
            "fig14" => qre_comparison::run_fig14(&ctx),
            "fig15" => qre_comparison::run_fig15(&ctx),
            "fig16a" => pu_comparison::run_fig16a(&ctx),
            "fig16b" => pu_comparison::run_fig16b(&ctx),
            "fig23" => sensitivity::run_fig23(&ctx),
            "fig24" => sensitivity::run_fig24(&ctx),
            "fig25" => sensitivity::run_fig25(&ctx),
            "fig26" => sensitivity::run_fig26(&ctx),
            "ablation" => ablation::run(&ctx),
            "table18" => tables::run_table18(&ctx),
            "tables" => tables::run_query_tables(&ctx),
            other => {
                eprintln!("unknown experiment {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        }
        eprintln!("[{exp} done in {:?}]", t.elapsed());
        println!();
    }
}
