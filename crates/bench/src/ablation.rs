//! Ablation study: remove each component of the filter prior
//! Pr(φ) = ρ·δ·α·λ in turn and measure the impact on abduction accuracy
//! across the IMDb benchmark. This quantifies the design choices DESIGN.md
//! calls out (the domain-coverage penalty, the association-strength gate,
//! and the outlier test) beyond the per-parameter sweeps of Figures 23–26.

use squid_core::{Squid, SquidParams};

use crate::context::Context;
use crate::{discover_and_score, mean, sample_examples};

fn variant(name: &str) -> (String, SquidParams) {
    let p = match name {
        "full" => SquidParams::default(),
        "no-delta" => SquidParams {
            gamma: 0.0,
            ..SquidParams::default()
        },
        "no-alpha" => SquidParams {
            tau_a: 0,
            ..SquidParams::default()
        },
        "no-lambda" => SquidParams {
            tau_s: None,
            ..SquidParams::default()
        },
        "rho-only" => SquidParams {
            gamma: 0.0,
            tau_a: 0,
            tau_s: None,
            ..SquidParams::default()
        },
        other => panic!("unknown ablation variant {other}"),
    };
    (name.to_string(), p)
}

/// Run the prior-component ablation.
pub fn run(ctx: &Context) {
    println!("# Ablation: filter-prior components (IMDb, mean f-score over all IQ queries)");
    let variants: Vec<(String, SquidParams)> =
        ["full", "no-delta", "no-alpha", "no-lambda", "rho-only"]
            .iter()
            .map(|n| variant(n))
            .collect();
    let sizes = [3usize, 5, 10, 20];
    let draws = if ctx.config.fast { 3 } else { 8 };
    print!("{:<10}", "examples");
    for (name, _) in &variants {
        print!(" {name:>10}");
    }
    println!();
    for &k in &sizes {
        print!("{k:<10}");
        for (_, params) in &variants {
            let squid = Squid::with_params(&ctx.imdb.adb, params.clone());
            let mut fs = Vec::new();
            for q in &ctx.imdb.queries {
                for seed in 0..draws {
                    let (examples, truth) = sample_examples(&ctx.imdb.db, &q.query, k, seed);
                    if examples.is_empty() {
                        continue;
                    }
                    if let Ok((_, acc)) = discover_and_score(&squid, &q.query, &examples, &truth) {
                        fs.push(acc.f_score);
                    }
                }
            }
            print!(" {:>10.3}", mean(&fs));
        }
        println!();
    }
    println!("# expectation: each component earns its keep at small |E| (dropping");
    println!("# coincidental filters); differences shrink as examples accumulate.");
}
