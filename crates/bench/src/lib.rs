//! # squid-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (Section 7 + appendices) on the synthetic datasets.
//! Run `cargo run --release -p squid-bench --bin experiments -- all` (or a
//! single figure id) to print the corresponding rows/series.

#![warn(missing_docs)]

pub mod ablation;
pub mod context;
pub mod fig10_accuracy;
pub mod fig11_runtime;
pub mod fig12_disambiguation;
pub mod fig13_case_studies;
pub mod fig9_scalability;
pub mod pu_comparison;
pub mod qre_comparison;
pub mod sensitivity;
pub mod tables;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use squid_core::{Accuracy, Discovery, Squid, SquidError, SquidParams};
use squid_engine::{Executor, Query};
use squid_relation::{Database, RowSet};

/// Sample `k` distinct example values from a query's output (plus the full
/// output row set as ground truth).
pub fn sample_examples(db: &Database, query: &Query, k: usize, seed: u64) -> (Vec<String>, RowSet) {
    let rs = Executor::new(db).execute(query).expect("query executes");
    let values = rs
        .project(db, query.projection.as_str())
        .expect("projection");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..values.len()).collect();
    for i in 0..k.min(idx.len()) {
        let j = rng.random_range(i..idx.len());
        idx.swap(i, j);
    }
    idx.truncate(k.min(values.len()));
    let examples = idx.iter().map(|&i| values[i].to_string()).collect();
    (examples, rs.rows)
}

/// The complete output of a query as example values (closed-world / QRE
/// input).
pub fn full_output(db: &Database, query: &Query) -> (Vec<String>, RowSet) {
    let rs = Executor::new(db).execute(query).expect("query executes");
    let values = rs
        .project(db, query.projection.as_str())
        .expect("projection");
    (values.iter().map(|v| v.to_string()).collect(), rs.rows)
}

/// Run discovery against a fixed target, returning the accuracy against
/// `truth` alongside the discovery itself.
pub fn discover_and_score(
    squid: &Squid<'_>,
    query: &Query,
    examples: &[String],
    truth: &RowSet,
) -> Result<(Discovery, Accuracy), SquidError> {
    let refs: Vec<&str> = examples.iter().map(String::as_str).collect();
    let d = squid.discover_on(query.root(), query.projection.as_str(), &refs)?;
    let acc = Accuracy::of(&d.rows, truth);
    Ok((d, acc))
}

/// Recommended parameters per dataset (the paper tunes once per dataset,
/// Appendix E).
pub fn params_for(dataset: &str) -> SquidParams {
    match dataset {
        // DBLP association counts (papers per venue) are smaller than IMDb
        // careers, so the significance threshold is lower.
        "dblp" => SquidParams {
            tau_a: 3,
            ..SquidParams::default()
        },
        _ => SquidParams::default(),
    }
}

/// Format a float column.
pub fn fmt(x: f64) -> String {
    format!("{x:.3}")
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squid_datasets::{generate_imdb, imdb_queries, ImdbConfig};

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let db = generate_imdb(&ImdbConfig::tiny());
        let q = &imdb_queries(&db)[0].query;
        let (a, truth) = sample_examples(&db, q, 5, 9);
        let (b, _) = sample_examples(&db, q, 5, 9);
        assert_eq!(a, b);
        assert!(a.len() <= 5);
        assert!(!truth.is_empty());
    }

    #[test]
    fn full_output_covers_everything() {
        let db = generate_imdb(&ImdbConfig::tiny());
        let q = &imdb_queries(&db)[0].query;
        let (vals, truth) = full_output(&db, q);
        assert_eq!(vals.len(), truth.len());
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }
}
