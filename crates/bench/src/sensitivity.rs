//! Parameter sensitivity experiments (Appendix E, Figures 23–26): the
//! effect of ρ, γ, τa, and τs on abduction f-score.

use squid_core::{Squid, SquidParams};

use crate::context::{Context, Workload};
use crate::{discover_and_score, mean, sample_examples};

fn f_scores(
    workload: &Workload,
    query_id: &str,
    params: &SquidParams,
    sizes: &[usize],
    draws: u64,
) -> Vec<f64> {
    let q = workload.query(query_id);
    let squid = Squid::with_params(&workload.adb, params.clone());
    sizes
        .iter()
        .map(|&k| {
            let mut fs = Vec::new();
            for seed in 0..draws {
                let (examples, truth) = sample_examples(&workload.db, &q.query, k, seed);
                if examples.is_empty() {
                    continue;
                }
                if let Ok((_, acc)) = discover_and_score(&squid, &q.query, &examples, &truth) {
                    fs.push(acc.f_score);
                }
            }
            mean(&fs)
        })
        .collect()
}

fn print_sweep(
    workload: &Workload,
    queries: &[&str],
    label: &str,
    settings: &[(String, SquidParams)],
    sizes: &[usize],
    draws: u64,
) {
    for id in queries {
        println!("## {id}");
        print!("{:<10}", "examples");
        for (name, _) in settings {
            print!(" {:>12}", format!("{label}={name}"));
        }
        println!();
        let series: Vec<Vec<f64>> = settings
            .iter()
            .map(|(_, p)| f_scores(workload, id, p, sizes, draws))
            .collect();
        for (i, &k) in sizes.iter().enumerate() {
            print!("{k:<10}");
            for s in &series {
                print!(" {:>12.3}", s[i]);
            }
            println!();
        }
    }
}

/// Figure 23: base prior ρ ∈ {0.5, 0.1, 0.01}.
pub fn run_fig23(ctx: &Context) {
    println!("# Figure 23: effect of the base filter prior ρ (IMDb)");
    let sizes = [3usize, 5, 10, 15, 20];
    let draws = if ctx.config.fast { 3 } else { 8 };
    let settings: Vec<(String, SquidParams)> = [0.5, 0.1, 0.01]
        .iter()
        .map(|&rho| {
            (
                format!("{rho}"),
                SquidParams {
                    rho,
                    ..SquidParams::default()
                },
            )
        })
        .collect();
    print_sweep(
        &ctx.imdb,
        &["IQ2", "IQ3", "IQ4", "IQ11", "IQ16"],
        "rho",
        &settings,
        &sizes,
        draws,
    );
    println!("# expectation: low ρ favors some queries, hurts others; ρ=0.1 is a");
    println!("# good average (the default).");
}

/// Figure 24: coverage penalty γ ∈ {10, 5, 2, 0}.
pub fn run_fig24(ctx: &Context) {
    println!("# Figure 24: effect of the domain-coverage penalty γ (IMDb)");
    let sizes = [3usize, 5, 10, 15, 20];
    let draws = if ctx.config.fast { 3 } else { 8 };
    let settings: Vec<(String, SquidParams)> = [10.0, 5.0, 2.0, 0.0]
        .iter()
        .map(|&gamma| {
            (
                format!("{gamma}"),
                SquidParams {
                    gamma,
                    ..SquidParams::default()
                },
            )
        })
        .collect();
    print_sweep(
        &ctx.imdb,
        &["IQ2", "IQ3", "IQ4", "IQ11", "IQ16"],
        "gamma",
        &settings,
        &sizes,
        draws,
    );
}

/// Figure 25: association-strength threshold τa ∈ {0, 5} on IQ5.
pub fn run_fig25(ctx: &Context) {
    println!("# Figure 25: effect of the association-strength threshold τa (IQ5, IMDb)");
    let sizes = [3usize, 5, 7, 9, 11, 13, 15];
    let draws = if ctx.config.fast { 3 } else { 8 };
    let settings: Vec<(String, SquidParams)> = [0u64, 5]
        .iter()
        .map(|&tau_a| {
            (
                format!("{tau_a}"),
                SquidParams {
                    tau_a,
                    ..SquidParams::default()
                },
            )
        })
        .collect();
    print_sweep(&ctx.imdb, &["IQ5"], "tau_a", &settings, &sizes, draws);
    println!("# expectation: with few examples high τa drops coincidental weak");
    println!("# filters; the effect diminishes as examples grow.");
}

/// Figure 26: skewness threshold τs ∈ {N/A, 0, 2, 4} on IQ1.
pub fn run_fig26(ctx: &Context) {
    println!("# Figure 26: effect of the skewness threshold τs (IQ1, IMDb)");
    let sizes = [3usize, 5, 7, 9, 11, 13, 15];
    let draws = if ctx.config.fast { 3 } else { 8 };
    let mut settings: Vec<(String, SquidParams)> = vec![(
        "N/A".to_string(),
        SquidParams {
            tau_s: None,
            ..SquidParams::default()
        },
    )];
    for tau in [0.0, 2.0, 4.0] {
        settings.push((
            format!("{tau}"),
            SquidParams {
                tau_s: Some(tau),
                ..SquidParams::default()
            },
        ));
    }
    print_sweep(&ctx.imdb, &["IQ1"], "tau_s", &settings, &sizes, draws);
}
