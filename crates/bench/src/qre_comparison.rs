//! Figures 14 & 15: query reverse engineering comparison against the
//! TALOS-style baseline. Closed world: the full benchmark-query output is
//! given as input; SQuID runs with the optimistic parameter preset
//! (Appendix E) since nothing is coincidental in a closed world.

use squid_baselines::{default_excludes, talos_reverse_engineer};
use squid_core::{Accuracy, Squid, SquidParams};

use crate::context::{Context, Workload};
use crate::full_output;

struct Row {
    id: String,
    cardinality: usize,
    actual_preds: usize,
    squid_preds: usize,
    talos_preds: usize,
    squid_ms: f64,
    talos_ms: f64,
    squid_f: f64,
    talos_f: f64,
}

fn run_workload(workload: &Workload, max_cardinality: usize) -> Vec<Row> {
    let squid = Squid::with_params(&workload.adb, SquidParams::optimistic());
    let mut rows = Vec::new();
    for q in &workload.queries {
        let (examples, truth) = full_output(&workload.db, &q.query);
        if truth.is_empty() || truth.len() > max_cardinality {
            continue;
        }
        let refs: Vec<&str> = examples.iter().map(String::as_str).collect();
        let Ok(d) = squid.discover_on(q.query.root(), q.query.projection.as_str(), &refs) else {
            continue;
        };
        let squid_acc = Accuracy::of(&d.rows, &truth);
        let excludes = default_excludes(&workload.db, q.query.root());
        let exclude_refs: Vec<&str> = excludes.iter().map(String::as_str).collect();
        let talos = talos_reverse_engineer(&workload.db, q.query.root(), &exclude_refs, &truth);
        let talos_acc = Accuracy::of(&talos.predicted_rows, &truth);
        rows.push(Row {
            id: q.id.clone(),
            cardinality: truth.len(),
            actual_preds: q.query.total_predicate_count(),
            squid_preds: d.query.total_predicate_count(),
            talos_preds: talos.predicate_count,
            squid_ms: d.elapsed.as_secs_f64() * 1e3,
            talos_ms: talos.elapsed.as_secs_f64() * 1e3,
            squid_f: squid_acc.f_score,
            talos_f: talos_acc.f_score,
        });
    }
    rows
}

fn print_rows(mut rows: Vec<Row>, sort_by_cardinality: bool) {
    if sort_by_cardinality {
        rows.sort_by_key(|r| r.cardinality);
    }
    println!(
        "{:<6} {:>6} {:>8} {:>8} {:>8} {:>10} {:>10} {:>8} {:>8}",
        "query", "card", "act_prd", "sq_prd", "ta_prd", "sq_ms", "ta_ms", "sq_f", "ta_f"
    );
    for r in &rows {
        println!(
            "{:<6} {:>6} {:>8} {:>8} {:>8} {:>10.2} {:>10.2} {:>8.3} {:>8.3}",
            r.id,
            r.cardinality,
            r.actual_preds,
            r.squid_preds,
            r.talos_preds,
            r.squid_ms,
            r.talos_ms,
            r.squid_f,
            r.talos_f
        );
    }
    let ieq = rows.iter().filter(|r| r.squid_f >= 1.0 - 1e-9).count();
    println!(
        "# SQuID exact IEQs: {}/{}; TALOS exact: {}/{}",
        ieq,
        rows.len(),
        rows.iter().filter(|r| r.talos_f >= 1.0 - 1e-9).count(),
        rows.len()
    );
}

/// Figure 14: Adult dataset (predicate counts + discovery time).
pub fn run_fig14(ctx: &Context) {
    println!("# Figure 14: QRE on Adult — SQuID vs TALOS (sorted by input cardinality)");
    let rows = run_workload(&ctx.adult, usize::MAX);
    print_rows(rows, true);
    println!("# expectation: both reach f=1 on most queries; SQuID's queries are far");
    println!("# smaller (close to the actual predicate count) than TALOS's.");
}

/// Figure 15: IMDb and DBLP datasets.
pub fn run_fig15(ctx: &Context) {
    let cap = if ctx.config.fast { 800 } else { 4000 };
    println!("# Figure 15(a): QRE on IMDb — SQuID vs TALOS");
    print_rows(run_workload(&ctx.imdb, cap), false);
    println!("# Figure 15(b): QRE on DBLP — SQuID vs TALOS");
    print_rows(run_workload(&ctx.dblp, cap), false);
    println!("# expectation: SQuID wins on predicates and f-score; IQ10 fails (outside");
    println!("# the supported family); TALOS shows label-noise failures on cast queries.");
}
