//! `snapshot` — what the durable αDB snapshot buys at process start.
//!
//! * `rebuild` — `ADb::build` over the default IMDb slate: the cold-start
//!   path every process paid before snapshots existed (dataset generation
//!   excluded, so this is the conservative comparison — the real cold
//!   path also regenerates the relations the snapshot already contains).
//! * `load` — `ADb::load_snapshot` of the same αDB from a snapshot file:
//!   decode + CRC verification + interner remap + stats reconstruction.
//! * `save` — `ADb::save_snapshot_to` into a sink: the marginal cost of
//!   making a build durable.

use criterion::{criterion_group, criterion_main, Criterion};
use squid_adb::ADb;
use squid_datasets::{generate_imdb, ImdbConfig};

fn bench_snapshot(c: &mut Criterion) {
    let db = generate_imdb(&ImdbConfig::default());
    let adb = ADb::build(&db).unwrap();
    let path = std::env::temp_dir().join("squid_bench_snapshot.adb");
    adb.save_snapshot(&path).unwrap();

    let mut group = c.benchmark_group("snapshot");
    group.bench_function("rebuild/imdb", |b| {
        b.iter(|| ADb::build(std::hint::black_box(&db)).unwrap())
    });
    group.bench_function("load/imdb", |b| {
        b.iter(|| ADb::load_snapshot(std::hint::black_box(&path)).unwrap())
    });
    group.bench_function("save/imdb", |b| {
        b.iter(|| adb.save_snapshot_to(&mut std::io::sink()).unwrap())
    });
    group.finish();
    let _ = std::fs::remove_file(&path);
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);
