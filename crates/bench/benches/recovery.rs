//! `recovery` — what journal compaction buys at restart.
//!
//! One session plays a 1000-turn add/remove workload, so the journal
//! holds a thousand mutation records while the live state stays small
//! (the paper's interactive sessions churn examples far more than they
//! accumulate them). Then:
//!
//! * `full_replay` — a fresh manager recovers from the raw journal,
//!   re-running every one of those turns through the discovery engine.
//! * `compacted` — the same fleet state recovered from the compacted
//!   journal: one snapshot record per live session plus its surviving
//!   state ops, so replay cost is bounded by live state, not history.
//!
//! The ratio between the two is the bound the `--auto-compact` trigger
//! enforces on worst-case restart time.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use squid_adb::{test_fixtures, ADb};
use squid_core::{FsyncPolicy, Journal, SessionManager, SessionOp};

const TURNS: usize = 1_000;
const NAMES: [&str; 3] = ["Jim Carrey", "Eddie Murphy", "Robin Williams"];

fn bench_recovery(c: &mut Criterion) {
    let adb = Arc::new(ADb::build(&test_fixtures::mini_imdb()).unwrap());
    let dir = std::env::temp_dir();
    let live = dir.join(format!(
        "squid_bench_recovery_{}.journal",
        std::process::id()
    ));
    let full = live.with_extension("journal.full");
    let _ = std::fs::remove_file(&live);

    // Record the workload: alternating add/remove churn, always keeping
    // at least one example so the session never goes empty.
    let manager = SessionManager::new(Arc::clone(&adb));
    manager.attach_journal(Journal::open(&live, FsyncPolicy::Never).unwrap());
    let id = manager.create_session();
    manager
        .apply_op(id, &SessionOp::AddExample(NAMES[0].into()))
        .unwrap();
    for turn in 0..TURNS {
        let name = NAMES[1 + (turn / 2) % 2];
        let op = if turn % 2 == 0 {
            SessionOp::AddExample(name.into())
        } else {
            SessionOp::RemoveExample(name.into())
        };
        manager.apply_op(id, &op).unwrap();
    }
    manager.journal_sync().unwrap();

    // Keep the full-history bytes, then compact in place.
    std::fs::copy(&live, &full).unwrap();
    let stats = manager
        .compact_journal()
        .unwrap()
        .expect("journal attached");
    println!(
        "recovery: {} turn(s) journaled, compaction {} -> {} bytes ({} record(s))",
        TURNS + 2,
        stats.bytes_before,
        stats.bytes_after,
        stats.records_written
    );
    drop(manager);

    let mut group = c.benchmark_group("recovery");
    group.bench_function("full_replay/1000_turns", |b| {
        b.iter(|| {
            let m = SessionManager::new(Arc::clone(&adb));
            let st = m
                .recover(std::hint::black_box(&full), FsyncPolicy::Never)
                .unwrap();
            assert_eq!(st.live_sessions, 1);
            st.records_applied
        })
    });
    group.bench_function("compacted/1000_turns", |b| {
        b.iter(|| {
            let m = SessionManager::new(Arc::clone(&adb));
            let st = m
                .recover(std::hint::black_box(&live), FsyncPolicy::Never)
                .unwrap();
            assert_eq!(st.live_sessions, 1);
            st.records_applied
        })
    });
    group.finish();
    let _ = std::fs::remove_file(&live);
    let _ = std::fs::remove_file(&full);
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
