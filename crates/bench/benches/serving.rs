//! `serving` — what a session turn costs once a real TCP socket sits
//! between the user and the fleet (`squid-serve`, PR 8).
//!
//! * `ping_rt` — empty-protocol round trip: socket + framing + JSON
//!   overhead with zero discovery work. The floor every other number
//!   sits on.
//! * `turn_rt` — one served mutation round trip (an `add`/`remove` pair,
//!   so session state is iteration-invariant): the incremental session
//!   path plus the wire.
//! * `session_replay` — a full served session (create → 5 adds → sql →
//!   close) over a persistent connection: the per-session serving cost.
//! * `fleet` — 8 concurrent clients each replaying a scripted session:
//!   the contended number, workers and admission control included.
//!
//! A dedicated load run afterwards records tail latencies under
//! `serving_tail/` (p50/p95/p99 of the turn round trip). Tails are
//! volatile on shared runners, so the CI geomean gate reads `serving/`
//! and leaves `serving_tail/` as trajectory evidence only.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use squid_adb::ADb;
use squid_bench::{params_for, sample_examples};
use squid_core::SessionManager;
use squid_datasets::{generate_imdb, imdb_queries, ImdbConfig};
use squid_serve::{run_load, Client, LoadConfig, LoadTurn, ServeConfig, Server};

fn start_server(adb: &Arc<ADb>) -> Server {
    let manager = Arc::new(SessionManager::with_params(
        Arc::clone(adb),
        params_for("imdb"),
    ));
    Server::start(manager, ServeConfig::default()).expect("bind bench server")
}

fn bench_serving(c: &mut Criterion) {
    let cfg = ImdbConfig::default();
    let db = generate_imdb(&cfg);
    let adb = Arc::new(ADb::build(&db).unwrap());
    let queries = imdb_queries(&db);
    let q = queries.iter().find(|q| q.id == "IQ15").unwrap();
    let (examples, _) = sample_examples(&db, &q.query, 10, 3);

    let server = start_server(&adb);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();

    let mut group = c.benchmark_group("serving");

    group.bench_function("ping_rt", |b| {
        b.iter(|| client.ping().unwrap());
    });

    // One warm session; each iteration adds and removes the same example,
    // so every measured turn runs the incremental path against identical
    // session state.
    let sid = client.create().unwrap();
    for e in &examples[..4] {
        client.add(sid, e).unwrap();
    }
    let extra = &examples[4];
    group.bench_function("turn_rt", |b| {
        b.iter(|| {
            client.add(sid, extra).unwrap();
            client.remove(sid, extra).unwrap();
        });
    });
    client.close(sid).unwrap();

    group.bench_function("session_replay", |b| {
        b.iter(|| {
            let sid = client.create().unwrap();
            for e in &examples[..5] {
                client.add(sid, e).unwrap();
            }
            let sql = client.sql(sid).unwrap();
            client.close(sid).unwrap();
            sql
        });
    });

    let script: Vec<LoadTurn> = examples[..5]
        .iter()
        .map(|e| LoadTurn::Add(e.clone()))
        .chain([LoadTurn::Sql, LoadTurn::Suggest(2), LoadTurn::Rows(5)])
        .collect();
    let fleet_cfg = LoadConfig {
        clients: 8,
        sessions_per_client: 1,
        script: script.clone(),
    };
    group.bench_function("fleet/8", |b| {
        b.iter(|| {
            let report = run_load(addr, &fleet_cfg).expect("load run");
            assert_eq!(report.errors, 0);
            report.turns
        });
    });
    group.finish();

    // Tail-latency evidence: one bigger dedicated run, percentiles
    // recorded straight into the bench JSON (no closure timing).
    let tail_cfg = LoadConfig {
        clients: 8,
        sessions_per_client: if c.is_test_mode() { 1 } else { 6 },
        script,
    };
    let report = run_load(addr, &tail_cfg).expect("tail load run");
    assert_eq!(report.errors, 0, "tail run must be error-free");
    c.record("serving_tail/turn_p50", report.turn_p50.as_nanos() as f64);
    c.record("serving_tail/turn_p95", report.turn_p95.as_nanos() as f64);
    c.record("serving_tail/turn_p99", report.turn_p99.as_nanos() as f64);
    eprintln!("serving tail run: {}", report.summary());

    drop(client);
    server.shutdown();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
