//! `multi_session` — the fleet-serving counterpart of `incr_session`:
//! N concurrent-style sessions over one shared `Arc<ADb>` replaying
//! overlapping filter workloads, measuring what the manager-level
//! [`SharedFilterSetCache`] buys.
//!
//! * `cold_session` — a fresh manager (empty shared cache) runs one
//!   session through the slate: every filter bitmap is computed from αDB
//!   postings. This is the cold-turn baseline.
//! * `warm_session` — a manager whose shared cache was already populated
//!   by a previous session hosts a brand-new session replaying the same
//!   slate: its local cache starts empty, so every turn is served
//!   cross-session from the shared shards.
//! * `fleet_shared` / `fleet_unshared` — an 8-session fleet replays two
//!   overlapping slates with and without the shared cache: the A/B that
//!   shows hot filters becoming a process-wide one-time cost.
//!
//! After the timed runs the warm manager's hit rate and resident bytes
//! are printed so recorded runs carry the cache effectiveness alongside
//! the latency numbers.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use squid_adb::ADb;
use squid_bench::{params_for, sample_examples};
use squid_core::SessionManager;
use squid_datasets::{generate_imdb_variant, imdb_queries, ImdbConfig, ImdbVariant};

const FLEET: usize = 8;

/// Drive one session through a slate inside `manager`, returning the
/// result size (kept live so the work cannot be optimized away).
fn replay(manager: &SessionManager, slate: &[&str]) -> usize {
    let id = manager.create_session();
    let rows = manager
        .with_session(id, |s| {
            for e in slate {
                s.add_example(e)?;
            }
            Ok(s.discovery().expect("slate resolves").rows.len())
        })
        .expect("replay succeeds");
    manager.end_session(id);
    rows
}

fn bench_multi_session(c: &mut Criterion) {
    // Bigger and denser than the fig9a dataset: cross-session reuse pays
    // off in proportion to postings length (cold walks grow with the
    // associations, warm bitmap ANDs only with n/64 words).
    let cfg = ImdbConfig {
        persons: 12_000,
        movies: 8_000,
        ..ImdbConfig::default()
    };
    let db = generate_imdb_variant(&cfg, ImdbVariant::BigDense);
    let adb = Arc::new(ADb::build(&db).unwrap());
    let queries = imdb_queries(&db);
    let params = params_for("imdb");
    // Two overlapping workloads: both slates are drawn from IQ15 with
    // different seeds, so fleets replaying them share most (not all) of
    // their abduced filters — the realistic popular-filter overlap.
    let q = queries.iter().find(|q| q.id == "IQ15").unwrap();
    let (examples_a, _) = sample_examples(&db, &q.query, 10, 3);
    let (examples_b, _) = sample_examples(&db, &q.query, 10, 7);
    let slate_a: Vec<&str> = examples_a.iter().map(String::as_str).collect();
    let slate_b: Vec<&str> = examples_b.iter().map(String::as_str).collect();

    let mut group = c.benchmark_group("multi_session");

    // Cold: a fresh manager per iteration — the shared cache starts empty,
    // so the session computes every admitted bitmap from postings.
    group.bench_with_input(BenchmarkId::new("cold_session", 10), &slate_a, |b, s| {
        b.iter_batched(
            || SessionManager::with_params(Arc::clone(&adb), params.clone()),
            |m| replay(&m, s),
            BatchSize::SmallInput,
        )
    });

    // Warm: the shared cache was populated by an earlier session; each
    // iteration creates a NEW session (empty local cache) and replays the
    // same turns — pure cross-session reuse.
    let warm = SessionManager::with_params(Arc::clone(&adb), params.clone());
    replay(&warm, &slate_a);
    group.bench_with_input(BenchmarkId::new("warm_session", 10), &slate_a, |b, s| {
        b.iter(|| replay(&warm, std::hint::black_box(s)))
    });

    // Fleet A/B: 8 sessions alternating between the two overlapping
    // slates, with and without the fleet-wide cache.
    group.bench_function(format!("fleet_shared/{FLEET}"), |b| {
        b.iter_batched(
            || SessionManager::with_params(Arc::clone(&adb), params.clone()),
            |m| {
                let mut total = 0;
                for i in 0..FLEET {
                    let slate = if i % 2 == 0 { &slate_a } else { &slate_b };
                    total += replay(&m, slate);
                }
                total
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function(format!("fleet_unshared/{FLEET}"), |b| {
        b.iter_batched(
            || SessionManager::with_params(Arc::clone(&adb), params.clone()).without_shared_cache(),
            |m| {
                let mut total = 0;
                for i in 0..FLEET {
                    let slate = if i % 2 == 0 { &slate_a } else { &slate_b };
                    total += replay(&m, slate);
                }
                total
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();

    // Cache-effectiveness report for the warm manager (many whole-slate
    // replays by now): hit rate and bounded residency.
    if let Some(stats) = warm.shared_cache_stats() {
        let total = stats.hits + stats.misses;
        let rate = if total > 0 {
            100.0 * stats.hits as f64 / total as f64
        } else {
            0.0
        };
        eprintln!(
            "multi_session shared cache: {} hits / {} misses ({rate:.0}% hit rate), \
             {} entries, {} / {} resident bytes, {} evictions",
            stats.hits,
            stats.misses,
            stats.entries,
            stats.resident_bytes,
            stats.max_resident_bytes,
            stats.evictions
        );
        assert!(
            stats.resident_bytes <= stats.max_resident_bytes,
            "shared cache must respect its byte bound"
        );
    }
}

criterion_group!(benches, bench_multi_session);
criterion_main!(benches);
