//! Criterion benches for the comparison baselines — the timing
//! counterparts of Figure 14/15's discovery-time columns (TALOS vs SQuID)
//! and Figure 16(b)'s PU-learning training time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use squid_adb::ADb;
use squid_baselines::{single_table, talos_reverse_engineer, PuClassifier, PuConfig, PuEstimator};
use squid_bench::full_output;
use squid_core::{Squid, SquidParams};
use squid_datasets::{adult_queries, generate_adult, AdultConfig};

fn bench_fig14_qre(c: &mut Criterion) {
    let db = generate_adult(&AdultConfig {
        rows: 4_000,
        ..AdultConfig::default()
    });
    let adb = ADb::build(&db).unwrap();
    let queries = adult_queries(&db, 0xA0, 3);
    let q = &queries[0];
    let (examples, truth) = full_output(&db, &q.query);
    let refs: Vec<&str> = examples.iter().map(String::as_str).collect();
    let squid = Squid::with_params(&adb, SquidParams::optimistic());
    c.bench_function("fig14/squid_qre", |b| {
        b.iter(|| {
            squid
                .discover_on("adult", "name", std::hint::black_box(&refs))
                .unwrap()
        })
    });
    c.bench_function("fig14/talos_qre", |b| {
        b.iter(|| {
            talos_reverse_engineer(
                std::hint::black_box(&db),
                "adult",
                &["name"],
                std::hint::black_box(&truth),
            )
        })
    });
}

fn bench_fig16b_pu_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16b_pu_training");
    for rows in [2_000usize, 8_000] {
        let db = generate_adult(&AdultConfig {
            rows,
            ..AdultConfig::default()
        });
        let queries = adult_queries(&db, 0xA0, 1);
        let (_, truth) = full_output(&db, &queries[0].query);
        let positives: Vec<usize> = truth.iter().take(25).collect();
        let (x, _) = single_table(&db, "adult", &["name"]);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| {
                PuClassifier::fit(
                    std::hint::black_box(&x),
                    std::hint::black_box(&positives),
                    &PuConfig {
                        estimator: PuEstimator::DecisionTree,
                        ..Default::default()
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig14_qre, bench_fig16b_pu_scaling);
criterion_main!(benches);
