//! Criterion benches for the abduction pipeline — the timing counterparts
//! of Figure 9(a) (time vs #examples) and Figure 9(b) (time vs dataset
//! size), plus αDB construction (Figure 18's precomputation column) and the
//! incremental-session latency experiment (per-example update vs full
//! recompute).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use squid_adb::ADb;
use squid_bench::{params_for, sample_examples};
use squid_core::{Squid, SquidSession};
use squid_datasets::{generate_imdb, generate_imdb_variant, imdb_queries, ImdbConfig, ImdbVariant};

fn bench_adb_build(c: &mut Criterion) {
    let cfg = ImdbConfig {
        persons: 1_500,
        movies: 800,
        ..ImdbConfig::default()
    };
    let db = generate_imdb(&cfg);
    c.bench_function("adb_build/imdb_1500p", |b| {
        b.iter(|| ADb::build(std::hint::black_box(&db)).unwrap())
    });
}

fn bench_discovery_vs_examples(c: &mut Criterion) {
    // Figure 9(a): abduction time as |E| grows.
    let cfg = ImdbConfig {
        persons: 1_500,
        movies: 800,
        ..ImdbConfig::default()
    };
    let db = generate_imdb(&cfg);
    let adb = ADb::build(&db).unwrap();
    let queries = imdb_queries(&db);
    let q = queries.iter().find(|q| q.id == "IQ15").unwrap();
    let squid = Squid::with_params(&adb, params_for("imdb"));
    let mut group = c.benchmark_group("fig9a_discovery_vs_examples");
    for k in [5usize, 10, 20, 30] {
        let (examples, _) = sample_examples(&db, &q.query, k, 3);
        let refs: Vec<&str> = examples.iter().map(String::as_str).collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &refs, |b, refs| {
            b.iter(|| {
                squid
                    .discover_on("movie", "title", std::hint::black_box(refs))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_discovery_vs_dataset_size(c: &mut Criterion) {
    // Figure 9(b): abduction time across sm/base/bs/bd variants.
    let cfg = ImdbConfig {
        persons: 1_000,
        movies: 600,
        ..ImdbConfig::default()
    };
    let mut group = c.benchmark_group("fig9b_discovery_vs_size");
    for (tag, variant) in [
        ("sm", ImdbVariant::Small),
        ("base", ImdbVariant::Base),
        ("bs", ImdbVariant::BigSparse),
        ("bd", ImdbVariant::BigDense),
    ] {
        let db = generate_imdb_variant(&cfg, variant);
        let adb = ADb::build(&db).unwrap();
        let queries = imdb_queries(&db);
        let q = queries.iter().find(|q| q.id == "IQ15").unwrap();
        let (examples, _) = sample_examples(&db, &q.query, 10, 3);
        let refs: Vec<&str> = examples.iter().map(String::as_str).collect();
        let squid = Squid::with_params(&adb, params_for("imdb"));
        if squid.discover_on("movie", "title", &refs).is_err() {
            continue; // variant too small for this query's example draw
        }
        group.bench_function(tag, |b| {
            b.iter(|| {
                squid
                    .discover_on("movie", "title", std::hint::black_box(&refs))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_incremental_session(c: &mut Criterion) {
    // The interactive loop on the IMDb slate: a session already holding
    // k−1 examples receives the k-th, versus re-running the full one-shot
    // `discover` on all k examples — the cost the session API removes from
    // every interaction after the first.
    let cfg = ImdbConfig {
        persons: 1_500,
        movies: 800,
        ..ImdbConfig::default()
    };
    let db = generate_imdb(&cfg);
    let adb = ADb::build(&db).unwrap();
    let queries = imdb_queries(&db);
    let q = queries.iter().find(|q| q.id == "IQ15").unwrap();
    let params = params_for("imdb");
    let mut group = c.benchmark_group("incr_session");
    for k in [5usize, 10] {
        let (examples, _) = sample_examples(&db, &q.query, k, 3);
        let refs: Vec<&str> = examples.iter().map(String::as_str).collect();
        // Full recompute: one-shot discover over all k examples (target
        // inference, resolution, context discovery from scratch).
        let squid = Squid::with_params(&adb, params.clone());
        group.bench_with_input(BenchmarkId::new("full_discover", k), &refs, |b, refs| {
            b.iter(|| squid.discover(std::hint::black_box(refs)).unwrap())
        });
        // Incremental update: a session holding the first k−1 examples
        // folds in the k-th (cloned fresh per iteration; only the add is
        // timed).
        let mut base = SquidSession::with_params(&adb, params.clone());
        for e in &refs[..k - 1] {
            base.add_example(e).unwrap();
        }
        let last = refs[k - 1];
        group.bench_with_input(BenchmarkId::new("session_add", k), &base, |b, base| {
            b.iter_batched(
                || base.clone(),
                |mut s| s.add_example(std::hint::black_box(last)).unwrap(),
                BatchSize::SmallInput,
            )
        });
        // Repeat-filter turns — the evaluation cache's home ground:
        //
        // `re_add` removes the k-th example and folds it back in with every
        // chosen filter's bitmap already resident, so the re-add's result
        // maintenance is pure word-wise intersection.
        let mut warm = base.clone();
        warm.add_example(last).unwrap();
        let mut removed = warm.clone();
        removed.remove_example(last).unwrap();
        group.bench_with_input(BenchmarkId::new("re_add", k), &removed, |b, removed| {
            b.iter_batched(
                || removed.clone(),
                |mut s| s.add_example(std::hint::black_box(last)).unwrap(),
                BatchSize::SmallInput,
            )
        });
        // `pin_toggle` is a feedback turn (the Figure 1 loop's pin/ban):
        // forcing one filter into the query updates the result by ANDing a
        // single cached bitmap onto the previous turn's rows. One warm-up
        // toggle makes the pinned filter's set resident, so the timed turn
        // is the repeat case.
        let pin_key = warm
            .discovery()
            .unwrap()
            .scored
            .iter()
            .find(|s| !s.included)
            .map(|s| s.filter.prop_id.as_str().to_string())
            .expect("an excluded candidate filter to pin");
        warm.pin_filter(&pin_key).unwrap();
        warm.unpin_filter(&pin_key).unwrap();
        group.bench_with_input(BenchmarkId::new("pin_toggle", k), &warm, |b, warm| {
            b.iter_batched(
                || warm.clone(),
                |mut s| s.pin_filter(std::hint::black_box(&pin_key)).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_adb_build,
    bench_discovery_vs_examples,
    bench_discovery_vs_dataset_size,
    bench_incremental_session
);
criterion_main!(benches);
