//! Microbenches for the hardware-limit scan path: per-tier SIMD kernel
//! throughput (scalar vs SSE2 vs AVX2 on the same data) and the
//! superbatch entry point against the per-word loop it amortizes.
//!
//! Ids are `kernel_scan/<family>/<tier>` and `kernel_superbatch/...`;
//! none are regression-gated (the gate watches fig9a/incr_session/
//! multi_session), they exist to record the measured speedup of each
//! dispatch tier in BENCH_squid.json.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use squid_relation::kernel::{self, CmpSpec, SUPERBATCH_WORDS};
use squid_relation::simd::available_tiers;
use squid_relation::{ColumnBuilder, DataType, Sym, Table, TableSchema, Value};

const ROWS: usize = 1 << 20;

/// One table with an int, a float, and a text column of pseudo-random
/// values (~3% nulls) — enough rows that per-word overheads dominate any
/// cache effects.
fn scan_table() -> Table {
    let mut ints = ColumnBuilder::new(DataType::Int);
    let mut floats = ColumnBuilder::new(DataType::Float);
    let mut texts = ColumnBuilder::new(DataType::Text);
    let mut x = 0x243F_6A88_85A3_08D3u64;
    for _ in 0..ROWS {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if x.is_multiple_of(32) {
            ints.push_null();
            floats.push_null();
            texts.push_null();
            continue;
        }
        ints.push_int((x >> 33) as i64 % 1_000);
        floats.push_float(((x >> 17) % 10_000) as f64 / 10.0);
        texts.push_sym(Sym::from(format!("tag{}", (x >> 40) % 16).as_str()));
    }
    Table::from_columns(
        TableSchema::new(
            "scan",
            vec![
                squid_relation::Column::new("i", DataType::Int),
                squid_relation::Column::new("f", DataType::Float),
                squid_relation::Column::new("t", DataType::Text),
            ],
        ),
        vec![ints, floats, texts],
    )
    .unwrap()
}

fn bench_kernel_tiers(c: &mut Criterion) {
    let table = scan_table();
    let n = table.len();
    let families: Vec<(&str, usize, DataType, CmpSpec)> = vec![
        (
            "int_range",
            0,
            DataType::Int,
            CmpSpec::Between(Value::Int(100), Value::Int(600)),
        ),
        (
            "float_range",
            1,
            DataType::Float,
            CmpSpec::Between(Value::Float(50.0), Value::Float(700.0)),
        ),
        (
            "sym_eq",
            2,
            DataType::Text,
            CmpSpec::Eq(Value::text("tag3")),
        ),
        (
            "sym_in",
            2,
            DataType::Text,
            CmpSpec::In(vec![
                Value::text("tag1"),
                Value::text("tag5"),
                Value::text("tag9"),
            ]),
        ),
    ];
    let mut group = c.benchmark_group("kernel_scan");
    for (name, col, dtype, spec) in &families {
        let k = kernel::compile(table.column(*col), *dtype, spec);
        for tier in available_tiers() {
            group.bench_function(format!("{name}/{}", tier.name()), |b| {
                b.iter(|| {
                    let mut acc = 0u32;
                    let mut buf = [0u64; SUPERBATCH_WORDS];
                    for sb in 0..kernel::superbatch_count(n) {
                        k.eval_superbatch_with(tier, sb, n, &mut buf);
                        for w in buf {
                            acc += w.count_ones();
                        }
                    }
                    black_box(acc)
                })
            });
        }
    }
    group.finish();

    // Superbatch amortization at the active tier: the 512-row entry point
    // (variant matched once, null words bulk-loaded) against the per-word
    // loop it replaced in the engine's hot path.
    let mut group = c.benchmark_group("kernel_superbatch");
    for (name, col, dtype, spec) in &families {
        let k = kernel::compile(table.column(*col), *dtype, spec);
        group.bench_function(format!("{name}/per_word"), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for batch in 0..kernel::batch_count(n) {
                    acc += k.eval_word(batch, n).count_ones();
                }
                black_box(acc)
            })
        });
        group.bench_function(format!("{name}/superbatch"), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                let mut buf = [0u64; SUPERBATCH_WORDS];
                for sb in 0..kernel::superbatch_count(n) {
                    k.eval_superbatch(sb, n, &mut buf);
                    for w in buf {
                        acc += w.count_ones();
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(kernels, bench_kernel_tiers);
criterion_main!(kernels);
