//! Criterion benches for query execution — the timing counterpart of
//! Figure 11 (actual vs abduced query runtime, including the αDB form).

use criterion::{criterion_group, criterion_main, Criterion};
use squid_adb::ADb;
use squid_bench::sample_examples;
use squid_core::Squid;
use squid_datasets::{generate_imdb, imdb_queries, ImdbConfig};
use squid_engine::Executor;

fn bench_fig11_actual_vs_abduced(c: &mut Criterion) {
    let cfg = ImdbConfig {
        persons: 1_500,
        movies: 800,
        ..ImdbConfig::default()
    };
    let db = generate_imdb(&cfg);
    let adb = ADb::build(&db).unwrap();
    let queries = imdb_queries(&db);
    let squid = Squid::new(&adb);
    let mut group = c.benchmark_group("fig11_query_runtime");
    for id in ["IQ1", "IQ4", "IQ9", "IQ16"] {
        let q = queries.iter().find(|q| q.id == id).unwrap();
        group.bench_function(format!("{id}/actual"), |b| {
            let exec = Executor::new(&db);
            b.iter(|| exec.execute(std::hint::black_box(&q.query)).unwrap())
        });
        let (examples, _) = sample_examples(&db, &q.query, 10, 1);
        let refs: Vec<&str> = examples.iter().map(String::as_str).collect();
        if let Ok(d) = squid.discover_on(q.query.root(), q.query.projection.as_str(), &refs) {
            let abduced = d.adb_query.clone().unwrap_or_else(|| d.query.clone());
            group.bench_function(format!("{id}/abduced"), |b| {
                let exec = Executor::new(&adb.database);
                b.iter(|| exec.execute(std::hint::black_box(&abduced)).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig11_actual_vs_abduced);
criterion_main!(benches);
