//! Resilient client wrapper: exponential backoff with jitter, automatic
//! reconnect, and sequence-numbered turns so a retried mutation is
//! applied exactly once even when the acknowledgement was lost.
//!
//! The core problem a bare [`Client`] cannot solve: a transport error on
//! a mutating turn is ambiguous — the server may have applied the
//! operation and crashed before the reply, or never seen it at all.
//! [`RetryClient`] removes the ambiguity by stamping every mutation with
//! a per-session turn number (`seq`, 1-based, contiguous) and resending
//! the *same* number after a reconnect: the server's cursor
//! ([`squid_core::SessionManager::apply_op_at`]) absorbs the duplicate
//! and answers with `deduped:true` instead of re-applying.
//!
//! Back-pressure is honoured, not fought: `overloaded`, `session_limit`
//! and `rate_limited` refusals carry a `retry_after_ms` hint, and the
//! backoff never sleeps less than the server asked for. Everything the
//! wrapper does on the caller's behalf is counted in [`RetryCounters`]
//! so load reports and the chaos harness can surface it.
//!
//! With a replicated pair ([`crate::replication`]) the wrapper is also
//! the failover path: [`RetryClient::fleet`] takes every known address,
//! a connect or transport error rotates to the next one, and a standby's
//! `not_primary` refusal redirects straight to the hinted primary. A
//! failover retry is just a reconnect retry — the same sequence numbers
//! dedupe a turn the old primary acknowledged but the client never saw.

use std::collections::HashMap;
use std::io;
use std::thread;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use crate::client::{Client, ClientError};
use crate::json::Json;

/// How hard to retry before giving up.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total tries per request (first attempt included). At least 1.
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles every retry after that.
    pub base_backoff: Duration,
    /// Ceiling on a single backoff sleep (hint or exponential).
    pub max_backoff: Duration,
    /// Read timeout applied to every connection (None = block forever).
    /// A timeout surfaces as a transport error, which reconnects and
    /// retries — sequence numbers make that safe for mutations.
    pub read_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(2),
            read_timeout: Some(Duration::from_secs(10)),
        }
    }
}

/// What the wrapper did on the caller's behalf.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RetryCounters {
    /// Requests re-sent after a retryable failure.
    pub retries: u64,
    /// Connections re-established after losing one.
    pub reconnects: u64,
    /// Acknowledged turns the server absorbed as duplicates
    /// (`deduped:true` replies — proof a retry raced a lost ack).
    pub deduped: u64,
    /// `rate_limited` refusals absorbed by backing off.
    pub rate_limited: u64,
    /// Times the client switched to a different server address — after a
    /// connect/transport error on the active one, or following a
    /// standby's `not_primary` hint.
    pub failovers: u64,
}

/// Server error codes worth retrying: transient refusals that a later
/// attempt can outlive. Everything else (bad requests, discovery
/// errors, unknown sessions) fails fast.
pub(crate) fn retryable(code: &str) -> bool {
    matches!(
        code,
        "overloaded" | "session_limit" | "rate_limited" | "shutting_down"
    )
}

/// A [`Client`] that survives restarts, refusals, lost replies, and —
/// given more than one address — primary failover.
///
/// Connections are opened lazily and re-opened after any transport
/// error; sessions are not connection-bound in this protocol, so a
/// reconnected client keeps addressing the same session ids. After a
/// server restart, [`RetryClient::adopt`] re-synchronises the turn
/// cursor from the recovered journal before sending new mutations.
pub struct RetryClient {
    /// Every server address this client may talk to. `active` indexes
    /// the one currently (or last successfully) used; a `not_primary`
    /// hint naming an unknown address appends it here.
    addrs: Vec<String>,
    active: usize,
    policy: RetryPolicy,
    conn: Option<Client>,
    ever_connected: bool,
    /// Next turn number to send, per session.
    next_seq: HashMap<u64, u64>,
    /// Identity replayed as a `client` handshake on every (re)connection,
    /// so per-client admission accounting survives reconnects.
    client_id: Option<String>,
    counters: RetryCounters,
    /// Consecutive-failure rung driving the exponential backoff. Reset
    /// to 0 by every successful acknowledgement, so an isolated blip
    /// after a long healthy stretch starts the ladder from the base
    /// delay again instead of where the last incident left it.
    ladder: u32,
    rng: u64,
}

impl RetryClient {
    /// Wrap `addr` (e.g. `"127.0.0.1:7071"`) with the default policy.
    /// No connection is made until the first request.
    pub fn new(addr: impl Into<String>) -> RetryClient {
        Self::with_policy(addr, RetryPolicy::default())
    }

    /// Wrap `addr` with an explicit retry policy.
    pub fn with_policy(addr: impl Into<String>, policy: RetryPolicy) -> RetryClient {
        Self::fleet(vec![addr.into()], policy)
    }

    /// Wrap a list of candidate addresses (primary first, standbys
    /// after). Connect and transport errors rotate through the list;
    /// `not_primary` refusals jump straight to the hinted primary.
    pub fn fleet(addrs: Vec<String>, policy: RetryPolicy) -> RetryClient {
        assert!(!addrs.is_empty(), "RetryClient needs at least one address");
        let seed = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0x9e37_79b9)
            | 1;
        RetryClient {
            addrs,
            active: 0,
            policy,
            conn: None,
            ever_connected: false,
            next_seq: HashMap::new(),
            client_id: None,
            counters: RetryCounters::default(),
            ladder: 0,
            rng: seed,
        }
    }

    /// Identify this client for per-client admission accounting. The
    /// handshake is (re)sent on every connection, so the identity
    /// follows the client across reconnects and failovers.
    pub fn identify(&mut self, id: impl Into<String>) {
        self.client_id = Some(id.into());
        // Re-handshake: drop the live connection so the next call dials
        // (and identifies) fresh.
        self.conn = None;
    }

    /// Everything retried, reconnected, deduped, rate-limited, or failed
    /// over so far.
    pub fn counters(&self) -> RetryCounters {
        self.counters
    }

    /// The address currently (or last successfully) connected to.
    pub fn active_addr(&self) -> &str {
        &self.addrs[self.active]
    }

    /// xorshift64* — no `rand` crate; jitter only needs to decorrelate
    /// clients, not be unpredictable.
    fn rng_next(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Sleep for the `attempt`-th rung of the ladder (1-based):
    /// exponential from `base_backoff`, jittered to 50–150%, capped at
    /// `max_backoff`, and never below the server's `retry_after_ms`
    /// hint.
    fn backoff(&mut self, attempt: u32, hint_ms: Option<u64>) -> Duration {
        let base = self.policy.base_backoff.as_millis() as u64;
        let exp = base
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(20))
            .min(self.policy.max_backoff.as_millis() as u64);
        let jittered = exp / 2 + self.rng_next() % exp.max(1);
        let floored = jittered.max(hint_ms.unwrap_or(0));
        Duration::from_millis(
            floored
                .min(self.policy.max_backoff.as_millis() as u64)
                .max(1),
        )
    }

    /// Dial the active address, rotating through the rest of the list on
    /// connect failure. Landing on a different address than last time
    /// (after having been connected at all) is a failover.
    fn connect_once(&mut self) -> Result<(), ClientError> {
        let n = self.addrs.len();
        let mut last_err: Option<ClientError> = None;
        for off in 0..n {
            let idx = (self.active + off) % n;
            let client = match Client::connect(self.addrs[idx].as_str()) {
                Ok(c) => c,
                Err(e) => {
                    last_err = Some(ClientError::Io(e));
                    continue;
                }
            };
            client.set_read_timeout(self.policy.read_timeout)?;
            if self.ever_connected {
                self.counters.reconnects += 1;
                if idx != self.active {
                    self.counters.failovers += 1;
                }
            }
            self.active = idx;
            self.ever_connected = true;
            let mut client = client;
            if let Some(cid) = &self.client_id {
                // Best-effort: a handshake failure surfaces on the real
                // request right after, which retries and re-dials.
                let _ = client.request(&Self::verb(
                    "client",
                    vec![("client", Json::str(cid.as_str()))],
                ));
            }
            self.conn = Some(client);
            return Ok(());
        }
        Err(last_err.unwrap_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "no server address reachable",
            ))
        }))
    }

    /// Point the client at `primary` (appending it to the address list
    /// if unknown) after a `not_primary` refusal named it.
    fn follow_primary_hint(&mut self, primary: &str) {
        let idx = match self.addrs.iter().position(|a| a == primary) {
            Some(i) => i,
            None => {
                self.addrs.push(primary.to_string());
                self.addrs.len() - 1
            }
        };
        if idx != self.active {
            self.active = idx;
            self.counters.failovers += 1;
        }
    }

    /// Send `body`, retrying through refusals, reconnects, and server
    /// restarts up to `max_attempts` times. The *same* body is re-sent
    /// verbatim — for sequenced mutations that is exactly what makes the
    /// retry idempotent.
    pub fn call(&mut self, body: &Json) -> Result<Json, ClientError> {
        let mut attempt: u32 = 0;
        loop {
            let outcome = match self.conn.as_mut() {
                Some(c) => c.request(body),
                None => match self.connect_once() {
                    Ok(()) => self.conn.as_mut().expect("just connected").request(body),
                    Err(e) => Err(e),
                },
            };
            let (err, hint) = match outcome {
                Ok(resp) => {
                    self.ladder = 0;
                    return Ok(resp);
                }
                Err(ClientError::Io(e)) => {
                    // The connection is poisoned mid-exchange; drop it so
                    // the next attempt dials fresh (rotating addresses).
                    self.conn = None;
                    (ClientError::Io(e), None)
                }
                Err(ClientError::Server {
                    code,
                    detail,
                    retry_after_ms,
                    primary,
                }) if code == "not_primary" => {
                    // A standby refused the mutation: follow the hint to
                    // the primary (or rotate blindly without one) and
                    // resend. The sequence number makes the resend safe.
                    self.conn = None;
                    match &primary {
                        Some(p) => {
                            let p = p.clone();
                            self.follow_primary_hint(&p);
                        }
                        None => {
                            let next = (self.active + 1) % self.addrs.len();
                            if next != self.active {
                                self.active = next;
                                self.counters.failovers += 1;
                            }
                        }
                    }
                    (
                        ClientError::Server {
                            code,
                            detail,
                            retry_after_ms,
                            primary,
                        },
                        retry_after_ms,
                    )
                }
                Err(ClientError::Server {
                    code,
                    detail,
                    retry_after_ms,
                    primary,
                }) if retryable(&code) => {
                    if code == "rate_limited" {
                        self.counters.rate_limited += 1;
                    }
                    (
                        ClientError::Server {
                            code,
                            detail,
                            retry_after_ms,
                            primary,
                        },
                        retry_after_ms,
                    )
                }
                Err(e) => return Err(e),
            };
            attempt += 1;
            if attempt >= self.policy.max_attempts.max(1) {
                return Err(err);
            }
            self.counters.retries += 1;
            // The ladder, not the per-call attempt, drives the delay: it
            // accumulates across calls during an incident and resets on
            // the first success.
            self.ladder = self.ladder.saturating_add(1);
            let delay = self.backoff(self.ladder, hint);
            thread::sleep(delay);
        }
    }

    fn verb(op: &str, fields: Vec<(&'static str, Json)>) -> Json {
        let mut members = vec![("op", Json::str(op))];
        members.extend(fields);
        Json::obj(members)
    }

    /// One sequence-numbered mutating turn. The turn number is assigned
    /// from this client's per-session counter and only advances once the
    /// server acknowledges — a turn refused with a non-retryable error
    /// (discovery failure, bad request) did not move the server's cursor
    /// and its number is reused by the next turn. The server upholds its
    /// side of that contract: an op that applies but fails to journal
    /// fail-stops the session rather than leaving the cursor advanced
    /// past a turn recovery cannot replay.
    pub fn turn(
        &mut self,
        session: u64,
        op: &str,
        fields: Vec<(&'static str, Json)>,
    ) -> Result<Json, ClientError> {
        let seq = *self.next_seq.entry(session).or_insert(1);
        let mut members = vec![
            ("session", Json::Int(session as i64)),
            ("seq", Json::Int(seq as i64)),
        ];
        members.extend(fields);
        let resp = self.call(&Self::verb(op, members))?;
        if resp.get("deduped").and_then(Json::as_bool) == Some(true) {
            self.counters.deduped += 1;
        }
        self.next_seq.insert(session, seq + 1);
        Ok(resp)
    }

    /// Open a session (retried; a retry that raced a successful create
    /// may orphan a server-side session, which the idle reaper expires).
    pub fn create(&mut self) -> Result<u64, ClientError> {
        let resp = self.call(&Self::verb("create", vec![]))?;
        let sid = resp
            .get("session")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::BadResponse("create response without session id".into()))?;
        self.next_seq.insert(sid, 1);
        Ok(sid)
    }

    /// Re-adopt a session after a reconnect or server restart: fetch the
    /// server's recovered turn cursor and resume numbering from it.
    /// Returns the cursor (turns the server has already applied).
    pub fn adopt(&mut self, session: u64) -> Result<u64, ClientError> {
        let resp = self.call(&Self::verb(
            "stats",
            vec![("session", Json::Int(session as i64))],
        ))?;
        let cur = resp
            .get("op_seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::BadResponse("session stats without op_seq".into()))?;
        self.next_seq.insert(session, cur + 1);
        Ok(cur)
    }

    /// Sequenced `add_example`.
    pub fn add(&mut self, session: u64, value: &str) -> Result<Json, ClientError> {
        self.turn(session, "add", vec![("value", Json::str(value))])
    }

    /// Sequenced `remove_example`.
    pub fn remove(&mut self, session: u64, value: &str) -> Result<Json, ClientError> {
        self.turn(session, "remove", vec![("value", Json::str(value))])
    }

    /// Sequenced `pin_filter`.
    pub fn pin(&mut self, session: u64, key: &str) -> Result<Json, ClientError> {
        self.turn(session, "pin", vec![("key", Json::str(key))])
    }

    /// The session's current abduced SQL (read-only; no sequence).
    pub fn sql(&mut self, session: u64) -> Result<Option<String>, ClientError> {
        let resp = self.call(&Self::verb(
            "sql",
            vec![("session", Json::Int(session as i64))],
        ))?;
        Ok(resp.get("sql").and_then(Json::as_str).map(str::to_string))
    }

    /// Load/session/journal health probe (never shed by the server).
    pub fn health(&mut self) -> Result<Json, ClientError> {
        self.call(&Self::verb("health", vec![]))
    }

    /// Close a session and drop its turn counter.
    pub fn close(&mut self, session: u64) -> Result<(), ClientError> {
        self.call(&Self::verb(
            "close",
            vec![("session", Json::Int(session as i64))],
        ))?;
        self.next_seq.remove(&session);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    fn quick_policy(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            read_timeout: Some(Duration::from_secs(2)),
        }
    }

    /// A scripted one-connection-at-a-time server: each closure handles
    /// one accepted connection's single request line.
    fn scripted_server(
        scripts: Vec<Box<dyn FnOnce(String) -> Option<String> + Send>>,
    ) -> (String, thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = thread::spawn(move || {
            for script in scripts {
                let (stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut line = String::new();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    continue;
                }
                if let Some(reply) = script(line.trim().to_string()) {
                    let mut stream = stream;
                    stream.write_all(reply.as_bytes()).unwrap();
                    stream.write_all(b"\n").unwrap();
                    // Keep the connection open for a follow-up request.
                    loop {
                        let mut next = String::new();
                        if reader.read_line(&mut next).unwrap_or(0) == 0 {
                            break;
                        }
                        let mut s = stream.try_clone().unwrap();
                        s.write_all(b"{\"ok\":true}\n").unwrap();
                    }
                }
                // None: drop the stream without replying (simulated crash).
            }
        });
        (addr, handle)
    }

    #[test]
    fn backoff_grows_respects_hints_and_caps() {
        let mut c = RetryClient::with_policy("127.0.0.1:1", quick_policy(3));
        // Exponential with 50–150% jitter stays inside those bounds.
        let d1 = c.backoff(1, None);
        assert!(
            d1 >= Duration::from_millis(1) && d1 <= Duration::from_millis(2),
            "{d1:?}"
        );
        // A server hint floors the sleep...
        let hinted = c.backoff(1, Some(4));
        assert!(hinted >= Duration::from_millis(4), "{hinted:?}");
        // ...but never past the cap.
        let capped = c.backoff(1, Some(10_000));
        assert_eq!(capped, Duration::from_millis(5));
        // Large attempt counts must not overflow the shift.
        let late = c.backoff(64, None);
        assert!(late <= Duration::from_millis(5));
    }

    #[test]
    fn retryable_codes_are_the_transient_refusals() {
        for code in [
            "overloaded",
            "session_limit",
            "rate_limited",
            "shutting_down",
        ] {
            assert!(retryable(code), "{code} should be retryable");
        }
        for code in ["bad_request", "unknown_session", "discovery", "unknown"] {
            assert!(!retryable(code), "{code} must fail fast");
        }
    }

    #[test]
    fn a_hinted_refusal_is_retried_and_counted() {
        let (addr, server) = scripted_server(vec![Box::new(|_req| {
            Some(
                "{\"ok\":false,\"error\":{\"code\":\"rate_limited\",\
                 \"detail\":\"over budget\",\"retry_after_ms\":2}}"
                    .to_string(),
            )
        })]);
        let mut c = RetryClient::with_policy(addr, quick_policy(4));
        // The scripted connection answers the refusal, then `ok:true` to
        // every follow-up line on the same connection.
        let resp = c.call(&Json::obj([("op", Json::str("ping"))])).unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(c.counters().retries, 1);
        assert_eq!(c.counters().rate_limited, 1);
        assert_eq!(c.counters().reconnects, 0);
        drop(c);
        server.join().unwrap();
    }

    #[test]
    fn a_severed_connection_reconnects_and_resends() {
        let (addr, server) = scripted_server(vec![
            // First connection: read the request, reply nothing, hang up.
            Box::new(|_req| None),
            // Second connection: acknowledge.
            Box::new(|_req| Some("{\"ok\":true,\"op\":\"ping\"}".to_string())),
        ]);
        let mut c = RetryClient::with_policy(addr, quick_policy(4));
        let resp = c.call(&Json::obj([("op", Json::str("ping"))])).unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(c.counters().reconnects, 1);
        assert_eq!(c.counters().retries, 1);
        drop(c);
        server.join().unwrap();
    }

    #[test]
    fn the_backoff_ladder_resets_after_a_successful_ack() {
        // One refusal, then the same connection acknowledges the resend.
        let (addr, server) = scripted_server(vec![Box::new(|_req| {
            Some(
                "{\"ok\":false,\"error\":{\"code\":\"overloaded\",\
                 \"detail\":\"backlog full\",\"retry_after_ms\":1}}"
                    .to_string(),
            )
        })]);
        let mut c = RetryClient::with_policy(addr, quick_policy(6));
        // Pretend a long incident already climbed the ladder: the success
        // below must reset it, so the *next* incident starts from base.
        c.ladder = 17;
        let resp = c.call(&Json::obj([("op", Json::str("ping"))])).unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(c.ladder, 0, "success must reset the backoff ladder");
        assert_eq!(c.counters().retries, 1);
        drop(c);
        server.join().unwrap();
    }

    #[test]
    fn a_dead_address_fails_over_to_the_next_in_the_fleet() {
        // Reserve a port and close it: connecting there is refused.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let (live, server) = scripted_server(vec![Box::new(|_req| {
            Some("{\"ok\":true,\"op\":\"ping\"}".to_string())
        })]);
        let mut c = RetryClient::fleet(vec![dead, live], quick_policy(4));
        // Simulate an established client losing its primary (a fresh
        // client's first dial is bootstrap, not failover).
        c.ever_connected = true;
        let resp = c.call(&Json::obj([("op", Json::str("ping"))])).unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(c.counters().failovers, 1);
        assert_eq!(c.active, 1, "the live address must become active");
        drop(c);
        server.join().unwrap();
    }

    #[test]
    fn a_not_primary_hint_redirects_to_the_named_primary() {
        let (primary_addr, primary) = scripted_server(vec![Box::new(|_req| {
            Some("{\"ok\":true,\"op\":\"add\"}".to_string())
        })]);
        let hint = primary_addr.clone();
        let (standby_addr, standby) = scripted_server(vec![Box::new(move |_req| {
            Some(format!(
                "{{\"ok\":false,\"error\":{{\"code\":\"not_primary\",\
                 \"detail\":\"standby refuses mutations\",\"primary\":\"{hint}\"}}}}"
            ))
        })]);
        // The client only knows the standby; the hint teaches it the
        // primary and the retried turn lands there.
        let mut c = RetryClient::fleet(vec![standby_addr], quick_policy(4));
        let resp = c.add(7, "Jim Carrey").unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(c.counters().failovers, 1);
        assert_eq!(c.active_addr(), primary_addr);
        assert_eq!(c.addrs.len(), 2, "the hinted primary joins the fleet");
        drop(c);
        primary.join().unwrap();
        standby.join().unwrap();
    }

    #[test]
    fn turn_numbers_advance_only_on_acknowledgement() {
        let (addr, server) = scripted_server(vec![Box::new(|req| {
            // The first turn must carry seq 1.
            assert!(req.contains("\"seq\":1"), "missing seq in {req}");
            Some("{\"ok\":true,\"op\":\"add\",\"deduped\":true}".to_string())
        })]);
        let mut c = RetryClient::with_policy(addr, quick_policy(2));
        c.add(7, "Jim Carrey").unwrap();
        assert_eq!(c.counters().deduped, 1);
        assert_eq!(*c.next_seq.get(&7).unwrap(), 2);
        drop(c);
        server.join().unwrap();
    }
}
