//! The newline-delimited JSON serving protocol.
//!
//! One request per line, one response per line, always in order. Every
//! verb maps 1:1 onto the [`squid_core`] session API — the server never
//! invents work a [`squid_core::SquidSession`] would not do, which is what
//! keeps a network turn priced like a [`squid_core::DiscoveryDelta`], not
//! a full rediscovery.
//!
//! ## Grammar
//!
//! ```text
//! request  := { "op": <verb>, ...args, "id"?: int }
//! response := { "ok": true, "op": <verb>, "id"?: int, ...result }
//!           | { "ok": false, "id"?: int,
//!               "error": { "code": <code>, "detail": string } }
//! ```
//!
//! Verbs and their arguments (`session` is the id from `create`):
//!
//! | verb       | arguments                          | session API          |
//! |------------|------------------------------------|----------------------|
//! | `ping`     |                                    | —                    |
//! | `create`   |                                    | `create_session`     |
//! | `add`      | `session`, `value`                 | `add_example`        |
//! | `remove`   | `session`, `value`                 | `remove_example`     |
//! | `target`   | `session`, `table`, `column`       | `set_target`         |
//! | `auto`     | `session`                          | `set_target_auto`    |
//! | `pin`      | `session`, `key`                   | `pin_filter`         |
//! | `ban`      | `session`, `key`                   | `ban_filter`         |
//! | `unpin`    | `session`, `key`                   | `unpin_filter`       |
//! | `unban`    | `session`, `key`                   | `unban_filter`       |
//! | `choose`   | `session`, `example`, `pk`         | `choose_entity`      |
//! | `unchoose` | `session`, `example`               | `clear_choice`       |
//! | `suggest`  | `session`, `k`?                    | `suggest`            |
//! | `sql`      | `session`                          | `discovery().sql()`  |
//! | `rows`     | `session`, `limit`?                | `discovery().rows`   |
//! | `examples` | `session`                          | `examples`           |
//! | `stats`    | `session`?                         | fleet + cache stats  |
//! | `health`   |                                    | load/journal health  |
//! | `close`    | `session`                          | `close_session`      |
//! | `shutdown` |                                    | graceful stop        |
//! | `client`   | `client`                           | admission identity   |
//! | `promote`  |                                    | standby → primary    |
//!
//! `client` binds an admission identity to the connection: subsequent
//! requests are rate-limited and counted per client in addition to per
//! session (`stats`/`health` surface the per-client counters). `promote`
//! flips a replication standby into a primary; on a node that is already
//! primary it is an acknowledged no-op. A standby refuses every mutating
//! verb with `not_primary`, whose `error` object carries the primary's
//! client address under `"primary"` — the failover hint retrying clients
//! follow.
//!
//! Mutating verbs additionally accept an optional `seq` member: the
//! client's per-session turn number (1-based, contiguous). A replayed
//! `seq` the server has already applied is acknowledged without re-running
//! (the response carries `"deduped":true`), which upgrades at-least-once
//! retries to exactly-once application; a `seq` beyond the next expected
//! turn is a `bad_request` (the client claims turns the server never saw).
//!
//! Error codes are machine-stable strings ([`ErrorCode`]); a protocol
//! error is a *response*, never a dropped connection — except the two
//! framing errors (`line_too_long`, `invalid_utf8`) after which the byte
//! stream can no longer be trusted, so the server replies and closes.
//! Back-pressure codes (`overloaded`, `session_limit`, `rate_limited`)
//! carry a `retry_after_ms` hint next to `detail` — the server's estimate
//! of when retrying will succeed.

use crate::json::{self, Json};

/// Mutating verbs translate to this (journaled) operation type.
pub use squid_core::SessionOp;

/// One decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen request id, echoed verbatim in the response.
    pub id: Option<i64>,
    /// The decoded verb and arguments.
    pub verb: Verb,
}

/// Every protocol verb (see the module docs for the grammar).
#[derive(Debug, Clone, PartialEq)]
pub enum Verb {
    /// Liveness probe.
    Ping,
    /// Open a session.
    Create,
    /// A session-mutating verb, mapped straight onto a journaled
    /// [`SessionOp`] (`add`/`remove`/`target`/`auto`/`pin`/`ban`/
    /// `unpin`/`unban`/`choose`/`unchoose`).
    Apply {
        /// Target session.
        session: u64,
        /// The operation.
        op: SessionOp,
        /// The client's per-session turn number, when it opted into
        /// exactly-once dedupe (see the module docs).
        seq: Option<u64>,
    },
    /// `k` most informative next examples.
    Suggest {
        /// Target session.
        session: u64,
        /// How many suggestions (default 3).
        k: usize,
    },
    /// The abduced SQL of the current discovery.
    Sql {
        /// Target session.
        session: u64,
    },
    /// Result tuples of the current discovery.
    Rows {
        /// Target session.
        session: u64,
        /// Maximum tuples returned (default 10).
        limit: usize,
    },
    /// The session's example list.
    Examples {
        /// Target session.
        session: u64,
    },
    /// Fleet and cache statistics (plus per-session counters when a
    /// session id is given).
    Stats {
        /// Optional session whose local cache counters to include.
        session: Option<u64>,
    },
    /// Cheap load/session/journal health probe for orchestrators and
    /// load balancers (never sheds, never touches a session).
    Health,
    /// Close a session (journaled).
    Close {
        /// Target session.
        session: u64,
    },
    /// Ask the server to shut down gracefully.
    Shutdown,
    /// Bind an admission identity to this connection.
    Client {
        /// The caller-chosen client id.
        id: String,
    },
    /// Flip a replication standby into a primary (no-op when already
    /// primary).
    Promote,
}

impl Verb {
    /// The wire name of this verb (the `op` member of its response).
    pub fn name(&self) -> &'static str {
        match self {
            Verb::Ping => "ping",
            Verb::Create => "create",
            Verb::Apply { op, .. } => match op {
                SessionOp::AddExample(_) => "add",
                SessionOp::RemoveExample(_) => "remove",
                SessionOp::SetTarget { .. } => "target",
                SessionOp::SetTargetAuto => "auto",
                SessionOp::PinFilter(_) => "pin",
                SessionOp::BanFilter(_) => "ban",
                SessionOp::UnpinFilter(_) => "unpin",
                SessionOp::UnbanFilter(_) => "unban",
                SessionOp::ChooseEntity { .. } => "choose",
                SessionOp::ClearChoice(_) => "unchoose",
                SessionOp::Create | SessionOp::End => "apply",
            },
            Verb::Suggest { .. } => "suggest",
            Verb::Sql { .. } => "sql",
            Verb::Rows { .. } => "rows",
            Verb::Examples { .. } => "examples",
            Verb::Stats { .. } => "stats",
            Verb::Health => "health",
            Verb::Close { .. } => "close",
            Verb::Shutdown => "shutdown",
            Verb::Client { .. } => "client",
            Verb::Promote => "promote",
        }
    }
}

/// Machine-stable error codes carried in `error.code`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    BadJson,
    /// The JSON was well-formed but not a valid request (missing or
    /// ill-typed fields).
    BadRequest,
    /// The `op` member named no known verb.
    UnknownVerb,
    /// Request line exceeded the configured maximum (connection closes).
    LineTooLong,
    /// Request bytes were not UTF-8 (connection closes).
    InvalidUtf8,
    /// The session id is unknown, closed, or expired.
    UnknownSession,
    /// Admission control refused the work (connection backlog full, or a
    /// cheap verb shed under load); retry later or against another
    /// replica.
    Overloaded,
    /// The fleet-wide session cap is reached; `create` will succeed once
    /// a session closes or expires.
    SessionLimit,
    /// The session exceeded its per-session token-bucket rate limit;
    /// retry after the hinted delay.
    RateLimited,
    /// The server is draining; no new work is accepted.
    ShuttingDown,
    /// The connection sat idle past the reaping deadline (closes).
    IdleTimeout,
    /// This node is a replication standby: reads are served, mutations
    /// must go to the primary named in the error's `primary` member.
    NotPrimary,
    /// The operation itself failed (discovery-level error, e.g. an
    /// example matching nothing); the session rolled back and is intact.
    Discovery,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownVerb => "unknown_verb",
            ErrorCode::LineTooLong => "line_too_long",
            ErrorCode::InvalidUtf8 => "invalid_utf8",
            ErrorCode::UnknownSession => "unknown_session",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::SessionLimit => "session_limit",
            ErrorCode::RateLimited => "rate_limited",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::IdleTimeout => "idle_timeout",
            ErrorCode::NotPrimary => "not_primary",
            ErrorCode::Discovery => "discovery",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A request that could not be decoded (the response still goes out).
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError {
    /// The stable error code.
    pub code: ErrorCode,
    /// Human-readable description.
    pub detail: String,
    /// The request id, when one could be salvaged from the line.
    pub id: Option<i64>,
}

impl ProtocolError {
    fn new(code: ErrorCode, detail: impl Into<String>, id: Option<i64>) -> ProtocolError {
        ProtocolError {
            code,
            detail: detail.into(),
            id,
        }
    }
}

/// Decode one request line.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let v = json::parse(line)
        .map_err(|e| ProtocolError::new(ErrorCode::BadJson, e.to_string(), None))?;
    let id = v.get("id").and_then(Json::as_i64);
    let bad = |detail: &str| ProtocolError::new(ErrorCode::BadRequest, detail, id);
    if !matches!(v, Json::Obj(_)) {
        return Err(bad("request must be a JSON object"));
    }
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing string member \"op\""))?;
    let session = || {
        v.get("session")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing non-negative integer member \"session\""))
    };
    let string = |key: &'static str| {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| bad(&format!("missing string member {key:?}")))
    };
    // Optional per-session turn number on mutating verbs (module docs).
    let seq = v.get("seq").and_then(Json::as_u64);
    let verb = match op {
        "ping" => Verb::Ping,
        "create" => Verb::Create,
        "add" => Verb::Apply {
            session: session()?,
            seq,
            op: SessionOp::AddExample(string("value")?),
        },
        "remove" => Verb::Apply {
            session: session()?,
            seq,
            op: SessionOp::RemoveExample(string("value")?),
        },
        "target" => Verb::Apply {
            session: session()?,
            seq,
            op: SessionOp::SetTarget {
                table: string("table")?,
                column: string("column")?,
            },
        },
        "auto" => Verb::Apply {
            session: session()?,
            seq,
            op: SessionOp::SetTargetAuto,
        },
        "pin" => Verb::Apply {
            session: session()?,
            seq,
            op: SessionOp::PinFilter(string("key")?),
        },
        "ban" => Verb::Apply {
            session: session()?,
            seq,
            op: SessionOp::BanFilter(string("key")?),
        },
        "unpin" => Verb::Apply {
            session: session()?,
            seq,
            op: SessionOp::UnpinFilter(string("key")?),
        },
        "unban" => Verb::Apply {
            session: session()?,
            seq,
            op: SessionOp::UnbanFilter(string("key")?),
        },
        "choose" => Verb::Apply {
            session: session()?,
            seq,
            op: SessionOp::ChooseEntity {
                example: string("example")?,
                pk: v
                    .get("pk")
                    .and_then(Json::as_i64)
                    .ok_or_else(|| bad("missing integer member \"pk\""))?,
            },
        },
        "unchoose" => Verb::Apply {
            session: session()?,
            seq,
            op: SessionOp::ClearChoice(string("example")?),
        },
        "suggest" => Verb::Suggest {
            session: session()?,
            k: v.get("k").and_then(Json::as_u64).unwrap_or(3) as usize,
        },
        "sql" => Verb::Sql {
            session: session()?,
        },
        "rows" => Verb::Rows {
            session: session()?,
            limit: v.get("limit").and_then(Json::as_u64).unwrap_or(10) as usize,
        },
        "examples" => Verb::Examples {
            session: session()?,
        },
        "stats" => Verb::Stats {
            session: v.get("session").and_then(Json::as_u64),
        },
        "close" => Verb::Close {
            session: session()?,
        },
        "health" => Verb::Health,
        "shutdown" => Verb::Shutdown,
        "client" => Verb::Client {
            id: string("client")?,
        },
        "promote" => Verb::Promote,
        other => {
            return Err(ProtocolError::new(
                ErrorCode::UnknownVerb,
                format!("unknown verb {other:?}"),
                id,
            ))
        }
    };
    Ok(Request { id, verb })
}

/// Build a success response: `{"ok":true,"op":...,"id"?,...fields}`.
pub fn ok_response(op: &str, id: Option<i64>, fields: Vec<(String, Json)>) -> Json {
    let mut members = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("op".to_string(), Json::str(op)),
    ];
    if let Some(id) = id {
        members.push(("id".to_string(), Json::Int(id)));
    }
    members.extend(fields);
    Json::Obj(members)
}

/// Build an error response: `{"ok":false,"id"?,"error":{...}}`.
pub fn error_response(code: ErrorCode, detail: &str, id: Option<i64>) -> Json {
    let mut members = vec![("ok".to_string(), Json::Bool(false))];
    if let Some(id) = id {
        members.push(("id".to_string(), Json::Int(id)));
    }
    members.push((
        "error".to_string(),
        Json::obj([
            ("code", Json::str(code.as_str())),
            ("detail", Json::str(detail)),
        ]),
    ));
    Json::Obj(members)
}

/// Build a back-pressure error response whose `error` member carries a
/// `retry_after_ms` hint — the server's estimate of when retrying will
/// succeed (`overloaded`, `session_limit`, `rate_limited`).
pub fn retry_error_response(
    code: ErrorCode,
    detail: &str,
    id: Option<i64>,
    retry_after_ms: u64,
) -> Json {
    let mut members = vec![("ok".to_string(), Json::Bool(false))];
    if let Some(id) = id {
        members.push(("id".to_string(), Json::Int(id)));
    }
    members.push((
        "error".to_string(),
        Json::obj([
            ("code", Json::str(code.as_str())),
            ("detail", Json::str(detail)),
            ("retry_after_ms", Json::Int(retry_after_ms as i64)),
        ]),
    ));
    Json::Obj(members)
}

/// Build a standby's mutation refusal: `not_primary`, with the primary's
/// client address under `error.primary` so a failover-aware client can
/// redirect without re-resolving the topology out of band.
pub fn not_primary_response(detail: &str, id: Option<i64>, primary: Option<&str>) -> Json {
    let mut members = vec![("ok".to_string(), Json::Bool(false))];
    if let Some(id) = id {
        members.push(("id".to_string(), Json::Int(id)));
    }
    let mut error = vec![
        ("code", Json::str(ErrorCode::NotPrimary.as_str())),
        ("detail", Json::str(detail)),
    ];
    if let Some(primary) = primary {
        error.push(("primary", Json::str(primary)));
    }
    members.push(("error".to_string(), Json::obj(error)));
    Json::Obj(members)
}

impl From<&ProtocolError> for Json {
    fn from(e: &ProtocolError) -> Json {
        error_response(e.code, &e.detail, e.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        let cases = [
            (r#"{"op":"ping"}"#, Verb::Ping),
            (r#"{"op":"create"}"#, Verb::Create),
            (
                r#"{"op":"add","session":3,"value":"Jim Carrey"}"#,
                Verb::Apply {
                    session: 3,
                    seq: None,
                    op: SessionOp::AddExample("Jim Carrey".into()),
                },
            ),
            (
                r#"{"op":"target","session":1,"table":"person","column":"name"}"#,
                Verb::Apply {
                    session: 1,
                    seq: None,
                    op: SessionOp::SetTarget {
                        table: "person".into(),
                        column: "name".into(),
                    },
                },
            ),
            (
                r#"{"op":"choose","session":1,"example":"Titanic","pk":-7}"#,
                Verb::Apply {
                    session: 1,
                    seq: None,
                    op: SessionOp::ChooseEntity {
                        example: "Titanic".into(),
                        pk: -7,
                    },
                },
            ),
            (
                r#"{"op":"suggest","session":2}"#,
                Verb::Suggest { session: 2, k: 3 },
            ),
            (
                r#"{"op":"rows","session":2,"limit":5}"#,
                Verb::Rows {
                    session: 2,
                    limit: 5,
                },
            ),
            (r#"{"op":"health"}"#, Verb::Health),
            (
                r#"{"op":"add","session":3,"value":"Jim Carrey","seq":7}"#,
                Verb::Apply {
                    session: 3,
                    seq: Some(7),
                    op: SessionOp::AddExample("Jim Carrey".into()),
                },
            ),
            (r#"{"op":"stats"}"#, Verb::Stats { session: None }),
            (
                r#"{"op":"stats","session":9}"#,
                Verb::Stats { session: Some(9) },
            ),
            (r#"{"op":"close","session":4}"#, Verb::Close { session: 4 }),
            (r#"{"op":"shutdown"}"#, Verb::Shutdown),
            (
                r#"{"op":"client","client":"loader-3"}"#,
                Verb::Client {
                    id: "loader-3".into(),
                },
            ),
            (r#"{"op":"promote"}"#, Verb::Promote),
        ];
        for (line, want) in cases {
            let req = parse_request(line).unwrap_or_else(|e| panic!("{line}: {e:?}"));
            assert_eq!(req.verb, want, "{line}");
        }
    }

    #[test]
    fn request_id_is_salvaged_into_errors() {
        let req = parse_request(r#"{"op":"sql","session":1,"id":77}"#).unwrap();
        assert_eq!(req.id, Some(77));
        let err = parse_request(r#"{"op":"sql","id":78}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert_eq!(err.id, Some(78));
        let err = parse_request(r#"{"op":"frobnicate","id":79}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownVerb);
        assert_eq!(err.id, Some(79));
    }

    #[test]
    fn malformed_requests_error_with_stable_codes() {
        assert_eq!(
            parse_request("not json").unwrap_err().code,
            ErrorCode::BadJson
        );
        assert_eq!(
            parse_request("[1,2]").unwrap_err().code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            parse_request(r#"{"noop":true}"#).unwrap_err().code,
            ErrorCode::BadRequest
        );
        // Ill-typed session (string instead of int).
        assert_eq!(
            parse_request(r#"{"op":"sql","session":"three"}"#)
                .unwrap_err()
                .code,
            ErrorCode::BadRequest
        );
        // Negative session ids are ill-typed, not a lookup miss.
        assert_eq!(
            parse_request(r#"{"op":"sql","session":-4}"#)
                .unwrap_err()
                .code,
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn responses_render_deterministically() {
        let ok = ok_response("add", Some(5), vec![("rows".into(), Json::Int(12))]);
        assert_eq!(ok.encode(), r#"{"ok":true,"op":"add","id":5,"rows":12}"#);
        let err = error_response(
            ErrorCode::UnknownSession,
            "unknown or expired session 9",
            None,
        );
        assert_eq!(
            err.encode(),
            r#"{"ok":false,"error":{"code":"unknown_session","detail":"unknown or expired session 9"}}"#
        );
    }

    #[test]
    fn backpressure_errors_carry_a_retry_hint() {
        let err = retry_error_response(ErrorCode::RateLimited, "session 4 over budget", None, 250);
        assert_eq!(
            err.encode(),
            r#"{"ok":false,"error":{"code":"rate_limited","detail":"session 4 over budget","retry_after_ms":250}}"#
        );
        assert_eq!(ErrorCode::SessionLimit.as_str(), "session_limit");
        assert_eq!(ErrorCode::RateLimited.as_str(), "rate_limited");
    }

    #[test]
    fn not_primary_carries_the_failover_hint() {
        let err = not_primary_response("standby refuses mutations", Some(3), Some("10.0.0.1:7500"));
        assert_eq!(
            err.encode(),
            r#"{"ok":false,"id":3,"error":{"code":"not_primary","detail":"standby refuses mutations","primary":"10.0.0.1:7500"}}"#
        );
        // A standby that has not yet learned its primary's client address
        // still refuses with the stable code, just without the hint.
        let bare = not_primary_response("standby refuses mutations", None, None);
        assert!(bare.encode().contains(r#""code":"not_primary""#));
        assert!(!bare.encode().contains("primary\":"));
    }
}
