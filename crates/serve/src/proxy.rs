//! A std-only fault-injecting TCP proxy for chaos tests.
//!
//! [`FaultProxy`] sits between a client and a `squid-serve` listener and
//! perturbs the lock-step line protocol in the ways real networks do:
//! delayed replies, swallowed replies, replies cut off mid-line, and
//! connections severed outright. Faults are scripted, not random — a
//! test enqueues an exact sequence of [`FaultRule`]s and every exchange
//! consumes the next one (pass-through once the script runs dry), so a
//! failure reproduces byte-for-byte.
//!
//! The proxy understands just enough of the protocol to be useful: one
//! request line in, one response line out. That is what lets `Truncate`
//! cut a record mid-line and `DropReply` swallow exactly one
//! acknowledgement — the ambiguous-outcome cases the retry layer
//! ([`crate::retry`]) exists to survive.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// One scripted perturbation, applied to a single request/response
/// exchange.
#[derive(Debug, Clone, Copy)]
pub enum FaultRule {
    /// Forward the exchange untouched.
    Pass,
    /// Forward the request, then hold the reply for this long before
    /// delivering it (drives clients past read timeouts and sessions
    /// past idle deadlines).
    Delay(Duration),
    /// Forward the request, read the reply, and swallow it — the server
    /// applied the turn but the client never hears so (the lost-ack
    /// case; the connection stays up and times out client-side).
    DropReply,
    /// Forward the request, then deliver only the first half of the
    /// reply line — no newline — and sever both directions (a reply torn
    /// mid-record).
    Truncate,
    /// Sever both directions without even forwarding the request.
    Sever,
}

/// A running proxy. Dropping it (or calling [`FaultProxy::stop`]) shuts
/// the listener down; established connections are severed.
pub struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    faults: Arc<AtomicU64>,
    handle: Option<thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Listen on an ephemeral localhost port, forwarding to `upstream`.
    /// `script` is consumed one rule per exchange, shared across all
    /// connections in arrival order.
    pub fn start(upstream: SocketAddr, script: Vec<FaultRule>) -> io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let faults = Arc::new(AtomicU64::new(0));
        let script = Arc::new(Mutex::new(VecDeque::from(script)));
        let accept_stop = Arc::clone(&stop);
        let accept_faults = Arc::clone(&faults);
        let handle = thread::spawn(move || {
            let mut conns = vec![];
            while !accept_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let script = Arc::clone(&script);
                        let stop = Arc::clone(&accept_stop);
                        let faults = Arc::clone(&accept_faults);
                        conns.push(thread::spawn(move || {
                            let _ = shuttle(stream, upstream, &script, &stop, &faults);
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for c in conns {
                let _ = c.join();
            }
        });
        Ok(FaultProxy {
            addr,
            stop,
            faults,
            handle: Some(handle),
        })
    }

    /// Where clients should connect.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many non-`Pass` rules have been injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Stop accepting and join the proxy threads.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Pump one client connection's lock-step exchanges through the fault
/// script. Returns on EOF from either side, a sever rule, or shutdown.
fn shuttle(
    client: TcpStream,
    upstream: SocketAddr,
    script: &Mutex<VecDeque<FaultRule>>,
    stop: &AtomicBool,
    faults: &AtomicU64,
) -> io::Result<()> {
    client.set_nodelay(true)?;
    // Poll the client side so a stopped proxy doesn't hang in read_line.
    client.set_read_timeout(Some(Duration::from_millis(50)))?;
    let server = TcpStream::connect(upstream)?;
    server.set_nodelay(true)?;
    let mut client_w = client.try_clone()?;
    let mut server_w = server.try_clone()?;
    let mut client_r = BufReader::new(client);
    let mut server_r = BufReader::new(server);
    loop {
        let mut request = String::new();
        match client_r.read_line(&mut request) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::Relaxed) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let rule = script
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop_front()
            .unwrap_or(FaultRule::Pass);
        if !matches!(rule, FaultRule::Pass) {
            faults.fetch_add(1, Ordering::Relaxed);
        }
        if let FaultRule::Sever = rule {
            return Ok(());
        }
        server_w.write_all(request.as_bytes())?;
        let mut reply = String::new();
        if server_r.read_line(&mut reply)? == 0 {
            return Ok(());
        }
        match rule {
            FaultRule::Pass | FaultRule::Sever => {
                client_w.write_all(reply.as_bytes())?;
            }
            FaultRule::Delay(d) => {
                thread::sleep(d);
                client_w.write_all(reply.as_bytes())?;
            }
            FaultRule::DropReply => {
                // Swallowed: the server applied it, the client will
                // retry with the same sequence number.
            }
            FaultRule::Truncate => {
                let torn = &reply.as_bytes()[..reply.len() / 2];
                client_w.write_all(torn)?;
                client_w.flush()?;
                return Ok(());
            }
        }
        client_w.flush()?;
    }
}
