//! Load generator: N concurrent client threads replaying session scripts
//! over real sockets, measuring what the serving path actually costs.
//!
//! Each client thread opens one connection and replays
//! `sessions_per_client` sessions of the given script (`create`, the
//! scripted turns, `close`), timing every request round trip. The merged
//! timings produce sessions/sec, turns/sec, and p50/p95/p99 turn latency
//! — the numbers `BENCH_squid.json` records for the serving trajectory
//! (`cargo bench -p squid-bench --bench serving`).

use std::io;
use std::net::ToSocketAddrs;
use std::time::{Duration, Instant};

use crate::client::ClientError;
use crate::json::Json;
use crate::retry::{RetryClient, RetryCounters, RetryPolicy};

/// One scripted turn of a load session.
#[derive(Debug, Clone)]
pub enum LoadTurn {
    /// `add` an example value.
    Add(String),
    /// `remove` an example value.
    Remove(String),
    /// `pin` a filter key.
    Pin(String),
    /// `unpin` a filter key.
    Unpin(String),
    /// `suggest` k next examples.
    Suggest(usize),
    /// Fetch the current SQL.
    Sql,
    /// Fetch up to n result rows.
    Rows(usize),
}

/// Load shape: `clients` threads × `sessions_per_client` sessions ×
/// `script` turns each.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client threads (each with its own connection).
    pub clients: usize,
    /// Sessions each client replays, one after another.
    pub sessions_per_client: usize,
    /// The turns of every session.
    pub script: Vec<LoadTurn>,
}

/// Aggregated result of a load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Sessions completed (create → turns → close).
    pub sessions: u64,
    /// Scripted turns completed.
    pub turns: u64,
    /// Requests that came back `ok:false` or failed transport-level.
    pub errors: u64,
    /// Wall-clock of the whole run (slowest client).
    pub wall: Duration,
    /// Mean turn round-trip latency.
    pub turn_mean: Duration,
    /// Median turn round-trip latency.
    pub turn_p50: Duration,
    /// 95th-percentile turn latency.
    pub turn_p95: Duration,
    /// 99th-percentile turn latency.
    pub turn_p99: Duration,
    /// Retry work the clients absorbed (retries, reconnects, deduped
    /// turns, rate-limited replies) — zero across the board on a healthy
    /// unthrottled server.
    pub retry: RetryCounters,
}

impl LoadReport {
    /// Completed sessions per wall-clock second.
    pub fn sessions_per_sec(&self) -> f64 {
        per_sec(self.sessions, self.wall)
    }

    /// Completed turns per wall-clock second.
    pub fn turns_per_sec(&self) -> f64 {
        per_sec(self.turns, self.wall)
    }

    /// One-line human rendering.
    pub fn summary(&self) -> String {
        format!(
            "{} sessions, {} turns, {} errors in {:.2?} \
             ({:.1} sessions/s, {:.1} turns/s; turn p50 {:?} p95 {:?} p99 {:?}; \
             retries {} reconnects {} deduped {} rate_limited {} failovers {})",
            self.sessions,
            self.turns,
            self.errors,
            self.wall,
            self.sessions_per_sec(),
            self.turns_per_sec(),
            self.turn_p50,
            self.turn_p95,
            self.turn_p99,
            self.retry.retries,
            self.retry.reconnects,
            self.retry.deduped,
            self.retry.rate_limited,
            self.retry.failovers,
        )
    }
}

fn per_sec(n: u64, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        n as f64 / secs
    } else {
        0.0
    }
}

struct ClientOutcome {
    sessions: u64,
    turns: u64,
    errors: u64,
    latencies_ns: Vec<u64>,
    retry: RetryCounters,
}

/// Run one load shape against a server; returns the merged report.
/// Client threads count protocol errors instead of aborting, so a report
/// with `errors == 0` is positive evidence the server held up.
pub fn run_load(addr: impl ToSocketAddrs, cfg: &LoadConfig) -> io::Result<LoadReport> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
    run_load_fleet(&[addr.to_string()], cfg)
}

/// Like [`run_load`], but every client knows the whole fleet: a connect
/// or transport error on the active address fails over to the next, and
/// a standby's `not_primary` hint redirects mid-run — so the load keeps
/// flowing across a promotion, with the work counted in
/// [`RetryCounters::failovers`].
pub fn run_load_fleet(addrs: &[String], cfg: &LoadConfig) -> io::Result<LoadReport> {
    if addrs.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "no server addresses",
        ));
    }
    let started = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients.max(1))
            .map(|_| scope.spawn(move || run_client(addrs, cfg)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load client thread panicked"))
            .collect()
    });
    let wall = started.elapsed();
    let mut report = LoadReport {
        wall,
        ..LoadReport::default()
    };
    let mut latencies: Vec<u64> = Vec::new();
    for o in outcomes {
        report.sessions += o.sessions;
        report.turns += o.turns;
        report.errors += o.errors;
        report.retry.retries += o.retry.retries;
        report.retry.reconnects += o.retry.reconnects;
        report.retry.deduped += o.retry.deduped;
        report.retry.rate_limited += o.retry.rate_limited;
        report.retry.failovers += o.retry.failovers;
        latencies.extend(o.latencies_ns);
    }
    if !latencies.is_empty() {
        latencies.sort_unstable();
        let sum: u64 = latencies.iter().sum();
        report.turn_mean = Duration::from_nanos(sum / latencies.len() as u64);
        report.turn_p50 = Duration::from_nanos(percentile(&latencies, 50.0));
        report.turn_p95 = Duration::from_nanos(percentile(&latencies, 95.0));
        report.turn_p99 = Duration::from_nanos(percentile(&latencies, 99.0));
    }
    Ok(report)
}

/// Nearest-rank percentile over sorted samples.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn run_client(addrs: &[String], cfg: &LoadConfig) -> ClientOutcome {
    let mut out = ClientOutcome {
        sessions: 0,
        turns: 0,
        errors: 0,
        latencies_ns: Vec::with_capacity(cfg.sessions_per_client * cfg.script.len()),
        retry: RetryCounters::default(),
    };
    // Back-pressure-aware clients: a shed or rate-limited turn backs off
    // and retries inside the timed window (honest latency accounting — a
    // refused-then-retried turn costs what the caller actually waited),
    // and a dropped connection re-dials instead of abandoning the run.
    let mut client = RetryClient::fleet(
        addrs.to_vec(),
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
            read_timeout: Some(Duration::from_secs(10)),
        },
    );
    for _ in 0..cfg.sessions_per_client {
        let sid = match client.create() {
            Ok(sid) => sid,
            Err(_) => {
                out.errors += 1;
                out.retry = client.counters();
                continue;
            }
        };
        let mut session_ok = true;
        for turn in &cfg.script {
            let t = Instant::now();
            let result = play_turn(&mut client, sid, turn);
            let elapsed = t.elapsed().as_nanos() as u64;
            match result {
                Ok(()) => {
                    out.turns += 1;
                    out.latencies_ns.push(elapsed);
                }
                Err(_) => {
                    out.errors += 1;
                    session_ok = false;
                }
            }
        }
        if client.close(sid).is_ok() {
            if session_ok {
                out.sessions += 1;
            }
        } else {
            out.errors += 1;
        }
    }
    out.retry = client.counters();
    out
}

fn play_turn(client: &mut RetryClient, sid: u64, turn: &LoadTurn) -> Result<(), ClientError> {
    match turn {
        LoadTurn::Add(v) => client.add(sid, v).map(|_| ()),
        LoadTurn::Remove(v) => client.remove(sid, v).map(|_| ()),
        LoadTurn::Pin(k) => client.pin(sid, k).map(|_| ()),
        LoadTurn::Unpin(k) => client
            .turn(sid, "unpin", vec![("key", Json::str(k.as_str()))])
            .map(|_| ()),
        LoadTurn::Suggest(k) => client
            .call(&Json::obj([
                ("op", Json::str("suggest")),
                ("session", Json::Int(sid as i64)),
                ("k", Json::Int(*k as i64)),
            ]))
            .map(|_| ()),
        LoadTurn::Sql => client.sql(sid).map(|_| ()),
        LoadTurn::Rows(n) => client
            .call(&Json::obj([
                ("op", Json::str("rows")),
                ("session", Json::Int(sid as i64)),
                ("limit", Json::Int(*n as i64)),
            ]))
            .map(|_| ()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&xs, 50.0), 50);
        assert_eq!(percentile(&xs, 95.0), 95);
        assert_eq!(percentile(&xs, 99.0), 99);
        assert_eq!(percentile(&xs, 100.0), 100);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[7], 99.0), 7);
    }
}
