//! Warm-standby replication: journal streaming between two squid-serve
//! nodes over a second listener.
//!
//! ## Topology
//!
//! One primary, one standby, no quorum. The primary owns the journal
//! (the total order of session ops that PR 6 made the durable source of
//! truth); the standby mirrors it by replaying the same records through
//! [`SessionManager::apply_replicated`], so its in-memory fleet is the
//! deterministic function of the same history the primary's is.
//!
//! ```text
//!   clients ──> primary ──(serve addr)        standby serves reads,
//!                  │                          refuses writes with
//!                  │ journal bytes            not_primary + hint
//!                  ▼
//!            [repl listener] ──TCP──> [standby link] ──> apply_replicated
//!                  ▲    snapshot ▸ stream ▸ acks              │
//!                  └── lag (records+bytes) <── ACK ───────────┘
//! ```
//!
//! ## Wire protocol
//!
//! Length-prefixed binary frames (`tag u8 | len u32 LE | payload`), four
//! of which matter:
//!
//! - `HELLO` (standby → primary): magic + whether the standby wants an
//!   αDB snapshot bootstrap before the journal stream.
//! - `ADB` (primary → standby): the PR 6 single-file αDB snapshot,
//!   streamed straight off [`squid_adb::ADb::save_snapshot_to`] — a
//!   standby can boot with no local dataset build at all.
//! - `SNAP` (primary → standby): the journal epoch, the primary's client
//!   address (the `not_primary` hint), and the *entire current journal*.
//!   Sent on connect and again whenever compaction bumps the journal
//!   epoch ([`squid_core::JournalStats::epoch`]) — byte offsets are only
//!   meaningful within one epoch, so an epoch change re-snapshots the
//!   stream.
//! - `RECS` (primary → standby): raw journal record bytes appended since
//!   the last frame, shipped verbatim (the standby re-runs the same
//!   length/CRC scan recovery uses). Acknowledged by `ACK` frames
//!   carrying the standby's applied byte offset and record count, from
//!   which the primary computes replication lag.
//!
//! The stream is lock-step (one outstanding frame), which makes lag
//! accounting exact and keeps the protocol trivially correct; journal
//! append rates are bounded by discovery work, not by this link.
//!
//! ## Split-brain stance
//!
//! Promotion is manual (the `promote` verb or SIGUSR1) — there is no
//! quorum, no lease, and no automatic failover decision. The operator
//! (or the chaos harness) is the arbiter: kill the primary *then*
//! promote, and never run two primaries against one client population.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use squid_adb::ADb;
use squid_core::{scan_records, JournalStats, JournalTail, SessionManager, TailPoll};

const MAGIC: &[u8; 5] = b"SQRP1";
const TAG_HELLO: u8 = 1;
const TAG_ADB: u8 = 2;
const TAG_SNAP: u8 = 3;
const TAG_RECS: u8 = 4;
const TAG_ACK: u8 = 5;
/// Frames above this are a protocol violation (the αDB snapshot is the
/// largest legitimate payload).
const MAX_FRAME: usize = 1 << 30;
/// How often the sender looks for newly appended journal bytes.
const SEND_POLL: Duration = Duration::from_millis(20);
/// Socket-level read timeout: the granularity at which blocked reads
/// re-check stop/promote flags.
const READ_POLL: Duration = Duration::from_millis(100);
/// How long the primary waits for a standby's ACK before declaring the
/// link dead.
const ACK_DEADLINE: Duration = Duration::from_secs(10);
/// Standby reconnect pacing after a link failure.
const RECONNECT_DELAY: Duration = Duration::from_millis(100);

/// A node's place in the replication pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts mutations, streams its journal to the standby.
    Primary,
    /// Serves reads, applies the stream, refuses mutations.
    Standby,
}

/// Shared replication state: the node's role, the promotion latch, and
/// the lag bookkeeping both the sender thread and the `health` verb read.
pub struct ReplState {
    role: AtomicU8,
    promote: AtomicBool,
    stop: AtomicBool,
    /// The current primary's *client* address — what `not_primary`
    /// refusals hint. On a standby this arrives in every SNAP frame; on a
    /// primary it is its own serve address.
    primary_addr: Mutex<Option<String>>,
    /// Primary side: whether a standby link is currently attached.
    standby_connected: AtomicBool,
    acked_epoch: AtomicU64,
    acked_offset: AtomicU64,
    acked_records: AtomicU64,
    /// Standby side: whether the link to the primary is up.
    link_up: AtomicBool,
    applied_records: AtomicU64,
    link_epoch: AtomicU64,
    /// Snapshot bootstraps absorbed (connect + every epoch change).
    snapshots: AtomicU64,
}

impl ReplState {
    /// Fresh state for a node starting in `role`.
    pub fn new(role: Role) -> ReplState {
        ReplState {
            role: AtomicU8::new(role as u8),
            promote: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            primary_addr: Mutex::new(None),
            standby_connected: AtomicBool::new(false),
            acked_epoch: AtomicU64::new(0),
            acked_offset: AtomicU64::new(0),
            acked_records: AtomicU64::new(0),
            link_up: AtomicBool::new(false),
            applied_records: AtomicU64::new(0),
            link_epoch: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
        }
    }

    /// The node's current role.
    pub fn role(&self) -> Role {
        if self.role.load(Ordering::Acquire) == Role::Primary as u8 {
            Role::Primary
        } else {
            Role::Standby
        }
    }

    /// Latch a promotion request (the `promote` verb / SIGUSR1 path). The
    /// standby link thread drains the stream and flips the role; callers
    /// poll [`ReplState::role`] for completion.
    pub fn request_promotion(&self) {
        self.promote.store(true, Ordering::Release);
    }

    /// Whether promotion has been requested.
    pub fn promotion_requested(&self) -> bool {
        self.promote.load(Ordering::Acquire)
    }

    /// Ask every replication thread to wind down.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// The current primary's client address, when known.
    pub fn primary_addr(&self) -> Option<String> {
        self.primary_addr.lock().ok().and_then(|g| g.clone())
    }

    /// Record the primary's client address (own address on a primary,
    /// learned from SNAP frames on a standby).
    pub fn set_primary_addr(&self, addr: &str) {
        if let Ok(mut g) = self.primary_addr.lock() {
            *g = Some(addr.to_string());
        }
    }

    /// Primary side: whether a standby is attached right now.
    pub fn standby_connected(&self) -> bool {
        self.standby_connected.load(Ordering::Acquire)
    }

    /// Standby side: whether the link to the primary is up.
    pub fn link_up(&self) -> bool {
        self.link_up.load(Ordering::Acquire)
    }

    /// Standby side: records applied off the stream in the current epoch.
    pub fn applied_records(&self) -> u64 {
        self.applied_records.load(Ordering::Relaxed)
    }

    /// Snapshot bootstraps absorbed (connect + every epoch change).
    pub fn snapshots(&self) -> u64 {
        self.snapshots.load(Ordering::Relaxed)
    }

    /// Replication lag as seen by the primary: `(records, bytes)` of
    /// journal the standby has not acknowledged. An ack from a previous
    /// epoch counts for nothing — the whole current file is unshipped.
    pub fn lag(&self, journal: &JournalStats) -> (u64, u64) {
        let total_records = journal.base_records + journal.tail_records;
        if self.acked_epoch.load(Ordering::Acquire) != journal.epoch {
            return (total_records, journal.bytes);
        }
        (
            total_records.saturating_sub(self.acked_records.load(Ordering::Acquire)),
            journal
                .bytes
                .saturating_sub(self.acked_offset.load(Ordering::Acquire)),
        )
    }

    fn record_ack(&self, epoch: u64, offset: u64, records: u64) {
        self.acked_epoch.store(epoch, Ordering::Release);
        self.acked_offset.store(offset, Ordering::Release);
        self.acked_records.store(records, Ordering::Release);
    }

    /// Flip to primary — the link thread's final act when a promotion
    /// drain completes (also used by pure-primary startup).
    fn become_primary(&self) {
        self.role.store(Role::Primary as u8, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// Frame IO
// ---------------------------------------------------------------------------

fn write_frame(w: &mut TcpStream, tag: u8, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; 5];
    header[0] = tag;
    header[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Incremental frame reader: partial reads (the socket's READ_POLL
/// timeout firing mid-frame) keep their bytes buffered, so a slow frame
/// is resumed, never desynced.
struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl FrameReader {
    fn new(stream: TcpStream) -> io::Result<FrameReader> {
        stream.set_read_timeout(Some(READ_POLL))?;
        Ok(FrameReader {
            stream,
            buf: Vec::new(),
        })
    }

    /// One complete frame, `Ok(None)` when the read timed out first (the
    /// caller re-checks its stop/promote flags and calls again).
    fn next_frame(&mut self) -> io::Result<Option<(u8, Vec<u8>)>> {
        loop {
            if self.buf.len() >= 5 {
                let len = u32::from_le_bytes(self.buf[1..5].try_into().expect("4 bytes")) as usize;
                if len > MAX_FRAME {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("replication frame of {len} bytes exceeds the cap"),
                    ));
                }
                if self.buf.len() >= 5 + len {
                    let tag = self.buf[0];
                    let payload = self.buf[5..5 + len].to_vec();
                    self.buf.drain(..5 + len);
                    return Ok(Some((tag, payload)));
                }
            }
            let mut chunk = [0u8; 64 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "replication peer closed the connection",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(e),
            }
        }
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(bytes: &[u8], at: usize) -> io::Result<u64> {
    bytes
        .get(at..at + 8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "short replication frame"))
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str(bytes: &[u8], at: usize) -> io::Result<(String, usize)> {
    let bad = || io::Error::new(io::ErrorKind::InvalidData, "short replication frame");
    let len = bytes
        .get(at..at + 2)
        .map(|b| u16::from_le_bytes(b.try_into().expect("2 bytes")) as usize)
        .ok_or_else(bad)?;
    let raw = bytes.get(at + 2..at + 2 + len).ok_or_else(bad)?;
    let s = std::str::from_utf8(raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 address in frame"))?;
    Ok((s.to_string(), at + 2 + len))
}

// ---------------------------------------------------------------------------
// Primary side: the replication listener + per-standby sender
// ---------------------------------------------------------------------------

/// Handle to the primary's replication listener thread.
pub struct ReplListener {
    addr: SocketAddr,
    handle: Option<JoinHandle<()>>,
}

impl ReplListener {
    /// The listener's bound address (for `--replicate-to 127.0.0.1:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the thread (the state's stop flag must be
    /// raised first; a self-connect unblocks the accept loop).
    pub fn shutdown(mut self) {
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Bind the replication listener and spawn its accept thread. Standbys
/// connect here; each connection gets the snapshot-then-stream treatment
/// for as long as this node is primary (a standby node can run a
/// listener too — it serves nothing until promotion).
pub fn start_repl_listener(
    manager: Arc<SessionManager>,
    bind: impl ToSocketAddrs,
    state: Arc<ReplState>,
) -> io::Result<ReplListener> {
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let handle = thread::Builder::new()
        .name("squid-repl-listener".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if state.stopping() {
                    break;
                }
                let Ok(stream) = conn else { continue };
                // Chaining standbys is out of scope: a node only feeds
                // the stream while it is primary. A standby that gets
                // dialed drops the connection; the dialer retries and
                // succeeds after promotion.
                if state.role() != Role::Primary {
                    continue;
                }
                // One standby at a time (single-standby stance): serve
                // this link to completion, then accept the next.
                state.standby_connected.store(true, Ordering::Release);
                let _ = serve_standby(&manager, stream, &state);
                state.standby_connected.store(false, Ordering::Release);
            }
        })?;
    Ok(ReplListener {
        addr,
        handle: Some(handle),
    })
}

/// Read the epoch + full valid journal bytes, atomically with respect to
/// compaction: the epoch is sampled (under the journal lock, via
/// `journal_stats`) before and after the file read, and the read retries
/// until both samples agree — at which point the bytes are provably from
/// that epoch's file.
fn stable_journal_read(manager: &SessionManager) -> io::Result<(u64, Vec<u8>, u64)> {
    loop {
        // Make buffered appends visible to the file read.
        manager
            .journal_sync()
            .map_err(|e| io::Error::other(e.to_string()))?;
        let Some(before) = manager.journal_stats() else {
            // No journal attached: an empty stream at epoch 0.
            return Ok((0, Vec::new(), 0));
        };
        let bytes = match std::fs::read(&before.path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let after = manager.journal_stats();
        if after.map(|s| s.epoch) == Some(before.epoch) {
            let (records, valid) = scan_records(&bytes);
            let mut bytes = bytes;
            bytes.truncate(valid as usize);
            return Ok((before.epoch, bytes, records.len() as u64));
        }
    }
}

/// Serve one standby connection: handshake, optional αDB bootstrap, then
/// snapshot + stream with lock-step acks until the link dies, the node
/// stops, or compaction forces a re-snapshot.
fn serve_standby(manager: &SessionManager, stream: TcpStream, state: &ReplState) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = FrameReader::new(stream)?;
    // Handshake.
    let hello_deadline = Instant::now() + ACK_DEADLINE;
    let flags = loop {
        match reader.next_frame()? {
            Some((TAG_HELLO, p)) if p.len() >= 6 && &p[..5] == MAGIC => break p[5],
            Some((tag, _)) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected HELLO, got frame tag {tag}"),
                ))
            }
            None if Instant::now() < hello_deadline && !state.stopping() => continue,
            None => return Ok(()),
        }
    };
    if flags & 1 != 0 {
        // αDB bootstrap: the single-file snapshot, straight onto the wire.
        let mut payload = Vec::new();
        manager
            .adb()
            .save_snapshot_to(&mut payload)
            .map_err(|e| io::Error::other(e.to_string()))?;
        write_frame(&mut writer, TAG_ADB, &payload)?;
    }

    let wait_ack = |reader: &mut FrameReader, state: &ReplState| -> io::Result<bool> {
        let deadline = Instant::now() + ACK_DEADLINE;
        loop {
            match reader.next_frame()? {
                Some((TAG_ACK, p)) => {
                    state.record_ack(get_u64(&p, 0)?, get_u64(&p, 8)?, get_u64(&p, 16)?);
                    return Ok(true);
                }
                Some(_) => continue,
                None if state.stopping() => return Ok(false),
                None if Instant::now() >= deadline => {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "standby ack overdue",
                    ))
                }
                None => continue,
            }
        }
    };

    let mut epoch: Option<u64> = None;
    let mut tail: Option<JournalTail> = None;
    // `tail` stays `None` on a journal-less primary (nothing to stream,
    // the SNAP carried everything) — that must NOT mean "snapshot again",
    // so re-snapshotting is its own flag.
    let mut need_snap = true;
    while !state.stopping() && state.role() == Role::Primary {
        let current_epoch = manager.journal_stats().map_or(0, |s| s.epoch);
        if epoch != Some(current_epoch) || need_snap {
            // Connect or compaction: (re-)snapshot the stream.
            let (snap_epoch, bytes, _records) = stable_journal_read(manager)?;
            let mut payload = Vec::new();
            put_u64(&mut payload, snap_epoch);
            put_str(&mut payload, &state.primary_addr().unwrap_or_default());
            payload.extend_from_slice(&bytes);
            write_frame(&mut writer, TAG_SNAP, &payload)?;
            if !wait_ack(&mut reader, state)? {
                return Ok(());
            }
            let path = manager.journal_stats().map(|s| s.path);
            tail = match path {
                Some(p) => Some(
                    JournalTail::resume(p, bytes.len() as u64)
                        .map_err(|e| io::Error::other(e.to_string()))?
                        .0,
                ),
                None => None,
            };
            epoch = Some(snap_epoch);
            need_snap = false;
            continue;
        }
        // Steady state: ship whatever got appended since the last look.
        manager
            .journal_sync()
            .map_err(|e| io::Error::other(e.to_string()))?;
        let Some(t) = tail.as_mut() else {
            thread::sleep(SEND_POLL);
            continue;
        };
        let before = manager.journal_stats().map_or(0, |s| s.epoch);
        let batch = match t.poll() {
            Ok(TailPoll::Records(b)) => b,
            Ok(TailPoll::Truncated) => {
                // Compacted under us: re-snapshot.
                tail = None;
                need_snap = true;
                continue;
            }
            Err(e) => return Err(io::Error::other(e.to_string())),
        };
        let after = manager.journal_stats().map_or(0, |s| s.epoch);
        if before != current_epoch || after != before {
            // The file may have been swapped mid-read; the bytes cannot
            // be trusted. Drop them and re-snapshot.
            tail = None;
            need_snap = true;
            continue;
        }
        if batch.raw.is_empty() {
            thread::sleep(SEND_POLL);
            continue;
        }
        let mut payload = Vec::new();
        put_u64(&mut payload, current_epoch);
        put_u64(&mut payload, batch.start_offset);
        payload.extend_from_slice(&batch.raw);
        write_frame(&mut writer, TAG_RECS, &payload)?;
        if !wait_ack(&mut reader, state)? {
            return Ok(());
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Standby side: bootstrap + apply loop
// ---------------------------------------------------------------------------

/// Handle to a standby's link thread.
pub struct StandbyLink {
    handle: Option<JoinHandle<()>>,
}

impl StandbyLink {
    /// Join the link thread (raise the state's stop flag or request
    /// promotion first).
    pub fn shutdown(mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Fetch the primary's αDB snapshot over its replication listener — the
/// "prebuilt αDB snapshot to the fleet" bootstrap: a standby starts with
/// zero local dataset builds. Returns the deserialized αDB.
pub fn fetch_adb(primary: &str, timeout: Duration) -> io::Result<ADb> {
    let addr = resolve(primary)?;
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut hello = MAGIC.to_vec();
    hello.push(1); // need_adb
    write_frame(&mut writer, TAG_HELLO, &hello)?;
    let mut reader = FrameReader::new(stream)?;
    let deadline = Instant::now() + timeout.max(Duration::from_secs(5));
    loop {
        match reader.next_frame()? {
            Some((TAG_ADB, payload)) => {
                return ADb::load_snapshot_from(&mut payload.as_slice())
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
            }
            Some(_) => continue,
            None if Instant::now() >= deadline => {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "timed out waiting for the primary's ADB frame",
                ))
            }
            None => continue,
        }
    }
}

fn resolve(addr: &str) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::AddrNotAvailable,
            format!("{addr:?} resolved to no address"),
        )
    })
}

/// Spawn the standby's link thread: connect to the primary's replication
/// listener, absorb snapshot + stream, reconnect on failure, and flip to
/// primary when promotion is requested (after draining whatever the link
/// still holds).
pub fn start_standby_link(
    manager: Arc<SessionManager>,
    primary: String,
    state: Arc<ReplState>,
) -> io::Result<StandbyLink> {
    let handle = thread::Builder::new()
        .name("squid-repl-standby".into())
        .spawn(move || {
            while !state.stopping() && !state.promotion_requested() {
                match run_link(&manager, &primary, &state) {
                    Ok(()) => {}
                    Err(_) if state.stopping() || state.promotion_requested() => {}
                    Err(_) => thread::sleep(RECONNECT_DELAY),
                }
                state.link_up.store(false, Ordering::Release);
            }
            if state.promotion_requested() && !state.stopping() {
                // Drained (run_link only returns with nothing buffered):
                // this node is now the primary.
                state.become_primary();
            }
        })?;
    Ok(StandbyLink {
        handle: Some(handle),
    })
}

/// One link lifetime: handshake, then apply frames until the connection
/// dies or the node is told to stop/promote. Returns `Ok` only via those
/// flags — with the reader's buffer empty, so a promotion that interrupts
/// it has provably applied everything received.
fn run_link(manager: &SessionManager, primary: &str, state: &ReplState) -> io::Result<()> {
    let addr = resolve(primary)?;
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut hello = MAGIC.to_vec();
    hello.push(0);
    write_frame(&mut writer, TAG_HELLO, &hello)?;
    let mut reader = FrameReader::new(stream)?;
    state.link_up.store(true, Ordering::Release);
    let mut offset: u64 = 0;
    loop {
        let frame = match reader.next_frame() {
            Ok(f) => f,
            Err(e) => {
                // A dying primary mid-frame: whatever complete frames
                // arrived were already applied; the torn remainder is
                // unacked and therefore still the primary's to resend.
                return Err(e);
            }
        };
        match frame {
            Some((TAG_SNAP, payload)) => {
                let epoch = get_u64(&payload, 0)?;
                let (primary_client_addr, at) = get_str(&payload, 8)?;
                if !primary_client_addr.is_empty() {
                    state.set_primary_addr(&primary_client_addr);
                }
                let (records, valid) = scan_records(&payload[at..]);
                let keep: std::collections::HashSet<_> =
                    records.iter().map(|(sid, _, _)| *sid).collect();
                manager.apply_replicated(&records);
                manager.retain_sessions(&keep);
                // Resync the local journal to exactly the snapshot state:
                // stale local records + a re-applied snapshot section
                // would double state on a later local recovery.
                let _ = manager.compact_journal();
                offset = valid;
                state.link_epoch.store(epoch, Ordering::Release);
                state
                    .applied_records
                    .store(records.len() as u64, Ordering::Release);
                state.snapshots.fetch_add(1, Ordering::Relaxed);
                ack(&mut writer, epoch, offset, records.len() as u64)?;
            }
            Some((TAG_RECS, payload)) => {
                let epoch = get_u64(&payload, 0)?;
                let start = get_u64(&payload, 8)?;
                if epoch != state.link_epoch.load(Ordering::Acquire) || start != offset {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "replication stream desync (epoch/offset mismatch)",
                    ));
                }
                let (records, valid) = scan_records(&payload[16..]);
                if valid as usize != payload.len() - 16 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "corrupt record bytes in RECS frame",
                    ));
                }
                manager.apply_replicated(&records);
                offset += valid;
                let applied = state
                    .applied_records
                    .fetch_add(records.len() as u64, Ordering::Release)
                    + records.len() as u64;
                ack(&mut writer, epoch, offset, applied)?;
            }
            Some((TAG_ADB, _)) | Some((TAG_HELLO, _)) | Some((TAG_ACK, _)) | Some(_) => {}
            None => {
                if state.stopping() || state.promotion_requested() {
                    return Ok(());
                }
            }
        }
    }
}

fn ack(writer: &mut TcpStream, epoch: u64, offset: u64, records: u64) -> io::Result<()> {
    let mut payload = Vec::new();
    put_u64(&mut payload, epoch);
    put_u64(&mut payload, offset);
    put_u64(&mut payload, records);
    write_frame(writer, TAG_ACK, &payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_reader_survives_partial_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // A frame dribbled in three writes with pauses: the reader's
            // READ_POLL fires mid-frame and must resume, not desync.
            let mut frame = vec![TAG_RECS];
            frame.extend_from_slice(&6u32.to_le_bytes());
            frame.extend_from_slice(b"abcdef");
            for chunk in frame.chunks(4) {
                s.write_all(chunk).unwrap();
                s.flush().unwrap();
                thread::sleep(Duration::from_millis(150));
            }
        });
        let (conn, _) = listener.accept().unwrap();
        let mut reader = FrameReader::new(conn).unwrap();
        let got = loop {
            if let Some(f) = reader.next_frame().unwrap() {
                break f;
            }
        };
        assert_eq!(got, (TAG_RECS, b"abcdef".to_vec()));
        writer.join().unwrap();
    }

    #[test]
    fn lag_counts_an_epoch_mismatch_as_fully_behind() {
        let state = ReplState::new(Role::Primary);
        let journal = JournalStats {
            bytes: 1000,
            base_records: 10,
            tail_records: 5,
            epoch: 2,
            ..JournalStats::default()
        };
        // Ack from epoch 1: everything in epoch 2's file is unshipped.
        state.record_ack(1, 900, 14);
        assert_eq!(state.lag(&journal), (15, 1000));
        // Ack within the epoch: exact remainder.
        state.record_ack(2, 900, 14);
        assert_eq!(state.lag(&journal), (1, 100));
        state.record_ack(2, 1000, 15);
        assert_eq!(state.lag(&journal), (0, 0));
    }

    #[test]
    fn string_and_u64_codecs_round_trip() {
        let mut out = Vec::new();
        put_u64(&mut out, 42);
        put_str(&mut out, "10.0.0.1:7500");
        assert_eq!(get_u64(&out, 0).unwrap(), 42);
        let (s, at) = get_str(&out, 8).unwrap();
        assert_eq!(s, "10.0.0.1:7500");
        assert_eq!(at, out.len());
        assert!(get_u64(&out, out.len()).is_err());
        assert!(get_str(&out, out.len()).is_err());
    }
}
