//! `squid-serve` — TCP serving frontend for SQuID session fleets, plus a
//! scripted client and a load generator (one binary, three modes).
//!
//! Server (default):
//!
//! ```text
//! squid-serve --addr 127.0.0.1:7878 --journal /var/lib/squid.journal imdb
//! squid-serve --addr 127.0.0.1:0 imdb        # random port, printed on stdout
//! ```
//!
//! Prints `listening on <addr>` once serving. SIGTERM/SIGINT (or a
//! `shutdown` request) triggers the graceful path: drain in-flight turns,
//! fsync the journal, optionally save a snapshot, exit 0. A fleet killed
//! hard instead recovers from its journal on the next `--journal` start.
//!
//! Scripted client (`--client <addr>`): reads REPL-grammar commands from
//! stdin (`create`, `add <value>`, `suggest [k]`, `sql`, `close`, ...),
//! sends them as protocol requests against the most recently created
//! session, prints one raw JSON response line per command, and exits
//! non-zero on the first error response — the network twin of
//! `squid --repl --batch`, which CI diffs it against.
//!
//! Load generator (`--loadgen <addr> --clients N --sessions M`): reads a
//! turn script from stdin (same grammar, no `create`/`close` — the
//! harness brackets each session) and replays it from N concurrent
//! connections, printing sessions/sec, turns/sec, and latency
//! percentiles.

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use squid_adb::ADb;
use squid_core::{FsyncPolicy, Journal, SessionManager, SquidParams};
use squid_datasets::{
    generate_adult, generate_dblp, generate_imdb, AdultConfig, DblpConfig, ImdbConfig,
};
use squid_relation::Database;
use squid_serve::json::Json;
use squid_serve::{
    fetch_adb, run_chaos, run_load_fleet, ChaosConfig, LoadConfig, LoadTurn, RateLimit,
    RetryClient, ServeConfig, Server,
};

const USAGE: &str = "\
usage: squid-serve [flags] <dataset>                 serve a session fleet
       squid-serve --client <addr>                   scripted client (stdin)
       squid-serve --loadgen <addr> [load flags]     load generator (stdin)
       squid-serve --chaos [chaos flags]             SIGKILL-loop chaos smoke
datasets: imdb | dblp | adult | mini
server flags:
  --addr <host:port>   bind address (default 127.0.0.1:0; port printed)
  --workers <n>        worker threads = concurrent connections (default 8)
  --max-pending <n>    queued connections before `overloaded` (default 64)
  --max-sessions <n>   fleet-wide live-session cap (default 4096)
  --idle-timeout <s>   reap idle connections after s seconds (default 300)
  --ttl <s>            evict sessions idle past s seconds (default: never)
  --no-shared-cache    disable the fleet-wide shared evaluation cache
  --snapshot <path>    load the αDB from this snapshot if present (corrupt
                       or missing -> rebuild from generators and save)
  --exit-snapshot <p>  also save an αDB snapshot during graceful shutdown
  --journal <path>     journal session mutations; recover on start
  --fsync <mode>       journal durability: always | flush (default) | never
  --auto-compact <n>   compact the journal when its replay tail exceeds
                       max(n, records at startup) (default: off)
  --rate-limit <r[:b]> per-session token bucket: r turns/sec, burst b
                       (default burst = 2r; refusals carry retry_after_ms)
  --normalized         normalized association strength (case-study mode)
replication flags:
  --replicate-to <a>   also listen on a for standby links (host:port;
                       port 0 allocates; the chosen addr is printed)
  --standby-of <a>     start as a warm standby of the primary whose
                       replication listener is at a; reads are served,
                       mutations refused with a `not_primary` hint;
                       SIGUSR1 or the `promote` verb flips to primary
  --bootstrap-adb      (standby only) fetch the αDB over the replication
                       link instead of building it; dataset arg optional
load flags:
  --clients <n>        concurrent client threads (default 8)
  --sessions <n>       sessions per client (default 2)
                       (--loadgen accepts a,b,... — clients fail over)
chaos flags:
  --kills <n>          SIGKILL -> restart cycles (default 5)
  --clients <n>        concurrent retrying clients (default 8)
  --standby            replicated-pair mode: SIGKILL the primary, promote
                       the standby, relaunch the corpse as the new standby";

fn die<T>(msg: &str) -> T {
    eprintln!("{msg}");
    std::process::exit(2)
}

/// SIGTERM/SIGINT/SIGUSR1 handling without crates: the C runtime std
/// already links provides `signal`; the handlers only store to atomics,
/// which is async-signal-safe.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static STOP: AtomicBool = AtomicBool::new(false);
    pub static PROMOTE: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    extern "C" fn on_promote(_signum: i32) {
        PROMOTE.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGUSR1: i32 = 10;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
            signal(SIGUSR1, on_promote);
        }
    }

    pub fn stop_requested() -> bool {
        STOP.load(Ordering::SeqCst)
    }

    /// One-shot: true at most once per SIGUSR1.
    pub fn promote_requested() -> bool {
        PROMOTE.swap(false, Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn stop_requested() -> bool {
        false
    }
    pub fn promote_requested() -> bool {
        false
    }
}

fn build_dataset(name: &str) -> Option<Database> {
    match name {
        "imdb" => Some(generate_imdb(&ImdbConfig::default())),
        "dblp" => Some(generate_dblp(&DblpConfig::default())),
        "adult" => Some(generate_adult(&AdultConfig::default())),
        // The tiny test fixture: instant αDB builds, which is what lets
        // the chaos harness restart the server many times per run.
        "mini" => Some(squid_adb::test_fixtures::mini_imdb()),
        _ => None,
    }
}

/// Snapshot-or-rebuild αDB acquisition (same policy as the `squid` CLI:
/// a snapshot is a cache, never the source of truth).
fn acquire_adb(dataset: &str, snapshot: Option<&Path>) -> ADb {
    if let Some(path) = snapshot {
        if path.exists() {
            match ADb::load_snapshot(path) {
                Ok(adb) => {
                    eprintln!("αDB loaded from snapshot {}", path.display());
                    return adb;
                }
                Err(e) => eprintln!(
                    "snapshot {} unusable ({e}); rebuilding from generators",
                    path.display()
                ),
            }
        }
    }
    let db = build_dataset(dataset).unwrap_or_else(|| die(&format!("unknown dataset {dataset:?}")));
    eprintln!("building αDB for {dataset}...");
    let adb = match ADb::build(&db) {
        Ok(a) => a,
        Err(e) => die(&format!("αDB build failed: {e}")),
    };
    if let Some(path) = snapshot {
        match adb.save_snapshot(path) {
            Ok(bytes) => eprintln!("snapshot saved to {} ({bytes} bytes)", path.display()),
            Err(e) => eprintln!("warning: snapshot save to {} failed: {e}", path.display()),
        }
    }
    adb
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServeConfig::default();
    let mut params = SquidParams::default();
    let mut client_addr: Option<String> = None;
    let mut loadgen_addr: Option<String> = None;
    let mut chaos_mode = false;
    let mut chaos_standby = false;
    let mut bootstrap_adb = false;
    let mut kills = 5u32;
    let mut clients = 8usize;
    let mut sessions = 2usize;
    let mut snapshot: Option<PathBuf> = None;
    let mut journal: Option<PathBuf> = None;
    let mut fsync = FsyncPolicy::Flush;
    let mut auto_compact: Option<u64> = None;
    let mut ttl: Option<Duration> = None;
    let mut no_shared_cache = false;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    let next_num = |it: &mut dyn Iterator<Item = String>, flag: &str| -> u64 {
        it.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| die(&format!("{flag} needs a number")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--client" => {
                client_addr = Some(
                    it.next()
                        .unwrap_or_else(|| die("--client needs an address")),
                )
            }
            "--loadgen" => {
                loadgen_addr = Some(
                    it.next()
                        .unwrap_or_else(|| die("--loadgen needs an address")),
                )
            }
            "--addr" => cfg.addr = it.next().unwrap_or_else(|| die("--addr needs host:port")),
            "--workers" => cfg.workers = next_num(&mut it, "--workers") as usize,
            "--max-pending" => cfg.max_pending = next_num(&mut it, "--max-pending") as usize,
            "--max-sessions" => cfg.max_sessions = next_num(&mut it, "--max-sessions") as usize,
            "--idle-timeout" => {
                cfg.idle_timeout = Duration::from_secs(next_num(&mut it, "--idle-timeout"))
            }
            "--ttl" => {
                let secs = next_num(&mut it, "--ttl");
                ttl = Some(Duration::from_secs(secs));
                cfg.sweep_interval = Some(Duration::from_secs((secs / 4).max(1)));
            }
            "--no-shared-cache" => no_shared_cache = true,
            "--clients" => clients = next_num(&mut it, "--clients") as usize,
            "--sessions" => sessions = next_num(&mut it, "--sessions") as usize,
            "--snapshot" => {
                snapshot = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| die("--snapshot needs a path")),
                ))
            }
            "--exit-snapshot" => {
                cfg.snapshot_on_shutdown = Some(PathBuf::from(
                    it.next()
                        .unwrap_or_else(|| die("--exit-snapshot needs a path")),
                ))
            }
            "--journal" => {
                journal = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| die("--journal needs a path")),
                ))
            }
            "--fsync" => {
                fsync = match it.next().as_deref() {
                    Some("always") => FsyncPolicy::Always,
                    Some("flush") => FsyncPolicy::Flush,
                    Some("never") => FsyncPolicy::Never,
                    _ => die("--fsync needs one of: always | flush | never"),
                }
            }
            "--auto-compact" => auto_compact = Some(next_num(&mut it, "--auto-compact")),
            "--replicate-to" => {
                cfg.replicate_to = Some(
                    it.next()
                        .unwrap_or_else(|| die("--replicate-to needs host:port")),
                )
            }
            "--standby-of" => {
                cfg.standby_of = Some(
                    it.next()
                        .unwrap_or_else(|| die("--standby-of needs host:port")),
                )
            }
            "--bootstrap-adb" => bootstrap_adb = true,
            "--standby" => chaos_standby = true,
            "--rate-limit" => {
                let spec = it
                    .next()
                    .unwrap_or_else(|| die("--rate-limit needs r or r:b"));
                let (r, b) = match spec.split_once(':') {
                    Some((r, b)) => (r.parse::<f64>().ok(), b.parse::<f64>().ok()),
                    None => {
                        let r = spec.parse::<f64>().ok();
                        (r, r.map(|r| r * 2.0))
                    }
                };
                match (r, b) {
                    (Some(per_sec), Some(burst)) if per_sec > 0.0 && burst >= 1.0 => {
                        cfg.rate_limit = Some(RateLimit { per_sec, burst })
                    }
                    _ => die("--rate-limit needs r > 0 (turns/sec), burst >= 1"),
                }
            }
            "--chaos" => chaos_mode = true,
            "--kills" => kills = next_num(&mut it, "--kills") as u32,
            "--normalized" => params = SquidParams::normalized(),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => positional.push(other.to_string()),
        }
    }

    if chaos_mode {
        let exe = std::env::current_exe()
            .unwrap_or_else(|e| die(&format!("cannot locate own binary: {e}")));
        let cfg = ChaosConfig {
            server_cmd: vec![exe.display().to_string(), "mini".into()],
            clients,
            kills,
            standby: chaos_standby,
            ..ChaosConfig::default()
        };
        match run_chaos(&cfg) {
            Ok(report) => {
                println!("{}", report.summary());
                if !report.passed() {
                    std::process::exit(1);
                }
            }
            Err(e) => die(&format!("chaos run failed: {e}")),
        }
        return;
    }
    if let Some(addr) = client_addr {
        run_client(&addr);
        return;
    }
    if let Some(addr) = loadgen_addr {
        run_loadgen(&addr, clients, sessions);
        return;
    }

    // The journal is the replication stream: a primary without one could
    // bootstrap standbys but never ship them a mutation.
    if (cfg.replicate_to.is_some() || cfg.standby_of.is_some()) && journal.is_none() {
        die::<()>("--replicate-to/--standby-of need --journal (the journal is what replicates)");
        return;
    }

    // A standby can pull the αDB over its replication link instead of
    // building (or loading) it locally — new nodes join dataset-free.
    let adb = if bootstrap_adb {
        let Some(primary) = cfg.standby_of.as_deref() else {
            die::<()>("--bootstrap-adb only makes sense with --standby-of");
            return;
        };
        eprintln!("fetching αDB from primary at {primary}...");
        match fetch_adb(primary, Duration::from_secs(60)) {
            Ok(adb) => Arc::new(adb),
            Err(e) => die(&format!("αDB bootstrap from {primary} failed: {e}")),
        }
    } else {
        let Some(dataset) = positional.first() else {
            die::<()>(USAGE);
            return;
        };
        Arc::new(acquire_adb(dataset, snapshot.as_deref()))
    };
    let mut manager = SessionManager::with_params(Arc::clone(&adb), params);
    if no_shared_cache {
        manager = manager.without_shared_cache();
    }
    if let Some(ttl) = ttl {
        manager = manager.with_ttl(ttl);
    }
    if let Some(floor) = auto_compact {
        manager = manager.with_auto_compact(floor);
    }
    let manager = Arc::new(manager);
    if let (Some(jp), true) = (&journal, cfg.standby_of.is_some()) {
        // A standby's state comes from the primary's snapshot bootstrap,
        // not from whatever journal a past life left behind — replaying
        // it would only create sessions the SNAP immediately reinstalls
        // or sweeps. Start the journal fresh; every replicated record is
        // re-journaled locally, so durability is preserved.
        let _ = std::fs::remove_file(jp);
        match Journal::open(jp, fsync) {
            Ok(j) => manager.attach_journal(j),
            Err(e) => {
                die::<()>(&format!("journal {} unusable: {e}", jp.display()));
                return;
            }
        }
    } else if let Some(jp) = &journal {
        match manager.recover(jp, fsync) {
            Ok(st) => eprintln!(
                "journal {}: replayed {} session(s), {} record(s) applied, \
                 {} failed, {} damaged byte(s) truncated, {} live",
                jp.display(),
                st.sessions_replayed,
                st.records_applied,
                st.records_failed,
                st.bytes_truncated,
                st.live_sessions
            ),
            Err(e) => {
                die::<()>(&format!("journal {} unusable: {e}", jp.display()));
                return;
            }
        }
    }

    sig::install();
    let server = match Server::start(manager, cfg) {
        Ok(s) => s,
        Err(e) => {
            die::<()>(&format!("bind failed: {e}"));
            return;
        }
    };
    // The port announcement is the startup handshake CI scripts wait for;
    // flush so it is visible even through a pipe.
    println!("listening on {}", server.local_addr());
    if let Some(repl) = server.repl_addr() {
        println!("replicating on {repl}");
    }
    let _ = std::io::stdout().flush();

    while !sig::stop_requested() && !server.stop_requested() {
        if sig::promote_requested() {
            eprintln!("SIGUSR1: promoting...");
            let role = server.promote(Duration::from_secs(10));
            eprintln!("promotion -> {role:?}");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("shutdown requested; draining...");
    let report = server.shutdown();
    eprintln!(
        "drained: {} request(s), {} turn(s), {} connection(s), {} live session(s), \
         journal {}{}",
        report.metrics.requests,
        report.metrics.turns,
        report.metrics.connections_closed,
        report.live_sessions,
        if report.journal_synced {
            "synced"
        } else {
            "sync FAILED"
        },
        match report.snapshot_bytes {
            Some(b) => format!(", snapshot saved ({b} bytes)"),
            None => String::new(),
        }
    );
}

/// Which path a scripted command takes through the retry client.
enum CommandKind {
    /// No session addressed (or fleet-wide).
    Fleet,
    /// Session-scoped read — retried but not sequence-numbered.
    Read,
    /// Session-scoped mutation — sequence-numbered, so a retry after a
    /// lost acknowledgement dedupes instead of double-applying.
    Turn,
}

/// A parsed command line: the wire verb, its fields (minus
/// `session`/`seq`, which the retry client injects), and which path it
/// takes.
type ParsedCommand<'a> = (&'a str, Vec<(&'static str, Json)>, CommandKind);

/// Translate one REPL-grammar command line into its wire form.
/// `has_session` is whether the script is driving one.
fn command_parts(line: &str, has_session: bool) -> Result<ParsedCommand<'_>, String> {
    let (cmd, rest) = match line.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None => (line, ""),
    };
    use CommandKind::*;
    let parts = |fields, kind| Ok((cmd, fields, kind));
    match cmd {
        "ping" | "create" | "shutdown" | "health" | "promote" => parts(vec![], Fleet),
        "stats" => {
            if has_session {
                parts(vec![], Read)
            } else {
                parts(vec![], Fleet)
            }
        }
        "add" | "remove" => parts(vec![("value", Json::str(rest))], Turn),
        "pin" | "ban" | "unpin" | "unban" => parts(vec![("key", Json::str(rest))], Turn),
        "target" => match rest.split_once(char::is_whitespace) {
            Some((tbl, col)) => parts(
                vec![
                    ("table", Json::str(tbl.trim())),
                    ("column", Json::str(col.trim())),
                ],
                Turn,
            ),
            None => Err("usage: target <table> <column>".into()),
        },
        "auto" => parts(vec![], Turn),
        "sql" | "examples" | "close" => parts(vec![], Read),
        "choose" => match rest.split_once(char::is_whitespace) {
            Some((pk, example)) => match pk.trim().parse::<i64>() {
                Ok(pk) => parts(
                    vec![
                        ("example", Json::str(example.trim())),
                        ("pk", Json::Int(pk)),
                    ],
                    Turn,
                ),
                Err(_) => Err("usage: choose <pk> <example>".into()),
            },
            None => Err("usage: choose <pk> <example>".into()),
        },
        "unchoose" => parts(vec![("example", Json::str(rest))], Turn),
        "suggest" => parts(vec![("k", Json::Int(rest.parse().unwrap_or(3)))], Read),
        "rows" => parts(vec![("limit", Json::Int(rest.parse().unwrap_or(10)))], Read),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Scripted client: stdin commands → protocol requests → raw JSON
/// response lines on stdout; non-zero exit on the first error response.
/// Rides through restarts: requests retry with backoff, reconnects are
/// automatic, and `session <id>` re-adopts a recovered session (syncing
/// the turn cursor so further mutations keep deduping).
fn run_client(addr: &str) {
    let mut client = RetryClient::new(addr.to_string());
    let mut current: Option<u64> = None;
    let stdin = std::io::stdin();
    let mut line_no = 0usize;
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        line_no += 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        // Client-local: re-address an existing session (e.g. one that a
        // restarted server just recovered from its journal), resuming
        // its turn numbering from the server's cursor.
        // Client-local: bind an admission identity; the retry client
        // replays the handshake on every (re)connection.
        if let Some(rest) = line.strip_prefix("client ") {
            let id = rest.trim();
            if id.is_empty() {
                die::<()>(&format!("line {line_no}: usage: client <id>"));
            }
            client.identify(id);
            eprintln!("client identity {id:?} bound");
            continue;
        }
        if let Some(rest) = line.strip_prefix("session ") {
            match rest.trim().parse::<u64>() {
                Ok(sid) => match client.adopt(sid) {
                    Ok(cursor) => {
                        eprintln!("session {sid} adopted at turn {cursor}");
                        current = Some(sid);
                        continue;
                    }
                    Err(e) => die(&format!("line {line_no}: adopt {sid}: {e}")),
                },
                Err(_) => die(&format!("line {line_no}: usage: session <id>")),
            }
        }
        let (cmd, fields, kind) = match command_parts(line, current.is_some()) {
            Ok(p) => p,
            Err(msg) => die(&format!("line {line_no}: {msg}")),
        };
        let sid = |current: Option<u64>| -> u64 {
            current
                .unwrap_or_else(|| die(&format!("line {line_no}: no session yet — `create` first")))
        };
        let result = match kind {
            CommandKind::Fleet => {
                let mut members = vec![("op", Json::str(cmd))];
                members.extend(fields);
                client.call(&Json::obj(members))
            }
            CommandKind::Read => {
                let mut members = vec![
                    ("op", Json::str(cmd)),
                    ("session", Json::Int(sid(current) as i64)),
                ];
                members.extend(fields);
                client.call(&Json::obj(members))
            }
            CommandKind::Turn => client.turn(sid(current), cmd, fields),
        };
        let resp = match result {
            Ok(r) => r,
            Err(e) => die(&format!("line {line_no}: command {line:?} failed: {e}")),
        };
        println!("{}", resp.encode());
        if let Some(sid) = resp.get("session").and_then(Json::as_u64) {
            current = Some(sid);
        }
    }
    let c = client.counters();
    if c.retries + c.reconnects + c.deduped + c.rate_limited > 0 {
        eprintln!(
            "client: {} retries, {} reconnects, {} deduped turns, {} rate-limited replies",
            c.retries, c.reconnects, c.deduped, c.rate_limited
        );
    }
}

/// Load-generator mode: replay a stdin turn script from N connections.
/// `addr` may be a comma-separated fleet — clients fail over between
/// members, and the report's `failovers` counter says how often.
fn run_loadgen(addr: &str, clients: usize, sessions: usize) {
    let stdin = std::io::stdin();
    let mut script = Vec::new();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        let turn = match cmd {
            "add" => LoadTurn::Add(rest.to_string()),
            "remove" => LoadTurn::Remove(rest.to_string()),
            "pin" => LoadTurn::Pin(rest.to_string()),
            "unpin" => LoadTurn::Unpin(rest.to_string()),
            "suggest" => LoadTurn::Suggest(rest.parse().unwrap_or(3)),
            "sql" => LoadTurn::Sql,
            "rows" => LoadTurn::Rows(rest.parse().unwrap_or(10)),
            other => die(&format!("loadgen script: unknown turn {other:?}")),
        };
        script.push(turn);
    }
    if script.is_empty() {
        die::<()>("loadgen: empty script on stdin (expected add/suggest/sql/... lines)");
        return;
    }
    let cfg = LoadConfig {
        clients,
        sessions_per_client: sessions,
        script,
    };
    let addrs: Vec<String> = addr
        .split(',')
        .map(|a| a.trim().to_string())
        .filter(|a| !a.is_empty())
        .collect();
    match run_load_fleet(&addrs, &cfg) {
        Ok(report) => {
            println!("{}", report.summary());
            if report.errors > 0 {
                std::process::exit(1);
            }
        }
        Err(e) => die(&format!("loadgen against {addr} failed: {e}")),
    }
}
