//! The chaos harness: SIGKILL the server repeatedly under retrying load
//! and prove nothing acknowledged was lost.
//!
//! [`run_chaos`] spawns a real `squid-serve` child process (serving the
//! `mini` fixture with `--fsync always` and a journal), points a fleet
//! of [`RetryClient`]s at it, and then kills the child with SIGKILL —
//! no drain, no flush — a configurable number of times, restarting it
//! against the same journal each time. Clients ride through the crashes
//! on sequence-numbered retries.
//!
//! Two invariants are checked at the end, against the final recovered
//! server:
//!
//! 1. **Zero acknowledged-turn loss**: every turn a client saw `ok:true`
//!    for is reflected in the session's recovered `op_seq` cursor. An
//!    ack means journaled-and-fsynced, so SIGKILL may lose in-flight
//!    turns (which clients retry) but never acknowledged ones.
//! 2. **Diff-identical recovery**: each session's recovered SQL equals
//!    the SQL produced by replaying that client's acknowledged ops, in
//!    order, on a fresh in-process [`SessionManager`] over the same
//!    αDB — the crash-riddled fleet and an uninterrupted one are
//!    indistinguishable.
//!
//! The harness requires the server command to serve the `mini` dataset
//! (the [`squid_adb::test_fixtures::mini_imdb`] fixture), because the
//! verification replay rebuilds that αDB in-process.
//!
//! ## `--standby` mode
//!
//! With [`ChaosConfig::standby`] the harness runs a replicated pair and
//! kills *primaries*: each cycle pauses the client fleet, waits for the
//! primary's `health` to report replication lag zero (the acked state
//! has provably reached the standby), SIGKILLs the primary, promotes the
//! standby with the `promote` verb, relaunches the corpse as the new
//! standby, and resumes traffic. Clients ride through on address
//! failover + `not_primary` hints. Roles alternate every kill. The same
//! two invariants are verified at the end against the final primary —
//! across promotions, not just restarts.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use squid_adb::{test_fixtures, ADb};
use squid_core::{SessionManager, SessionOp};

use crate::client::Client;
use crate::json::Json;
use crate::retry::{RetryClient, RetryCounters, RetryPolicy};

/// How much chaos to inflict.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The server command: binary path plus every argument *except*
    /// `--addr`, `--journal`, `--fsync`, and `--auto-compact`, which the
    /// harness appends. Must serve the `mini` dataset (e.g.
    /// `["target/release/squid-serve", "mini"]`) — verification replays
    /// against that fixture.
    pub server_cmd: Vec<String>,
    /// Concurrent retrying clients (default 8).
    pub clients: usize,
    /// SIGKILL → restart cycles (default 5).
    pub kills: u32,
    /// Traffic window between kills (default 400ms).
    pub kill_interval: Duration,
    /// Journal path (default: a pid-scoped file in the temp dir,
    /// removed before the run).
    pub journal: Option<PathBuf>,
    /// `--auto-compact` floor passed to the server, so crash-recovery is
    /// exercised against compacted journals too (default `Some(32)`).
    pub auto_compact: Option<u64>,
    /// Run a replicated primary/standby pair and kill primaries,
    /// promoting the standby each cycle (default false: the classic
    /// single-node restart loop).
    pub standby: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            server_cmd: Vec::new(),
            clients: 8,
            kills: 5,
            kill_interval: Duration::from_millis(400),
            journal: None,
            auto_compact: Some(32),
            standby: false,
        }
    }
}

/// What the chaos run did and found. `lost_turns == 0` and
/// `sql_mismatches == 0` are the invariants; everything else is
/// evidence of how hard they were tested.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// SIGKILLs delivered.
    pub kills: u32,
    /// Sessions driven (one per client).
    pub sessions: usize,
    /// Turns acknowledged across all clients.
    pub turns_acked: u64,
    /// Acknowledged turns missing from recovered cursors (must be 0).
    pub lost_turns: u64,
    /// Sessions whose recovered SQL diverged from an uninterrupted
    /// replay of their acknowledged ops (must be 0).
    pub sql_mismatches: u64,
    /// Journal compactions the server performed during the run.
    pub compactions: u64,
    /// Standby promotions performed (`--standby` mode; 0 otherwise).
    pub promotions: u32,
    /// Aggregated client-side retry work.
    pub counters: RetryCounters,
    /// Wall clock of the whole run.
    pub wall: Duration,
}

impl ChaosReport {
    /// Did both invariants hold (and was anything actually exercised)?
    pub fn passed(&self) -> bool {
        self.lost_turns == 0 && self.sql_mismatches == 0 && self.turns_acked > 0
    }

    /// One-line human rendering.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} kills, {} promotions, {} sessions, {} turns acked, {} lost, \
             {} sql mismatches, {} compactions in {:.2?} (retries {}, reconnects {}, \
             deduped {}, rate_limited {}, failovers {})",
            if self.passed() { "PASS" } else { "FAIL" },
            self.kills,
            self.promotions,
            self.sessions,
            self.turns_acked,
            self.lost_turns,
            self.sql_mismatches,
            self.compactions,
            self.wall,
            self.counters.retries,
            self.counters.reconnects,
            self.counters.deduped,
            self.counters.rate_limited,
            self.counters.failovers,
        )
    }
}

/// The mutation script clients cycle through — only ops valid on the
/// `mini` fixture, staggered per client so the fleet is heterogeneous.
fn chaos_script() -> Vec<SessionOp> {
    vec![
        SessionOp::AddExample("Jim Carrey".into()),
        SessionOp::AddExample("Eddie Murphy".into()),
        SessionOp::PinFilter("person:gender".into()),
        SessionOp::AddExample("Robin Williams".into()),
        SessionOp::RemoveExample("Eddie Murphy".into()),
        SessionOp::UnpinFilter("person:gender".into()),
        SessionOp::BanFilter("movie:genre".into()),
        SessionOp::AddExample("Eddie Murphy".into()),
        SessionOp::UnbanFilter("movie:genre".into()),
        SessionOp::RemoveExample("Robin Williams".into()),
    ]
}

/// Patient policy: a restart can take seconds (αDB rebuild + journal
/// replay), and a client must outlive it.
fn chaos_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 40,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(250),
        read_timeout: Some(Duration::from_secs(5)),
    }
}

fn free_port() -> Result<u16, String> {
    std::net::TcpListener::bind("127.0.0.1:0")
        .and_then(|l| l.local_addr())
        .map(|a| a.port())
        .map_err(|e| format!("no free port: {e}"))
}

fn spawn_server(argv: &[String]) -> Result<Child, String> {
    // stderr is inherited on purpose: this is a diagnostic harness, and
    // a server that dies on startup should say why.
    Command::new(&argv[0])
        .args(&argv[1..])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn {:?} failed: {e}", argv[0]))
}

fn wait_ready(addr: &str, deadline: Duration) -> Result<(), String> {
    let t0 = Instant::now();
    loop {
        if let Ok(mut c) = Client::connect(addr) {
            let _ = c.set_read_timeout(Some(Duration::from_secs(1)));
            if c.ping().is_ok() {
                return Ok(());
            }
        }
        if t0.elapsed() > deadline {
            return Err(format!("server at {addr} not ready within {deadline:?}"));
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn turn_body(op: &SessionOp) -> Option<(&'static str, Vec<(&'static str, Json)>)> {
    match op {
        SessionOp::AddExample(v) => Some(("add", vec![("value", Json::str(v))])),
        SessionOp::RemoveExample(v) => Some(("remove", vec![("value", Json::str(v))])),
        SessionOp::PinFilter(k) => Some(("pin", vec![("key", Json::str(k))])),
        SessionOp::UnpinFilter(k) => Some(("unpin", vec![("key", Json::str(k))])),
        SessionOp::BanFilter(k) => Some(("ban", vec![("key", Json::str(k))])),
        SessionOp::UnbanFilter(k) => Some(("unban", vec![("key", Json::str(k))])),
        _ => None,
    }
}

/// One client's acknowledged history: `acked[i]` was acknowledged at
/// sequence `i + 1`.
struct ClientLog {
    session: u64,
    acked: Vec<SessionOp>,
    counters: RetryCounters,
}

/// Send one sequenced turn and drive it to a *resolution*: acknowledged
/// (recorded, true), refused with a non-retryable error (not recorded,
/// false), or — if the server stays unreachable past `deadline` — an
/// error. A turn is never abandoned in the ambiguous state, which is
/// what makes the final ledger comparable to the server's.
fn resolve_turn(
    client: &mut RetryClient,
    session: u64,
    op: &SessionOp,
    deadline: Duration,
) -> Result<bool, String> {
    let (verb, fields) = turn_body(op).ok_or("non-turn op in chaos script")?;
    let t0 = Instant::now();
    loop {
        match client.turn(session, verb, fields.clone()) {
            Ok(_) => return Ok(true),
            Err(crate::ClientError::Server { ref code, .. }) if !crate::retry::retryable(code) => {
                // Refused deterministically (e.g. a discovery error); the
                // server's cursor did not move — apply failures roll back
                // and journal-append failures fail-stop the session without
                // advancing — so the sequence number is reused by the next
                // op.
                return Ok(false);
            }
            Err(e) => {
                if t0.elapsed() > deadline {
                    return Err(format!("turn unresolved after {deadline:?}: {e}"));
                }
                // Retry budget exhausted mid-restart; same seq, go again.
            }
        }
    }
}

fn client_thread(
    addrs: &[String],
    idx: usize,
    stop: &AtomicBool,
    pause: &AtomicBool,
    idle: &AtomicUsize,
) -> Result<ClientLog, String> {
    let mut client = RetryClient::fleet(addrs.to_vec(), chaos_policy());
    client.identify(format!("chaos-{idx}"));
    let script = chaos_script();
    let deadline = Duration::from_secs(60);
    // Creation retries ride the same policy; a duplicate create orphans
    // a server-side session, which is harmless here (never verified).
    let session = {
        let t0 = Instant::now();
        loop {
            match client.create() {
                Ok(sid) => break sid,
                Err(e) if t0.elapsed() > deadline => {
                    return Err(format!("client {idx}: create failed: {e}"));
                }
                Err(_) => {}
            }
        }
    };
    let mut acked = Vec::new();
    let mut step = idx; // stagger the script per client
    while !stop.load(Ordering::Relaxed) {
        if pause.load(Ordering::Relaxed) {
            // The quiesce barrier: report idle, hold until released. The
            // standby harness drains replication lag and swaps primaries
            // while every client sits here between turns.
            idle.fetch_add(1, Ordering::Relaxed);
            while pause.load(Ordering::Relaxed) && !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(5));
            }
            idle.fetch_sub(1, Ordering::Relaxed);
            continue;
        }
        let op = script[step % script.len()].clone();
        step += 1;
        if resolve_turn(&mut client, session, &op, deadline)
            .map_err(|e| format!("client {idx}: {e}"))?
        {
            acked.push(op);
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    Ok(ClientLog {
        session,
        acked,
        counters: client.counters(),
    })
}

/// Run the kill loop and verify the invariants. See the module docs.
/// Dispatches to the replicated-pair harness when
/// [`ChaosConfig::standby`] is set.
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport, String> {
    if cfg.server_cmd.is_empty() {
        return Err("ChaosConfig.server_cmd is empty".into());
    }
    if cfg.standby {
        return run_chaos_standby(cfg);
    }
    let started = Instant::now();
    let port = free_port()?;
    let addr = format!("127.0.0.1:{port}");
    let journal = cfg.journal.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("squid-chaos-{}.journal", std::process::id()))
    });
    let _ = std::fs::remove_file(&journal);
    let mut argv = cfg.server_cmd.clone();
    argv.extend([
        "--addr".into(),
        addr.clone(),
        "--journal".into(),
        journal.display().to_string(),
        "--fsync".into(),
        "always".into(),
        // The server is thread-per-connection over a fixed pool, and the
        // client fleet re-dials the instant a restart binds. Leave
        // headroom above the fleet or the clients monopolize every
        // worker and the readiness probe starves in the accept queue.
        "--workers".into(),
        (cfg.clients * 2 + 4).to_string(),
    ]);
    if let Some(n) = cfg.auto_compact {
        argv.extend(["--auto-compact".into(), n.to_string()]);
    }

    let mut child = spawn_server(&argv)?;
    let ready_deadline = Duration::from_secs(30);
    if let Err(e) = wait_ready(&addr, ready_deadline) {
        let _ = child.kill();
        let _ = child.wait();
        return Err(e);
    }

    let stop = AtomicBool::new(false);
    let pause = AtomicBool::new(false);
    let idle = AtomicUsize::new(0);
    let addrs = vec![addr.clone()];
    let logs: Result<Vec<ClientLog>, String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients.max(1))
            .map(|i| {
                let addrs = &addrs;
                let (stop, pause, idle) = (&stop, &pause, &idle);
                scope.spawn(move || client_thread(addrs, i, stop, pause, idle))
            })
            .collect();

        let mut kill_err = None;
        for _ in 0..cfg.kills {
            std::thread::sleep(cfg.kill_interval);
            // SIGKILL: no drain, no fsync-on-exit — recovery must come
            // from per-turn durability alone.
            let _ = child.kill();
            let _ = child.wait();
            match spawn_server(&argv) {
                Ok(c) => child = c,
                Err(e) => {
                    kill_err = Some(e);
                    break;
                }
            }
            if let Err(e) = wait_ready(&addr, ready_deadline) {
                kill_err = Some(e);
                break;
            }
        }
        // One more traffic window after the last recovery, then stop.
        std::thread::sleep(cfg.kill_interval);
        stop.store(true, Ordering::Relaxed);
        let joined: Result<Vec<ClientLog>, String> = handles
            .into_iter()
            .map(|h| h.join().map_err(|_| "client thread panicked".to_string())?)
            .collect();
        match kill_err {
            Some(e) => Err(e),
            None => joined,
        }
    });
    let logs = match logs {
        Ok(l) => l,
        Err(e) => {
            let _ = child.kill();
            let _ = child.wait();
            return Err(e);
        }
    };

    // ---- Verification against the final recovered server ----
    let verdict = verify(&addr, &logs);
    // The server child is ours either way; tear it down before reporting.
    let _ = child.kill();
    let _ = child.wait();
    let _ = std::fs::remove_file(&journal);
    let (lost_turns, sql_mismatches, compactions) = verdict?;

    let (turns_acked, counters) = tally(&logs);
    Ok(ChaosReport {
        kills: cfg.kills,
        sessions: logs.len(),
        turns_acked,
        lost_turns,
        sql_mismatches,
        compactions,
        promotions: 0,
        counters,
        wall: started.elapsed(),
    })
}

/// Sum the client logs' acked-turn count and retry work.
fn tally(logs: &[ClientLog]) -> (u64, RetryCounters) {
    let mut counters = RetryCounters::default();
    let mut turns_acked = 0u64;
    for log in logs {
        turns_acked += log.acked.len() as u64;
        counters.retries += log.counters.retries;
        counters.reconnects += log.counters.reconnects;
        counters.deduped += log.counters.deduped;
        counters.rate_limited += log.counters.rate_limited;
        counters.failovers += log.counters.failovers;
    }
    (turns_acked, counters)
}

/// One node of the replicated pair: fixed serve + replication ports and
/// its own journal, so a relaunch reuses the same identity.
struct Node {
    addr: String,
    repl: String,
    journal: PathBuf,
}

impl Node {
    fn argv(&self, cfg: &ChaosConfig, standby_of: Option<&str>) -> Vec<String> {
        let mut argv = cfg.server_cmd.clone();
        argv.extend([
            "--addr".into(),
            self.addr.clone(),
            "--journal".into(),
            self.journal.display().to_string(),
            "--fsync".into(),
            "always".into(),
            "--workers".into(),
            (cfg.clients * 2 + 4).to_string(),
            "--replicate-to".into(),
            self.repl.clone(),
        ]);
        if let Some(primary_repl) = standby_of {
            argv.extend(["--standby-of".into(), primary_repl.into()]);
        }
        if let Some(n) = cfg.auto_compact {
            argv.extend(["--auto-compact".into(), n.to_string()]);
        }
        argv
    }
}

/// Wait until every client thread has parked at the pause barrier.
fn wait_idle(idle: &AtomicUsize, n: usize, deadline: Duration) -> Result<(), String> {
    let t0 = Instant::now();
    while idle.load(Ordering::Relaxed) < n {
        if t0.elapsed() > deadline {
            return Err(format!(
                "only {}/{n} clients quiesced within {deadline:?}",
                idle.load(Ordering::Relaxed)
            ));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    Ok(())
}

/// Poll the primary's `health` until its replication lag is zero — the
/// precondition for a kill that can lose nothing acknowledged.
fn wait_zero_lag(addr: &str, deadline: Duration) -> Result<(), String> {
    let t0 = Instant::now();
    let mut last = String::new();
    loop {
        if let Ok(mut c) = Client::connect(addr) {
            let _ = c.set_read_timeout(Some(Duration::from_secs(2)));
            if let Ok(health) = c.health() {
                let lag = health
                    .get("replication")
                    .and_then(|r| r.get("lag_records"))
                    .and_then(Json::as_u64);
                if lag == Some(0) {
                    return Ok(());
                }
                last = health.encode();
            }
        }
        if t0.elapsed() > deadline {
            return Err(format!(
                "replication lag at {addr} never reached 0 within {deadline:?}; last health: {last}"
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Drive the `promote` verb on a standby until it reports `primary`.
fn promote_node(addr: &str, deadline: Duration) -> Result<(), String> {
    let t0 = Instant::now();
    loop {
        if let Ok(mut c) = Client::connect(addr) {
            let _ = c.set_read_timeout(Some(Duration::from_secs(15)));
            match c.promote() {
                Ok(role) if role == "primary" => return Ok(()),
                Ok(_) | Err(_) => {}
            }
        }
        if t0.elapsed() > deadline {
            return Err(format!(
                "standby at {addr} did not promote within {deadline:?}"
            ));
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The replicated-pair kill loop (see the module docs' `--standby`
/// section): quiesce → lag 0 → SIGKILL primary → promote → relaunch the
/// corpse as standby → resume, alternating roles every cycle.
fn run_chaos_standby(cfg: &ChaosConfig) -> Result<ChaosReport, String> {
    let started = Instant::now();
    let temp_tag = std::process::id();
    let nodes: Vec<Node> = (0..2)
        .map(|i| -> Result<Node, String> {
            Ok(Node {
                addr: format!("127.0.0.1:{}", free_port()?),
                repl: format!("127.0.0.1:{}", free_port()?),
                journal: std::env::temp_dir()
                    .join(format!("squid-chaos-standby-{temp_tag}-{i}.journal")),
            })
        })
        .collect::<Result<_, _>>()?;
    for node in &nodes {
        let _ = std::fs::remove_file(&node.journal);
    }

    let ready_deadline = Duration::from_secs(30);
    let quiesce_deadline = Duration::from_secs(30);
    // Node 0 starts as primary, node 1 as its standby.
    let mut children: Vec<Child> = Vec::new();
    children.push(spawn_server(&nodes[0].argv(cfg, None))?);
    if let Err(e) = wait_ready(&nodes[0].addr, ready_deadline) {
        kill_all(&mut children);
        return Err(e);
    }
    children.push(spawn_server(&nodes[1].argv(cfg, Some(&nodes[0].repl)))?);
    if let Err(e) = wait_ready(&nodes[1].addr, ready_deadline) {
        kill_all(&mut children);
        return Err(e);
    }

    let stop = AtomicBool::new(false);
    let pause = AtomicBool::new(false);
    let idle = AtomicUsize::new(0);
    let addrs: Vec<String> = nodes.iter().map(|n| n.addr.clone()).collect();
    let mut primary = 0usize;
    let mut promotions = 0u32;
    let logs: Result<Vec<ClientLog>, String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients.max(1))
            .map(|i| {
                let addrs = &addrs;
                let (stop, pause, idle) = (&stop, &pause, &idle);
                scope.spawn(move || client_thread(addrs, i, stop, pause, idle))
            })
            .collect();

        let mut cycle = || -> Result<(), String> {
            std::thread::sleep(cfg.kill_interval);
            // Quiesce: no turns in flight while the primaries swap.
            pause.store(true, Ordering::Relaxed);
            wait_idle(&idle, cfg.clients.max(1), quiesce_deadline)?;
            // The acceptance gate: lag must be *observed* at zero before
            // the kill — every acked turn is on the standby.
            wait_zero_lag(&nodes[primary].addr, quiesce_deadline)?;
            let _ = children[primary].kill();
            let _ = children[primary].wait();
            let standby = 1 - primary;
            promote_node(&nodes[standby].addr, quiesce_deadline)?;
            // Relaunch the corpse as the new primary's standby: it
            // re-bootstraps from a SNAP, so its stale journal is moot.
            children[primary] =
                spawn_server(&nodes[primary].argv(cfg, Some(&nodes[standby].repl)))?;
            wait_ready(&nodes[primary].addr, ready_deadline)?;
            primary = standby;
            promotions += 1;
            pause.store(false, Ordering::Relaxed);
            Ok(())
        };
        let mut loop_err = None;
        for _ in 0..cfg.kills {
            if let Err(e) = cycle() {
                loop_err = Some(e);
                break;
            }
        }
        if loop_err.is_none() {
            // Final traffic window, then drain replication once more so
            // verification reads a settled pair.
            std::thread::sleep(cfg.kill_interval);
            pause.store(true, Ordering::Relaxed);
            if let Err(e) = wait_idle(&idle, cfg.clients.max(1), quiesce_deadline)
                .and_then(|()| wait_zero_lag(&nodes[primary].addr, quiesce_deadline))
            {
                loop_err = Some(e);
            }
        }
        stop.store(true, Ordering::Relaxed);
        pause.store(false, Ordering::Relaxed);
        let joined: Result<Vec<ClientLog>, String> = handles
            .into_iter()
            .map(|h| h.join().map_err(|_| "client thread panicked".to_string())?)
            .collect();
        match loop_err {
            Some(e) => Err(e),
            None => joined,
        }
    });
    let logs = match logs {
        Ok(l) => l,
        Err(e) => {
            kill_all(&mut children);
            return Err(e);
        }
    };

    // ---- Verification against the final primary ----
    let verdict = verify(&nodes[primary].addr, &logs);
    kill_all(&mut children);
    for node in &nodes {
        let _ = std::fs::remove_file(&node.journal);
    }
    let (lost_turns, sql_mismatches, compactions) = verdict?;
    let (turns_acked, counters) = tally(&logs);
    Ok(ChaosReport {
        kills: cfg.kills,
        sessions: logs.len(),
        turns_acked,
        lost_turns,
        sql_mismatches,
        compactions,
        promotions,
        counters,
        wall: started.elapsed(),
    })
}

fn kill_all(children: &mut [Child]) {
    for c in children {
        let _ = c.kill();
        let _ = c.wait();
    }
}

/// Check both invariants against the live recovered server; returns
/// `(lost_turns, sql_mismatches, compactions)`.
fn verify(addr: &str, logs: &[ClientLog]) -> Result<(u64, u64, u64), String> {
    let mut probe = RetryClient::with_policy(addr, chaos_policy());
    let adb = Arc::new(
        ADb::build(&test_fixtures::mini_imdb()).map_err(|e| format!("verify αDB build: {e}"))?,
    );
    let replayer = SessionManager::new(adb);
    let mut lost = 0u64;
    let mut mismatches = 0u64;
    for log in logs {
        let cursor = probe
            .adopt(log.session)
            .map_err(|e| format!("session {} stats: {e}", log.session))?;
        // Every acked turn advanced the cursor past its sequence number;
        // a cursor below the acked count means acknowledged turns died
        // with the crash.
        lost += (log.acked.len() as u64).saturating_sub(cursor);
        let server_sql = probe
            .sql(log.session)
            .map_err(|e| format!("session {} sql: {e}", log.session))?;
        let rid = replayer.create_session();
        for op in &log.acked {
            replayer
                .apply_op(rid, op)
                .map_err(|e| format!("replaying acked op failed ({e}) — ledger corrupt?"))?;
        }
        let replayed_sql = replayer
            .with_session(rid, |s| Ok(s.discovery().map(|d| d.sql())))
            .map_err(|e| format!("replay session: {e}"))?;
        if server_sql != replayed_sql {
            mismatches += 1;
        }
    }
    let health = probe.health().map_err(|e| format!("health: {e}"))?;
    let compactions = health
        .get("journal")
        .and_then(|j| j.get("compactions"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    Ok((lost, mismatches, compactions))
}
