//! `squid-serve` server core: a hand-rolled [`TcpListener`] frontend over
//! a [`SessionManager`] fleet.
//!
//! ## Architecture
//!
//! ```text
//!             accept()          bounded queue            worker pool
//! clients ──► acceptor ──try_send(conn)──► mpsc ──recv──► worker 0..W
//!                │  full? reply {overloaded} + close        │
//!                ▼                                          ▼
//!          admission control                    line loop: read → parse →
//!          (fleet connection cap)               SessionManager → respond
//! ```
//!
//! One acceptor thread hands connections to a **fixed** pool of `workers`
//! threads through a bounded queue — the two numbers together are the
//! connection admission bound: at most `workers` connections are being
//! served and `max_pending` are waiting; anything beyond gets an explicit
//! `{"ok":false,"error":{"code":"overloaded"}}` line and a close, never a
//! silent drop. Session admission is a separate fleet-wide cap
//! (`max_sessions`) checked on `create`.
//!
//! Each worker serves its connection to completion: newline-delimited
//! JSON requests ([`crate::protocol`]) dispatched straight onto the
//! session API. A turn served here takes the same incremental path a
//! local [`squid_core::SquidSession`] turn takes — the response carries
//! the `incremental` flag and cache counters of the underlying
//! [`squid_core::DiscoveryDelta`] so clients (and CI) can verify that.
//!
//! Protocol errors are *responses*, never worker deaths; the two framing
//! errors (oversized line, invalid UTF-8) poison the byte stream, so the
//! server replies and closes that connection only. Idle connections are
//! reaped after `idle_timeout`; a partially-received request must
//! complete within `read_timeout`.
//!
//! ## Graceful shutdown
//!
//! [`Server::shutdown`] (or the `shutdown` verb, or the binary's SIGTERM
//! handler) sets a stop flag, wakes the acceptor, and drains: in-flight
//! turns complete and their responses are written, queued-but-unserved
//! connections get a `shutting_down` reply, workers join, the journal is
//! fsynced, and (when configured) an αDB snapshot is saved. A fleet
//! killed *without* the graceful path recovers from its journal on the
//! next start ([`SessionManager::recover`]), which the CI serving smoke
//! exercises with a literal SIGTERM mid-load.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use squid_adb::ADb;
use squid_core::{Discovery, DiscoveryDelta, SessionManager, SquidError};

use crate::json::Json;
use crate::protocol::{self, ErrorCode, Request, Verb};
use crate::replication::{self, ReplListener, ReplState, Role, StandbyLink};

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see [`Server::local_addr`]).
    pub addr: String,
    /// Fixed worker-thread count — the concurrent-connection bound.
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker; beyond this,
    /// admission control replies `overloaded` and closes.
    pub max_pending: usize,
    /// Fleet-wide live-session cap enforced on `create`.
    pub max_sessions: usize,
    /// Longest accepted request line in bytes (framing bound).
    pub max_line_bytes: usize,
    /// A partially-received request must complete within this.
    pub read_timeout: Duration,
    /// Per-response socket write timeout.
    pub write_timeout: Duration,
    /// Connections idle (no request in progress) past this are reaped.
    pub idle_timeout: Duration,
    /// Sweep cadence for TTL session eviction (`None` = no sweeper; only
    /// useful when the manager was built `with_ttl`).
    pub sweep_interval: Option<Duration>,
    /// Save an αDB snapshot here during graceful shutdown.
    pub snapshot_on_shutdown: Option<PathBuf>,
    /// Per-session token-bucket rate limit on mutating turns (`None` =
    /// unlimited). Refusals are `rate_limited` replies carrying a
    /// `retry_after_ms` hint, never dropped connections.
    pub rate_limit: Option<RateLimit>,
    /// Graceful degradation: once at least this many accepted connections
    /// are waiting for a worker, cheap-to-retry verbs (`suggest`,
    /// fleet-wide `stats`) are shed with `overloaded` + `retry_after_ms`
    /// so accepted turns keep their workers. The default equals the
    /// default `max_pending` — shedding starts only when the backlog is
    /// saturated.
    pub shed_pending: usize,
    /// Bind a replication listener here (the primary side of a
    /// warm-standby pair; see [`crate::replication`]). Port 0 picks a
    /// free port (see [`Server::repl_addr`]). A standby node may bind
    /// one too — it serves nothing until promotion.
    pub replicate_to: Option<String>,
    /// Start as a standby of this primary *replication* address: connect
    /// there, absorb the snapshot bootstrap and journal stream, serve
    /// reads, and refuse mutations with `not_primary` until promoted.
    pub standby_of: Option<String>,
}

/// Token-bucket parameters of the per-session rate limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained mutating-turns-per-second budget.
    pub per_sec: f64,
    /// Burst capacity (the bucket size).
    pub burst: f64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            max_pending: 64,
            max_sessions: 4096,
            max_line_bytes: 256 << 10,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(300),
            sweep_interval: None,
            snapshot_on_shutdown: None,
            rate_limit: None,
            shed_pending: 64,
            replicate_to: None,
            standby_of: None,
        }
    }
}

/// How often blocked reads wake to re-check deadlines and the stop flag.
const POLL: Duration = Duration::from_millis(50);

/// `retry_after_ms` hint on backlog refusals: one worker-queue drain is a
/// short wait, not a failover.
const RETRY_OVERLOADED_MS: u64 = 100;

/// `retry_after_ms` hint on the session cap: a slot opens when a session
/// closes or expires, which is slower than a backlog drain.
const RETRY_SESSION_LIMIT_MS: u64 = 1000;

/// Monotonic serving counters (all relaxed: they are reporting, not
/// synchronization).
#[derive(Debug, Default)]
struct Metrics {
    accepted: AtomicU64,
    rejected_overloaded: AtomicU64,
    requests: AtomicU64,
    turns: AtomicU64,
    protocol_errors: AtomicU64,
    connections_closed: AtomicU64,
    idle_reaped: AtomicU64,
    deduped: AtomicU64,
    rate_limited: AtomicU64,
    shed: AtomicU64,
}

/// Point-in-time copy of the server's counters (the `stats` verb and
/// [`Server::metrics`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerMetrics {
    /// Connections accepted by the listener.
    pub accepted: u64,
    /// Connections refused by admission control (got an `overloaded`
    /// reply instead of service).
    pub rejected_overloaded: u64,
    /// Requests dispatched (well-formed or not).
    pub requests: u64,
    /// Session-mutating turns served (`add`/`remove`/feedback verbs).
    pub turns: u64,
    /// Error responses sent (protocol or discovery level).
    pub protocol_errors: u64,
    /// Connections closed (any reason).
    pub connections_closed: u64,
    /// Connections reaped by the idle timeout.
    pub idle_reaped: u64,
    /// Retried turns acknowledged without re-running (sequence dedupe).
    pub deduped: u64,
    /// Turns refused by the per-session rate limit.
    pub rate_limited: u64,
    /// Cheap verbs shed under backlog pressure.
    pub shed: u64,
}

impl Metrics {
    fn snapshot(&self) -> ServerMetrics {
        ServerMetrics {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            turns: self.turns.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            idle_reaped: self.idle_reaped.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
            rate_limited: self.rate_limited.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

/// One session's (or identified client's) token bucket (see
/// [`RateLimit`]).
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Take one token from `b`, or report how many ms until one accrues.
fn bucket_take(b: &mut Bucket, rl: RateLimit) -> Result<(), u64> {
    let now = Instant::now();
    let dt = now.duration_since(b.last).as_secs_f64();
    b.tokens = (b.tokens + dt * rl.per_sec).min(rl.burst);
    b.last = now;
    if b.tokens >= 1.0 {
        b.tokens -= 1.0;
        Ok(())
    } else {
        let wait_s = (1.0 - b.tokens) / rl.per_sec.max(f64::MIN_POSITIVE);
        Err((wait_s * 1000.0).ceil() as u64)
    }
}

/// Admission counters of one identified client (the `client` handshake)
/// — who is consuming the fleet, not just which session.
#[derive(Debug, Default, Clone, Copy)]
struct ClientStats {
    requests: u64,
    turns: u64,
    rate_limited: u64,
    shed: u64,
}

/// Per-connection state: what this connection has told us about itself.
struct ConnCtx {
    /// Identity from the optional `client <id>` handshake; keys the
    /// per-client token bucket and admission counters.
    client: Option<String>,
}

/// State shared by the acceptor, every worker, and the [`Server`] handle.
struct Shared {
    manager: Arc<SessionManager>,
    cfg: ServeConfig,
    /// The actually-bound address (port 0 resolved) — the wake-up target
    /// for unblocking the acceptor on shutdown.
    addr: SocketAddr,
    stop: AtomicBool,
    metrics: Metrics,
    /// Server start time (uptime in the `health` reply).
    started: Instant,
    /// Accepted connections currently waiting for a worker — the backlog
    /// depth the load-shedding decision reads.
    pending: AtomicUsize,
    /// Per-session rate-limit buckets (present only while `rate_limit`
    /// is configured; created only for validated session ids, pruned on
    /// `close`, unknown-session turns, and the TTL sweep).
    buckets: Mutex<HashMap<u64, Bucket>>,
    /// Per-session last acknowledged sequenced turn and its response
    /// fields: a retry of that exact turn gets the original answer back
    /// (plus `deduped`) instead of re-running. Pruned like `buckets`;
    /// after a crash the cache is empty and duplicates get a minimal ack.
    acked: Mutex<HashMap<u64, AckedTurn>>,
    /// Replication role, promotion latch, and lag bookkeeping. Always
    /// present — an unreplicated server is simply a primary with no
    /// standby attached.
    repl: Arc<ReplState>,
    /// Per-client token buckets (clients that sent the `client`
    /// handshake; charged *in addition to* the per-session bucket).
    client_buckets: Mutex<HashMap<String, Bucket>>,
    /// Per-client admission counters, surfaced by `stats` and `health`.
    clients: Mutex<HashMap<String, ClientStats>>,
}

/// A session's last acknowledged sequence number and the response fields
/// it was answered with.
type AckedTurn = (u64, Vec<(String, Json)>);

impl Shared {
    /// Take one token from `session`'s bucket, or report how long until
    /// one accrues.
    fn take_token(&self, session: u64, rl: RateLimit) -> Result<(), u64> {
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        let b = buckets.entry(session).or_insert(Bucket {
            tokens: rl.burst,
            last: Instant::now(),
        });
        bucket_take(b, rl)
    }

    /// Take one token from an identified client's bucket — a second gate
    /// on top of the session bucket, so one client driving many sessions
    /// still has a bounded total budget.
    fn take_client_token(&self, client: &str, rl: RateLimit) -> Result<(), u64> {
        let mut buckets = self
            .client_buckets
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let b = buckets.entry(client.to_string()).or_insert(Bucket {
            tokens: rl.burst,
            last: Instant::now(),
        });
        bucket_take(b, rl)
    }

    /// Bump an identified client's admission counters (no-op for
    /// anonymous connections).
    fn bump_client(&self, ctx: &ConnCtx, f: impl FnOnce(&mut ClientStats)) {
        if let Some(id) = &ctx.client {
            let mut clients = self.clients.lock().unwrap_or_else(|e| e.into_inner());
            f(clients.entry(id.clone()).or_default());
        }
    }

    /// Forget per-session serving state (rate bucket, dedupe cache).
    fn forget_session(&self, session: u64) {
        self.buckets
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&session);
        self.acked
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&session);
    }

    /// Drop per-session serving state for sessions the manager no longer
    /// hosts: the TTL sweep, lazy expiry, and durability fail-stops all
    /// remove sessions without going through the `close` verb, and their
    /// buckets and cached responses must not accumulate forever.
    fn prune_serving_state(&self) {
        let live: std::collections::HashSet<u64> = self.manager.active_ids().into_iter().collect();
        self.buckets
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|id, _| live.contains(id));
        self.acked
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|id, _| live.contains(id));
    }
}

/// What a graceful [`Server::shutdown`] did.
#[derive(Debug, Clone, Default)]
pub struct ShutdownReport {
    /// Final serving counters.
    pub metrics: ServerMetrics,
    /// Whether the journal flushed cleanly.
    pub journal_synced: bool,
    /// Bytes of the αDB snapshot written on the way out, when configured.
    pub snapshot_bytes: Option<u64>,
    /// Sessions still live at shutdown (journaled, so recoverable).
    pub live_sessions: usize,
}

/// Bind the listening socket with `SO_REUSEADDR`, so a restarted server
/// reclaims its address immediately instead of failing while the killed
/// process's connections drain out of `TIME_WAIT` — a fleet that is
/// SIGKILLed and relaunched (the chaos harness, a supervisor restart
/// loop) must come back on the same port without a cooldown. std's
/// `TcpListener::bind` does not set the option, so on Linux/IPv4 the
/// socket is built by hand against the C runtime std already links (the
/// same no-crates route the CLI takes for `signal`); everywhere else
/// this falls back to the std bind.
#[cfg(target_os = "linux")]
fn bind_reuseaddr(addr: &str) -> io::Result<TcpListener> {
    use std::net::ToSocketAddrs;
    use std::os::unix::io::FromRawFd;

    let resolved = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable bind address"))?;
    let SocketAddr::V4(v4) = resolved else {
        return TcpListener::bind(addr); // IPv6: take the std path
    };

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const u8, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0x80000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    // SAFETY: plain syscalls on a fresh fd; every failure path closes it.
    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fail = |fd: i32| -> io::Error {
            let e = io::Error::last_os_error();
            close(fd);
            e
        };
        let one: i32 = 1;
        if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) != 0 {
            return Err(fail(fd));
        }
        // struct sockaddr_in: family u16 (native), port u16 (BE),
        // addr u32 (BE), 8 bytes of zero padding.
        let mut sa = [0u8; 16];
        sa[0..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
        sa[2..4].copy_from_slice(&v4.port().to_be_bytes());
        sa[4..8].copy_from_slice(&v4.ip().octets());
        if bind(fd, sa.as_ptr(), sa.len() as u32) != 0 {
            return Err(fail(fd));
        }
        if listen(fd, 128) != 0 {
            return Err(fail(fd));
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

#[cfg(not(target_os = "linux"))]
fn bind_reuseaddr(addr: &str) -> io::Result<TcpListener> {
    TcpListener::bind(addr)
}

/// A running serving frontend (see the module docs).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
    repl_listener: Option<ReplListener>,
    standby_link: Option<StandbyLink>,
}

impl Server {
    /// Bind and start serving `manager` per `cfg`. Returns once the
    /// listener is bound and every worker is running.
    pub fn start(manager: Arc<SessionManager>, cfg: ServeConfig) -> io::Result<Server> {
        let listener = bind_reuseaddr(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers_n = cfg.workers.max(1);
        let role = if cfg.standby_of.is_some() {
            Role::Standby
        } else {
            Role::Primary
        };
        let repl = Arc::new(ReplState::new(role));
        if role == Role::Primary {
            // The address SNAP frames carry as the `not_primary` hint.
            repl.set_primary_addr(&addr.to_string());
        }
        let shared = Arc::new(Shared {
            manager,
            cfg,
            addr,
            stop: AtomicBool::new(false),
            metrics: Metrics::default(),
            started: Instant::now(),
            pending: AtomicUsize::new(0),
            buckets: Mutex::new(HashMap::new()),
            acked: Mutex::new(HashMap::new()),
            repl: Arc::clone(&repl),
            client_buckets: Mutex::new(HashMap::new()),
            clients: Mutex::new(HashMap::new()),
        });
        let repl_listener = match &shared.cfg.replicate_to {
            Some(bind) => Some(replication::start_repl_listener(
                Arc::clone(&shared.manager),
                bind.as_str(),
                Arc::clone(&repl),
            )?),
            None => None,
        };
        let standby_link = match &shared.cfg.standby_of {
            Some(primary) => Some(replication::start_standby_link(
                Arc::clone(&shared.manager),
                primary.clone(),
                Arc::clone(&repl),
            )?),
            None => None,
        };
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(shared.cfg.max_pending);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers_n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("squid-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .expect("spawn worker")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("squid-serve-acceptor".to_string())
                // The acceptor owns the only sender: when it exits (stop
                // flag) the channel closes and idle workers drain out.
                .spawn(move || accept_loop(&shared, listener, tx))
                .expect("spawn acceptor")
        };
        let sweeper = shared.cfg.sweep_interval.map(|every| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("squid-serve-sweeper".to_string())
                .spawn(move || {
                    while !shared.stop.load(Ordering::SeqCst) {
                        std::thread::sleep(every.min(POLL * 4));
                        if shared.manager.evict_expired() > 0 {
                            shared.prune_serving_state();
                        }
                    }
                })
                .expect("spawn sweeper")
        });
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
            sweeper,
            repl_listener,
            standby_link,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The replication listener's bound address, when one is configured
    /// (resolves a `--replicate-to` port 0).
    pub fn repl_addr(&self) -> Option<SocketAddr> {
        self.repl_listener.as_ref().map(ReplListener::local_addr)
    }

    /// The node's replication state (role, lag, promotion latch).
    pub fn repl(&self) -> &Arc<ReplState> {
        &self.shared.repl
    }

    /// Promote this node to primary (no-op when it already is), waiting
    /// up to `deadline` for the standby link to drain and flip. Returns
    /// the role afterwards — [`Role::Primary`] on success.
    pub fn promote(&self, deadline: Duration) -> Role {
        do_promote(&self.shared, deadline)
    }

    /// The hosted fleet.
    pub fn manager(&self) -> &Arc<SessionManager> {
        &self.shared.manager
    }

    /// Current serving counters.
    pub fn metrics(&self) -> ServerMetrics {
        self.shared.metrics.snapshot()
    }

    /// Whether a stop was requested (`shutdown` verb, signal, or
    /// [`Server::request_stop`]).
    pub fn stop_requested(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Request a graceful stop without blocking (the drain happens in
    /// [`Server::shutdown`]). Safe to call more than once.
    pub fn request_stop(&self) {
        request_stop(&self.shared, self.addr);
    }

    /// Gracefully stop: drain in-flight turns, reply `shutting_down` to
    /// queued connections, join every thread, fsync the journal, and save
    /// the configured shutdown snapshot.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.request_stop();
        // Wind the replication threads down alongside the serving ones:
        // the stop flag unblocks the standby link's frame reads and the
        // sender's ack waits within one poll interval.
        self.shared.repl.request_stop();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(s) = self.sweeper.take() {
            let _ = s.join();
        }
        if let Some(l) = self.repl_listener.take() {
            l.shutdown();
        }
        if let Some(l) = self.standby_link.take() {
            l.shutdown();
        }
        let journal_synced = self.shared.manager.journal_sync().is_ok();
        let snapshot_bytes = self
            .shared
            .cfg
            .snapshot_on_shutdown
            .as_ref()
            .and_then(|p| self.shared.manager.adb().save_snapshot(p).ok());
        ShutdownReport {
            metrics: self.metrics(),
            journal_synced,
            snapshot_bytes,
            live_sessions: self.shared.manager.session_count(),
        }
    }
}

/// Set the stop flag and wake the acceptor out of its blocking
/// `accept()` with a throwaway connection to ourselves.
fn request_stop(shared: &Shared, addr: SocketAddr) {
    if !shared.stop.swap(true, Ordering::SeqCst) {
        let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener, tx: SyncSender<TcpStream>) {
    loop {
        let conn = match listener.accept() {
            Ok((conn, _)) => conn,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            // The wake-up connection (or a late arrival): decline politely.
            respond_and_close(conn, ErrorCode::ShuttingDown, "server is draining", None);
            return;
        }
        shared.metrics.accepted.fetch_add(1, Ordering::Relaxed);
        // Count the connection as pending *before* it can be dequeued: if
        // the worker's decrement landed first, the counter would wrap to
        // usize::MAX and shed_cheap would spuriously shed everything
        // until it rebalanced.
        shared.pending.fetch_add(1, Ordering::Relaxed);
        match tx.try_send(conn) {
            Ok(()) => {}
            Err(TrySendError::Full(conn)) => {
                shared.pending.fetch_sub(1, Ordering::Relaxed);
                shared
                    .metrics
                    .rejected_overloaded
                    .fetch_add(1, Ordering::Relaxed);
                respond_and_close(
                    conn,
                    ErrorCode::Overloaded,
                    "connection limit reached; retry later",
                    Some(RETRY_OVERLOADED_MS),
                );
            }
            Err(TrySendError::Disconnected(conn)) => {
                shared.pending.fetch_sub(1, Ordering::Relaxed);
                respond_and_close(conn, ErrorCode::ShuttingDown, "server is draining", None);
                return;
            }
        }
    }
}

/// Best-effort single error line to a connection we will not serve.
fn respond_and_close(
    mut conn: TcpStream,
    code: ErrorCode,
    detail: &str,
    retry_after_ms: Option<u64>,
) {
    let _ = conn.set_write_timeout(Some(Duration::from_millis(500)));
    let resp = match retry_after_ms {
        Some(ms) => protocol::retry_error_response(code, detail, None, ms),
        None => protocol::error_response(code, detail, None),
    };
    let mut line = resp.encode();
    line.push('\n');
    let _ = conn.write_all(line.as_bytes());
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // Lock scope: hold the receiver only for the dequeue, never while
        // serving (siblings must keep pulling connections).
        let conn = match rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        let Ok(conn) = conn else {
            return; // channel closed: acceptor exited and queue is drained
        };
        shared.pending.fetch_sub(1, Ordering::Relaxed);
        if shared.stop.load(Ordering::SeqCst) {
            respond_and_close(conn, ErrorCode::ShuttingDown, "server is draining", None);
            shared
                .metrics
                .connections_closed
                .fetch_add(1, Ordering::Relaxed);
            continue;
        }
        serve_connection(shared, conn);
        shared
            .metrics
            .connections_closed
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// Why the per-connection line loop ended.
enum LineEvent {
    /// One complete request line (newline stripped, may be empty).
    Line(Vec<u8>),
    /// Peer closed (or half-closed) the stream.
    Eof,
    /// No request started within the idle timeout.
    Idle,
    /// A started request did not complete within the read timeout.
    Stalled,
    /// The line exceeded `max_line_bytes`.
    TooLong,
    /// Stop flag observed while no request was in progress.
    Stopped,
    /// Transport error.
    Failed,
}

/// Buffered line reader with deadline tracking: blocked reads wake every
/// [`POLL`] to re-check the idle/read deadlines and the stop flag, so
/// reaping and shutdown never wait on a silent peer.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    max_line: usize,
    idle_timeout: Duration,
    read_timeout: Duration,
}

impl LineReader {
    fn next_line(&mut self, stop: &AtomicBool) -> LineEvent {
        let started = Instant::now();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(i) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=i).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return LineEvent::Line(line);
            }
            if self.buf.len() > self.max_line {
                return LineEvent::TooLong;
            }
            if stop.load(Ordering::SeqCst) {
                return LineEvent::Stopped;
            }
            let limit = if self.buf.is_empty() {
                self.idle_timeout
            } else {
                self.read_timeout
            };
            if started.elapsed() > limit {
                return if self.buf.is_empty() {
                    LineEvent::Idle
                } else {
                    LineEvent::Stalled
                };
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return LineEvent::Eof,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return LineEvent::Failed,
            }
        }
    }
}

/// After responding, keep the connection or close it.
#[derive(PartialEq)]
enum Flow {
    Continue,
    Close,
}

fn serve_connection(shared: &Shared, stream: TcpStream) {
    // Round-trip latency is the product here: defeat Nagle+delayed-ack.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let _ = stream.set_read_timeout(Some(POLL));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = LineReader {
        stream: read_half,
        buf: Vec::new(),
        max_line: shared.cfg.max_line_bytes,
        idle_timeout: shared.cfg.idle_timeout,
        read_timeout: shared.cfg.read_timeout,
    };
    let mut out = stream;
    let mut ctx = ConnCtx { client: None };
    let mut send = |resp: &Json, is_err: bool| -> bool {
        if is_err {
            shared
                .metrics
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
        }
        let mut line = resp.encode();
        line.push('\n');
        out.write_all(line.as_bytes()).is_ok()
    };
    loop {
        match reader.next_line(&shared.stop) {
            LineEvent::Line(bytes) => {
                let Ok(text) = String::from_utf8(bytes) else {
                    // The stream is not decodable; framing is untrustworthy
                    // beyond this point. Reply, then close.
                    let resp = protocol::error_response(
                        ErrorCode::InvalidUtf8,
                        "request bytes are not UTF-8",
                        None,
                    );
                    send(&resp, true);
                    return;
                };
                let line = text.trim();
                if line.is_empty() {
                    continue;
                }
                shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
                let (resp, is_err, flow) = dispatch_line(shared, &mut ctx, line);
                if !send(&resp, is_err) || flow == Flow::Close {
                    return;
                }
            }
            LineEvent::Eof | LineEvent::Stopped | LineEvent::Failed => return,
            LineEvent::Idle => {
                shared.metrics.idle_reaped.fetch_add(1, Ordering::Relaxed);
                let resp = protocol::error_response(
                    ErrorCode::IdleTimeout,
                    "connection idle past the reaping deadline",
                    None,
                );
                send(&resp, true);
                return;
            }
            LineEvent::Stalled => {
                let resp = protocol::error_response(
                    ErrorCode::IdleTimeout,
                    "request did not complete within the read timeout",
                    None,
                );
                send(&resp, true);
                return;
            }
            LineEvent::TooLong => {
                // The remainder of the oversized line is undelivered; the
                // stream cannot be re-synchronized. Reply, then close.
                let resp = protocol::error_response(
                    ErrorCode::LineTooLong,
                    &format!("request line exceeds {} bytes", shared.cfg.max_line_bytes),
                    None,
                );
                send(&resp, true);
                return;
            }
        }
    }
}

/// Parse and execute one request line. Returns the response, whether it
/// is an error (for the counters), and whether to keep the connection.
fn dispatch_line(shared: &Shared, ctx: &mut ConnCtx, line: &str) -> (Json, bool, Flow) {
    let req = match protocol::parse_request(line) {
        Ok(req) => req,
        Err(e) => return (Json::from(&e), true, Flow::Continue),
    };
    let id = req.id;
    match execute(shared, ctx, req) {
        Ok((resp, flow)) => (resp, false, flow),
        Err(r) => {
            let resp = if matches!(r.code, ErrorCode::NotPrimary) {
                protocol::not_primary_response(&r.detail, id, r.primary.as_deref())
            } else {
                match r.retry_after_ms {
                    Some(ms) => protocol::retry_error_response(r.code, &r.detail, id, ms),
                    None => protocol::error_response(r.code, &r.detail, id),
                }
            };
            (resp, true, Flow::Continue)
        }
    }
}

/// A refused request: the stable code, the human detail, and — for
/// back-pressure refusals — when retrying is expected to succeed.
struct Refusal {
    code: ErrorCode,
    detail: String,
    retry_after_ms: Option<u64>,
    /// `not_primary` refusals only: the primary's client address.
    primary: Option<String>,
}

impl Refusal {
    fn new(code: ErrorCode, detail: impl Into<String>) -> Refusal {
        Refusal {
            code,
            detail: detail.into(),
            retry_after_ms: None,
            primary: None,
        }
    }

    fn retry(code: ErrorCode, detail: impl Into<String>, after_ms: u64) -> Refusal {
        Refusal {
            code,
            detail: detail.into(),
            retry_after_ms: Some(after_ms),
            primary: None,
        }
    }

    fn not_primary(primary: Option<String>) -> Refusal {
        Refusal {
            code: ErrorCode::NotPrimary,
            detail: "standby refuses mutations; dial the primary".into(),
            retry_after_ms: None,
            primary,
        }
    }
}

/// Refuse a mutation on a standby, hinting at the primary's address.
fn require_primary(shared: &Shared) -> Result<(), Refusal> {
    if shared.repl.role() == Role::Standby {
        return Err(Refusal::not_primary(shared.repl.primary_addr()));
    }
    Ok(())
}

/// Run a promotion to completion (or `deadline`): latch the request and
/// wait for the standby link thread to drain the stream and flip the
/// role. On success the node starts hinting its own address as primary.
/// Idempotent — promoting a primary is a no-op that reports success.
fn do_promote(shared: &Shared, deadline: Duration) -> Role {
    if shared.repl.role() == Role::Primary {
        return Role::Primary;
    }
    shared.repl.request_promotion();
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if shared.repl.role() == Role::Primary {
            shared.repl.set_primary_addr(&shared.addr.to_string());
            return Role::Primary;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    shared.repl.role()
}

type ExecResult = Result<(Json, Flow), Refusal>;

/// Like [`squid_error`], but drops the session's serving-side state
/// (rate bucket, dedupe cache) when the manager reports the session
/// gone — it can vanish between validation and apply via the TTL sweep
/// or a durability fail-stop, and nothing else would prune those maps.
fn session_error(shared: &Shared, session: u64, e: SquidError) -> Refusal {
    if matches!(e, SquidError::UnknownSession { .. }) {
        shared.forget_session(session);
    }
    squid_error(e)
}

fn squid_error(e: SquidError) -> Refusal {
    let code = match &e {
        SquidError::UnknownSession { .. } => ErrorCode::UnknownSession,
        SquidError::SequenceGap { .. } => ErrorCode::BadRequest,
        SquidError::Io(_) | SquidError::Corrupt { .. } => ErrorCode::Internal,
        _ => ErrorCode::Discovery,
    };
    Refusal::new(code, e.to_string())
}

/// Graceful degradation: refuse a cheap-to-retry verb when the worker
/// backlog is saturated, so accepted turns keep their workers. Turns are
/// never shed — a turn carries session state the client would have to
/// replay; a shed `suggest`/`stats` costs one retry.
fn shed_cheap(shared: &Shared, ctx: &ConnCtx, verb: &str) -> Result<(), Refusal> {
    if shared.pending.load(Ordering::Relaxed) >= shared.cfg.shed_pending {
        shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
        shared.bump_client(ctx, |c| c.shed += 1);
        return Err(Refusal::retry(
            ErrorCode::Overloaded,
            format!("{verb} shed under load; retry shortly"),
            RETRY_OVERLOADED_MS,
        ));
    }
    Ok(())
}

fn execute(shared: &Shared, ctx: &mut ConnCtx, req: Request) -> ExecResult {
    let m = &shared.manager;
    let adb = Arc::clone(m.adb());
    let id = req.id;
    let name = req.verb.name();
    shared.bump_client(ctx, |c| c.requests += 1);
    let ok =
        |fields: Vec<(String, Json)>| Ok((protocol::ok_response(name, id, fields), Flow::Continue));
    match req.verb {
        Verb::Ping => ok(vec![("pong".into(), Json::Bool(true))]),
        Verb::Create => {
            require_primary(shared)?;
            if shared.stop.load(Ordering::SeqCst) {
                return Err(Refusal::new(ErrorCode::ShuttingDown, "server is draining"));
            }
            if m.session_count() >= shared.cfg.max_sessions {
                return Err(Refusal::retry(
                    ErrorCode::SessionLimit,
                    format!("session limit {} reached", shared.cfg.max_sessions),
                    RETRY_SESSION_LIMIT_MS,
                ));
            }
            let sid = m.create_session();
            ok(vec![("session".into(), Json::Int(sid as i64))])
        }
        Verb::Apply { session, op, seq } => {
            require_primary(shared)?;
            // Validate before charging rate-limit state: otherwise a bogus
            // session id mints a token bucket that is never pruned, and the
            // caller's *second* probe reads `rate_limited` instead of
            // `unknown_session`.
            if !m.contains_session(session) {
                shared.forget_session(session);
                return Err(squid_error(SquidError::UnknownSession { id: session }));
            }
            if let Some(rl) = shared.cfg.rate_limit {
                // An identified client's own budget gates first: one
                // client fanning out over many sessions is still bounded.
                if let Some(cid) = ctx.client.clone() {
                    if let Err(wait_ms) = shared.take_client_token(&cid, rl) {
                        shared.metrics.rate_limited.fetch_add(1, Ordering::Relaxed);
                        shared.bump_client(ctx, |c| c.rate_limited += 1);
                        return Err(Refusal::retry(
                            ErrorCode::RateLimited,
                            format!("client {cid} exceeded its turn budget"),
                            wait_ms,
                        ));
                    }
                }
                if let Err(wait_ms) = shared.take_token(session, rl) {
                    shared.metrics.rate_limited.fetch_add(1, Ordering::Relaxed);
                    shared.bump_client(ctx, |c| c.rate_limited += 1);
                    return Err(Refusal::retry(
                        ErrorCode::RateLimited,
                        format!("session {session} exceeded its turn budget"),
                        wait_ms,
                    ));
                }
            }
            match seq {
                None => {
                    shared.metrics.turns.fetch_add(1, Ordering::Relaxed);
                    shared.bump_client(ctx, |c| c.turns += 1);
                    let delta = m
                        .apply_op(session, &op)
                        .map_err(|e| session_error(shared, session, e))?;
                    match delta {
                        Some(delta) => ok(delta_fields(&delta)),
                        None => ok(vec![]),
                    }
                }
                Some(seq) => match m
                    .apply_op_at(session, seq, &op)
                    .map_err(|e| session_error(shared, session, e))?
                {
                    squid_core::SeqOutcome::Applied(delta) => {
                        shared.metrics.turns.fetch_add(1, Ordering::Relaxed);
                        shared.bump_client(ctx, |c| c.turns += 1);
                        let fields = match delta {
                            Some(delta) => delta_fields(&delta),
                            None => vec![],
                        };
                        shared
                            .acked
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .insert(session, (seq, fields.clone()));
                        ok(fields)
                    }
                    squid_core::SeqOutcome::Duplicate => {
                        // An acknowledged turn retried: hand back the
                        // original answer when we still have it (same
                        // process), else a minimal ack (post-crash replay
                        // already restored the state the answer described).
                        shared.metrics.deduped.fetch_add(1, Ordering::Relaxed);
                        let cached = shared
                            .acked
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .get(&session)
                            .filter(|(s, _)| *s == seq)
                            .map(|(_, fields)| fields.clone());
                        let mut fields = cached.unwrap_or_default();
                        fields.push(("deduped".into(), Json::Bool(true)));
                        ok(fields)
                    }
                },
            }
        }
        Verb::Suggest { session, k } => {
            shed_cheap(shared, ctx, "suggest")?;
            let suggestions = m
                .with_session(session, |s| {
                    let Some(d) = s.discovery() else {
                        return Ok(Vec::new());
                    };
                    Ok(s.suggest(k)
                        .into_iter()
                        .map(|r| {
                            Json::obj([
                                (
                                    "value",
                                    match projection_value(&adb, d, r.row) {
                                        Some(v) => Json::Str(v),
                                        None => Json::Null,
                                    },
                                ),
                                ("score", Json::Float(r.score)),
                                (
                                    "tests",
                                    Json::Arr(r.discriminates.into_iter().map(Json::Str).collect()),
                                ),
                            ])
                        })
                        .collect::<Vec<_>>())
                })
                .map_err(squid_error)?;
            ok(vec![("suggestions".into(), Json::Arr(suggestions))])
        }
        Verb::Sql { session } => {
            let sql = m
                .with_session(session, |s| Ok(s.discovery().map(|d| d.sql())))
                .map_err(squid_error)?;
            ok(vec![(
                "sql".into(),
                match sql {
                    Some(sql) => Json::Str(sql),
                    None => Json::Null,
                },
            )])
        }
        Verb::Rows { session, limit } => {
            let (total, rows) = m
                .with_session(session, |s| {
                    let Some(d) = s.discovery() else {
                        return Ok((0, Vec::new()));
                    };
                    let rows = d
                        .rows
                        .iter()
                        .take(limit)
                        .filter_map(|row| projection_value(&adb, d, row))
                        .map(Json::Str)
                        .collect();
                    Ok((d.rows.len(), rows))
                })
                .map_err(squid_error)?;
            ok(vec![
                ("total".into(), Json::Int(total as i64)),
                ("rows".into(), Json::Arr(rows)),
            ])
        }
        Verb::Examples { session } => {
            let examples = m
                .with_session(session, |s| {
                    Ok(s.examples()
                        .iter()
                        .map(|e| Json::str(*e))
                        .collect::<Vec<_>>())
                })
                .map_err(squid_error)?;
            ok(vec![("examples".into(), Json::Arr(examples))])
        }
        Verb::Stats { session } => {
            // Fleet-wide stats are orchestrator telemetry and shed under
            // load; a session-scoped stats call is part of a client's
            // re-adoption handshake (it learns its turn cursor from
            // `op_seq`) and is never shed.
            if session.is_none() {
                shed_cheap(shared, ctx, "stats")?;
            }
            let mut fields = vec![
                ("sessions".into(), Json::Int(m.session_count() as i64)),
                (
                    "active_ids".into(),
                    Json::Arr(
                        m.active_ids()
                            .into_iter()
                            .map(|i| Json::Int(i as i64))
                            .collect(),
                    ),
                ),
                ("server".into(), metrics_json(&shared.metrics.snapshot())),
            ];
            {
                // Per-client admission counters (the `client` handshake),
                // sorted for stable output.
                let clients = shared.clients.lock().unwrap_or_else(|e| e.into_inner());
                let mut entries: Vec<_> = clients
                    .iter()
                    .map(|(cid, cs)| {
                        (
                            cid.clone(),
                            Json::obj([
                                ("requests", Json::Int(cs.requests as i64)),
                                ("turns", Json::Int(cs.turns as i64)),
                                ("rate_limited", Json::Int(cs.rate_limited as i64)),
                                ("shed", Json::Int(cs.shed as i64)),
                            ]),
                        )
                    })
                    .collect();
                entries.sort_by(|a, b| a.0.cmp(&b.0));
                fields.push(("clients".into(), Json::Obj(entries)));
            }
            fields.push((
                "shared_cache".into(),
                match m.shared_cache_stats() {
                    Some(sh) => Json::obj([
                        ("hits", Json::Int(sh.hits as i64)),
                        ("misses", Json::Int(sh.misses as i64)),
                        ("entries", Json::Int(sh.entries as i64)),
                        ("resident_bytes", Json::Int(sh.resident_bytes as i64)),
                        (
                            "max_resident_bytes",
                            Json::Int(sh.max_resident_bytes as i64),
                        ),
                        ("evictions", Json::Int(sh.evictions as i64)),
                        ("hit_rate", Json::Float(sh.hit_rate())),
                    ]),
                    // Explicit, not absent: "disabled" is an answer, a
                    // missing member is a question.
                    None => Json::str("disabled"),
                },
            ));
            if let Some(rs) = m.recover_stats() {
                fields.push((
                    "recovery".into(),
                    Json::obj([
                        ("sessions_replayed", Json::Int(rs.sessions_replayed as i64)),
                        ("records_applied", Json::Int(rs.records_applied as i64)),
                        ("records_failed", Json::Int(rs.records_failed as i64)),
                        ("records_skipped", Json::Int(rs.records_skipped as i64)),
                        ("bytes_truncated", Json::Int(rs.bytes_truncated as i64)),
                        ("live_sessions", Json::Int(rs.live_sessions as i64)),
                    ]),
                ));
            }
            if let Some(js) = m.journal_stats() {
                fields.push(("journal".into(), journal_json(&js)));
            }
            if let Some(sid) = session {
                let (cs, op_seq) = m
                    .with_session(sid, |s| Ok((s.cache_stats(), s.op_seq())))
                    .map_err(squid_error)?;
                // The session's turn cursor: a reconnecting client resumes
                // its sequence numbering from here.
                fields.push(("op_seq".into(), Json::Int(op_seq as i64)));
                fields.push((
                    "session_cache".into(),
                    Json::obj([
                        ("hits", Json::Int(cs.hits as i64)),
                        ("shared_hits", Json::Int(cs.shared_hits as i64)),
                        ("misses", Json::Int(cs.misses as i64)),
                        ("entries", Json::Int(cs.entries as i64)),
                        ("resident_bytes", Json::Int(cs.resident_bytes as i64)),
                        ("evictions", Json::Int(cs.evictions as i64)),
                    ]),
                ));
            }
            ok(fields)
        }
        Verb::Health => {
            // Deliberately cheap (counters and two map sizes) and never
            // shed: orchestrators must be able to probe an overloaded
            // server — that is exactly when they ask.
            let mx = shared.metrics.snapshot();
            let mut fields = vec![
                ("healthy".into(), Json::Bool(true)),
                (
                    "draining".into(),
                    Json::Bool(shared.stop.load(Ordering::SeqCst)),
                ),
                (
                    "uptime_ms".into(),
                    Json::Int(shared.started.elapsed().as_millis() as i64),
                ),
                ("sessions".into(), Json::Int(m.session_count() as i64)),
                (
                    "max_sessions".into(),
                    Json::Int(shared.cfg.max_sessions as i64),
                ),
                (
                    "pending".into(),
                    Json::Int(shared.pending.load(Ordering::Relaxed) as i64),
                ),
                ("workers".into(), Json::Int(shared.cfg.workers as i64)),
                ("requests".into(), Json::Int(mx.requests as i64)),
                ("turns".into(), Json::Int(mx.turns as i64)),
                ("rate_limited".into(), Json::Int(mx.rate_limited as i64)),
                ("shed".into(), Json::Int(mx.shed as i64)),
                (
                    "clients".into(),
                    Json::Int(
                        shared
                            .clients
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .len() as i64,
                    ),
                ),
                (
                    "role".into(),
                    Json::str(match shared.repl.role() {
                        Role::Primary => "primary",
                        Role::Standby => "standby",
                    }),
                ),
            ];
            if shared.cfg.replicate_to.is_some() || shared.cfg.standby_of.is_some() {
                let mut repl = vec![
                    (
                        "standby_connected",
                        Json::Bool(shared.repl.standby_connected()),
                    ),
                    ("link_up", Json::Bool(shared.repl.link_up())),
                    (
                        "applied_records",
                        Json::Int(shared.repl.applied_records() as i64),
                    ),
                    ("snapshots", Json::Int(shared.repl.snapshots() as i64)),
                ];
                if let Some(js) = m.journal_stats() {
                    // The primary's view: journal the standby has not
                    // acknowledged. The chaos harness waits for zero here
                    // before it is allowed to kill the primary.
                    let (lag_records, lag_bytes) = shared.repl.lag(&js);
                    repl.push(("lag_records", Json::Int(lag_records as i64)));
                    repl.push(("lag_bytes", Json::Int(lag_bytes as i64)));
                }
                if let Some(p) = shared.repl.primary_addr() {
                    repl.push(("primary", Json::Str(p)));
                }
                fields.push(("replication".into(), Json::obj(repl)));
            }
            fields.push((
                "journal".into(),
                match m.journal_stats() {
                    Some(js) => journal_json(&js),
                    None => Json::str("detached"),
                },
            ));
            ok(fields)
        }
        Verb::Close { session } => {
            require_primary(shared)?;
            m.close_session(session)
                .map_err(|e| session_error(shared, session, e))?;
            shared.forget_session(session);
            ok(vec![("closed".into(), Json::Bool(true))])
        }
        Verb::Client { id: client_id } => {
            shared
                .clients
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .entry(client_id.clone())
                .or_default();
            ctx.client = Some(client_id.clone());
            ok(vec![("client".into(), Json::Str(client_id))])
        }
        Verb::Promote => {
            // Blocks this worker for up to the drain deadline — promotion
            // is rare and the caller wants a definite answer.
            match do_promote(shared, Duration::from_secs(10)) {
                Role::Primary => ok(vec![("role".into(), Json::str("primary"))]),
                Role::Standby => Err(Refusal::retry(
                    ErrorCode::Internal,
                    "promotion did not complete; the standby link is still draining",
                    100,
                )),
            }
        }
        Verb::Shutdown => {
            // Respond first (Flow::Close flushes this line before the
            // worker exits), then the flag drains the whole server.
            let resp = protocol::ok_response(name, id, vec![("stopping".into(), Json::Bool(true))]);
            request_stop(shared, shared.addr);
            Ok((resp, Flow::Close))
        }
    }
}

fn metrics_json(mx: &ServerMetrics) -> Json {
    Json::obj([
        ("accepted", Json::Int(mx.accepted as i64)),
        (
            "rejected_overloaded",
            Json::Int(mx.rejected_overloaded as i64),
        ),
        ("requests", Json::Int(mx.requests as i64)),
        ("turns", Json::Int(mx.turns as i64)),
        ("protocol_errors", Json::Int(mx.protocol_errors as i64)),
        (
            "connections_closed",
            Json::Int(mx.connections_closed as i64),
        ),
        ("idle_reaped", Json::Int(mx.idle_reaped as i64)),
        ("deduped", Json::Int(mx.deduped as i64)),
        ("rate_limited", Json::Int(mx.rate_limited as i64)),
        ("shed", Json::Int(mx.shed as i64)),
    ])
}

/// Wire rendering of [`squid_core::JournalStats`]: replay debt (base vs
/// tail records), file size, and compaction history.
fn journal_json(js: &squid_core::JournalStats) -> Json {
    let mut members = vec![
        ("bytes".to_string(), Json::Int(js.bytes as i64)),
        (
            "base_records".to_string(),
            Json::Int(js.base_records as i64),
        ),
        (
            "tail_records".to_string(),
            Json::Int(js.tail_records as i64),
        ),
        ("compactions".to_string(), Json::Int(js.compactions as i64)),
    ];
    members.push((
        "last_compaction".to_string(),
        match &js.last_compaction {
            Some(c) => Json::obj([
                ("sessions", Json::Int(c.sessions as i64)),
                ("records_written", Json::Int(c.records_written as i64)),
                ("bytes_before", Json::Int(c.bytes_before as i64)),
                ("bytes_after", Json::Int(c.bytes_after as i64)),
            ]),
            None => Json::Null,
        },
    ));
    Json::Obj(members)
}

/// Response fields of a session-mutating turn: the wire rendering of a
/// [`DiscoveryDelta`], incremental-path evidence included.
fn delta_fields(delta: &DiscoveryDelta) -> Vec<(String, Json)> {
    let mut fields: Vec<(String, Json)> = Vec::with_capacity(10);
    match &delta.discovery {
        Some(d) => {
            fields.push(("rows".into(), Json::Int(d.rows.len() as i64)));
            fields.push(("filters".into(), Json::Int(d.chosen_filters().len() as i64)));
            fields.push(("sql".into(), Json::Str(d.sql())));
        }
        None => {
            fields.push(("rows".into(), Json::Int(0)));
            fields.push(("empty".into(), Json::Bool(true)));
        }
    }
    fields.push((
        "added_filters".into(),
        Json::Arr(delta.added_filters.iter().map(Json::str).collect()),
    ));
    fields.push((
        "removed_filters".into(),
        Json::Arr(delta.removed_filters.iter().map(Json::str).collect()),
    ));
    fields.push(("rows_added".into(), Json::Int(delta.rows_added as i64)));
    fields.push(("rows_removed".into(), Json::Int(delta.rows_removed as i64)));
    fields.push(("incremental".into(), Json::Bool(delta.incremental)));
    fields.push(("cache_hits".into(), Json::Int(delta.cache_hits as i64)));
    fields.push(("cache_misses".into(), Json::Int(delta.cache_misses as i64)));
    fields
}

/// Render the projection value of one entity row (shared shape with the
/// CLI's printer).
fn projection_value(adb: &ADb, d: &Discovery, row: usize) -> Option<String> {
    let table = adb.database.table(&d.entity_table).ok()?;
    let ci = table.schema().column_index(&d.projection_column)?;
    table.cell(row, ci).map(|v| v.to_string())
}
