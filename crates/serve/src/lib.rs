//! # squid-serve
//!
//! The TCP serving frontend of the SQuID fleet engine: a hand-rolled
//! [`std::net::TcpListener`] server (no crates.io dependencies) speaking
//! a newline-delimited JSON protocol that maps 1:1 onto the
//! [`squid_core::SquidSession`] API, plus the client and load-generator
//! harness that measure it.
//!
//! The design premise (Polynesia's lesson, via the Cambridge Report): the
//! interactive frontend is co-designed with the analytical core, so a
//! network turn costs what a [`squid_core::DiscoveryDelta`] costs — the
//! incremental session path, the two-level evaluation cache, and the
//! journal all sit directly behind the socket, and the protocol exposes
//! their evidence (`incremental`, cache counters, recovery stats) so
//! clients and CI can hold the server to it.
//!
//! - [`json`]: minimal std-only JSON encode/parse (the wire format).
//! - [`protocol`]: request/response grammar and stable error codes.
//! - [`server`]: listener + fixed worker pool, admission control,
//!   rate limiting and load shedding, timeouts/reaping, graceful drain.
//! - [`client`]: blocking lock-step client.
//! - [`retry`]: resilient client wrapper — backoff + jitter, reconnect
//!   with session re-adoption, sequence-numbered exactly-once turns.
//! - [`load`]: concurrent load generator with latency percentiles and
//!   retry/error counters.
//! - [`proxy`]: std-only fault-injecting TCP proxy (delay, drop,
//!   truncate, sever) for chaos tests.
//! - [`chaos`]: the `--chaos` harness — SIGKILL loops under retrying
//!   load asserting zero acknowledged-turn loss (`--standby` adds
//!   primary-kill + promotion cycles over a replicated pair).
//! - [`replication`]: warm-standby journal streaming — snapshot
//!   bootstrap, record shipping with acks and lag accounting, and the
//!   promotion latch behind the `promote` verb / SIGUSR1.
//!
//! ```no_run
//! use std::sync::Arc;
//! use squid_adb::{test_fixtures, ADb};
//! use squid_core::SessionManager;
//! use squid_serve::{Client, ServeConfig, Server};
//!
//! let adb = Arc::new(ADb::build(&test_fixtures::mini_imdb()).unwrap());
//! let server = Server::start(
//!     Arc::new(SessionManager::new(adb)),
//!     ServeConfig::default(),
//! ).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let sid = client.create().unwrap();
//! client.add(sid, "Jim Carrey").unwrap();
//! client.add(sid, "Eddie Murphy").unwrap();
//! println!("{}", client.sql(sid).unwrap().unwrap());
//! client.close(sid).unwrap();
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod json;
pub mod load;
pub mod protocol;
pub mod proxy;
pub mod replication;
pub mod retry;
pub mod server;

pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use client::{Client, ClientError};
pub use json::Json;
pub use load::{run_load, run_load_fleet, LoadConfig, LoadReport, LoadTurn};
pub use protocol::{parse_request, ErrorCode, Request, Verb};
pub use proxy::{FaultProxy, FaultRule};
pub use replication::{fetch_adb, ReplState, Role};
pub use retry::{RetryClient, RetryCounters, RetryPolicy};
pub use server::{RateLimit, ServeConfig, Server, ServerMetrics, ShutdownReport};
