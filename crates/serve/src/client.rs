//! Blocking protocol client: one connection, request/response lines in
//! lock step. The load generator, the integration tests, and the
//! `squid-serve --client` scripted mode all drive the server through
//! this, so the client-side encode path is exercised by the same suite
//! that exercises the server-side parse path.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::{self, Json};

/// What a request can fail with, client-side.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, write, read, or peer closed).
    Io(io::Error),
    /// The server's response line was not valid JSON (should never
    /// happen; a server bug if it does).
    BadResponse(String),
    /// The server answered `{"ok":false,...}`; carries `error.code` and
    /// `error.detail`.
    Server {
        /// Machine-stable error code.
        code: String,
        /// Human-readable description.
        detail: String,
        /// The server's back-pressure hint, when the error carried one
        /// (`overloaded`, `session_limit`, `rate_limited`).
        retry_after_ms: Option<u64>,
        /// The primary's client address, when a standby refused a
        /// mutation with `not_primary` — the failover hint a retrying
        /// client follows.
        primary: Option<String>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::BadResponse(d) => write!(f, "malformed server response: {d}"),
            ClientError::Server { code, detail, .. } => {
                write!(f, "server error [{code}]: {detail}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The server-side error code, when this is a server error.
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            _ => None,
        }
    }
}

/// A connected protocol client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a running `squid-serve`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Wrap an already-connected stream.
    pub fn from_stream(stream: TcpStream) -> io::Result<Client> {
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Set a read timeout for responses (None = block forever).
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(t)
    }

    /// Send one already-encoded request line and read one response line.
    /// The raw response is returned even when `ok` is false — use
    /// [`Client::request`] for error-mapped calls.
    pub fn round_trip(&mut self, body: &Json) -> Result<Json, ClientError> {
        let mut line = body.encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.read_response()
    }

    /// Read one response line without sending anything (for servers that
    /// push a final error line, e.g. idle reaping).
    pub fn read_response(&mut self) -> Result<Json, ClientError> {
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        // A line without its newline is a connection torn mid-response —
        // a transport event (retryable), not a malformed server reply.
        if !resp.ends_with('\n') {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection lost mid-response",
            )));
        }
        json::parse(resp.trim()).map_err(|e| ClientError::BadResponse(e.to_string()))
    }

    /// Round trip + error mapping: `ok:false` responses become
    /// [`ClientError::Server`].
    pub fn request(&mut self, body: &Json) -> Result<Json, ClientError> {
        let resp = self.round_trip(body)?;
        if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            return Ok(resp);
        }
        let code = resp
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let detail = resp
            .get("error")
            .and_then(|e| e.get("detail"))
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let retry_after_ms = resp
            .get("error")
            .and_then(|e| e.get("retry_after_ms"))
            .and_then(Json::as_u64);
        let primary = resp
            .get("error")
            .and_then(|e| e.get("primary"))
            .and_then(Json::as_str)
            .map(str::to_string);
        Err(ClientError::Server {
            code,
            detail,
            retry_after_ms,
            primary,
        })
    }

    fn verb(op: &str, fields: Vec<(&'static str, Json)>) -> Json {
        let mut members = vec![("op", Json::str(op))];
        members.extend(fields);
        Json::obj(members)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(&Self::verb("ping", vec![])).map(|_| ())
    }

    /// Open a session, returning its id.
    pub fn create(&mut self) -> Result<u64, ClientError> {
        let resp = self.request(&Self::verb("create", vec![]))?;
        resp.get("session")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::BadResponse("create response without session id".into()))
    }

    /// `add_example` over the wire; returns the full delta response.
    pub fn add(&mut self, session: u64, value: &str) -> Result<Json, ClientError> {
        self.request(&Self::verb(
            "add",
            vec![
                ("session", Json::Int(session as i64)),
                ("value", Json::str(value)),
            ],
        ))
    }

    /// `remove_example` over the wire.
    pub fn remove(&mut self, session: u64, value: &str) -> Result<Json, ClientError> {
        self.request(&Self::verb(
            "remove",
            vec![
                ("session", Json::Int(session as i64)),
                ("value", Json::str(value)),
            ],
        ))
    }

    /// `pin_filter` over the wire.
    pub fn pin(&mut self, session: u64, key: &str) -> Result<Json, ClientError> {
        self.request(&Self::verb(
            "pin",
            vec![
                ("session", Json::Int(session as i64)),
                ("key", Json::str(key)),
            ],
        ))
    }

    /// The session's current abduced SQL (None while empty).
    pub fn sql(&mut self, session: u64) -> Result<Option<String>, ClientError> {
        let resp = self.request(&Self::verb(
            "sql",
            vec![("session", Json::Int(session as i64))],
        ))?;
        Ok(resp.get("sql").and_then(Json::as_str).map(str::to_string))
    }

    /// `suggest(k)` over the wire; returns the suggestion objects.
    pub fn suggest(&mut self, session: u64, k: usize) -> Result<Vec<Json>, ClientError> {
        let resp = self.request(&Self::verb(
            "suggest",
            vec![
                ("session", Json::Int(session as i64)),
                ("k", Json::Int(k as i64)),
            ],
        ))?;
        Ok(resp
            .get("suggestions")
            .and_then(Json::as_arr)
            .unwrap_or_default()
            .to_vec())
    }

    /// Load/session/journal health probe.
    pub fn health(&mut self) -> Result<Json, ClientError> {
        self.request(&Self::verb("health", vec![]))
    }

    /// Fleet statistics (optionally including one session's counters).
    pub fn stats(&mut self, session: Option<u64>) -> Result<Json, ClientError> {
        let mut fields = vec![];
        if let Some(sid) = session {
            fields.push(("session", Json::Int(sid as i64)));
        }
        self.request(&Self::verb("stats", fields))
    }

    /// Close a session.
    pub fn close(&mut self, session: u64) -> Result<(), ClientError> {
        self.request(&Self::verb(
            "close",
            vec![("session", Json::Int(session as i64))],
        ))
        .map(|_| ())
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Self::verb("shutdown", vec![])).map(|_| ())
    }

    /// Identify this connection for per-client admission accounting.
    pub fn identify(&mut self, id: &str) -> Result<(), ClientError> {
        self.request(&Self::verb("client", vec![("client", Json::str(id))]))
            .map(|_| ())
    }

    /// Ask a standby to become primary. Returns the node's role after the
    /// call (`"primary"` once promotion completed).
    pub fn promote(&mut self) -> Result<String, ClientError> {
        let resp = self.request(&Self::verb("promote", vec![]))?;
        Ok(resp
            .get("role")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string())
    }
}
