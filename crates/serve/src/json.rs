//! Minimal std-only JSON: the wire format of the serving protocol.
//!
//! The container builds without crates.io (the shims pattern from
//! `crates/shims`), so the serving layer hand-rolls the strict subset of
//! JSON it needs: a [`Json`] value tree, a recursive-descent parser with a
//! depth bound, and an encoder that always emits a single line (no raw
//! control characters), which is what makes newline-delimited framing
//! sound. Both the server and the client/load-generator speak through this
//! module, so an encode/parse asymmetry cannot hide.
//!
//! Numbers keep the integer/float distinction (`i64` vs `f64`): session
//! ids are `u64`-ish and must survive a round trip without drifting
//! through a double.

use std::fmt;

/// Maximum nesting depth accepted by the parser. Protocol messages are
/// two levels deep; anything deeper is hostile or broken input, and a
/// bound keeps recursion off the worker's stack limit.
const MAX_DEPTH: usize = 32;

/// A JSON value. Object member order is preserved (insertion order), so
/// encoded responses are deterministic and diffable in tests and CI.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fraction or exponent, in `i64` range.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key/value pairs; keys are not deduplicated —
    /// lookups return the first match, like every mainstream parser).
    Obj(Vec<(String, Json)>),
}

/// Parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.detail)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Build an object from pairs (order preserved).
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Encode onto one line (never emits a raw control character, so the
    /// result is always newline-framable).
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    // `{:?}` keeps a ".0" on integral floats, preserving
                    // the float-ness of the value across a round trip.
                    out.push_str(&format!("{x:?}"));
                } else {
                    // JSON has no NaN/Infinity; null is the standard
                    // lossy mapping.
                    out.push_str("null");
                }
            }
            Json::Str(s) => encode_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document from `input` (surrounding whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, detail: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            detail: detail.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a low surrogate must
                                // follow immediately.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Multi-byte UTF-8 is passed through: the input is a
                    // &str, so byte boundaries are already valid.
                    let start = self.pos;
                    let s = unsafe { std::str::from_utf8_unchecked(&self.bytes[start..]) };
                    let c = s.chars().next().expect("peeked byte implies a char");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ascii in \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(Json::Float(x)),
            Err(_) => Err(self.err(format!("invalid number {text:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let v = Json::obj([
            ("op", Json::str("add")),
            ("session", Json::Int(42)),
            ("value", Json::str("Jim \"JC\" Carrey\n")),
            ("k", Json::Float(1.5)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let line = v.encode();
        assert!(!line.contains('\n'), "encoded JSON must be one line");
        assert_eq!(parse(&line).unwrap(), v);
    }

    #[test]
    fn integers_survive_exactly() {
        for n in [0i64, -1, 9_007_199_254_740_993, i64::MAX, i64::MIN] {
            let line = Json::Int(n).encode();
            assert_eq!(parse(&line).unwrap(), Json::Int(n), "{n}");
        }
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse("2.5").unwrap(), Json::Float(2.5));
        // Beyond i64: falls back to float rather than erroring.
        assert!(matches!(
            parse("99999999999999999999").unwrap(),
            Json::Float(_)
        ));
    }

    #[test]
    fn escapes_and_unicode() {
        assert_eq!(
            parse(r#""a\u0041\n\t\" \u00e9 \ud83d\ude00""#).unwrap(),
            Json::Str("aA\n\t\" é 😀".into())
        );
        // Control characters encode as escapes and round trip.
        let s = Json::Str("\u{1}\u{2}ok".into());
        assert_eq!(parse(&s.encode()).unwrap(), s);
        // Lone surrogates are rejected.
        assert!(parse(r#""\ud800""#).is_err());
        assert!(parse(r#""\ud800\u0041""#).is_err());
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "nul",
            "1.2.3",
            "\"abc",
            "\"\\q\"",
            "{\"a\":1} extra",
            "--2",
            "+1",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_bound_rejects_hostile_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = parse(&deep).unwrap_err();
        assert!(err.detail.contains("deep"));
        // At sane depths it parses fine.
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = parse(r#"{"op":"sql","session":7,"k":2.0,"on":false,"xs":[1,2]}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("sql"));
        assert_eq!(v.get("session").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("k").and_then(Json::as_f64), Some(2.0));
        assert_eq!(v.get("on").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("xs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
    }

    #[test]
    fn nonfinite_floats_encode_as_null() {
        assert_eq!(Json::Float(f64::NAN).encode(), "null");
        assert_eq!(Json::Float(f64::INFINITY).encode(), "null");
    }
}
