//! Server-protection e2e: sequence-numbered turn dedupe, per-session
//! rate limiting with retry hints, and the `health` probe — the parts of
//! the self-healing story that don't need a crashing process.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use squid_adb::{test_fixtures, ADb};
use squid_core::{FsyncPolicy, Journal, SessionManager};
use squid_serve::{
    json::Json, Client, ClientError, RateLimit, RetryClient, RetryPolicy, ServeConfig, Server,
};

fn test_adb() -> Arc<ADb> {
    Arc::new(ADb::build(&test_fixtures::mini_imdb()).unwrap())
}

fn start_with(manager: SessionManager, cfg: ServeConfig) -> Server {
    Server::start(Arc::new(manager), cfg).unwrap()
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "squid-resilience-{tag}-{}-{:?}.journal",
        std::process::id(),
        std::thread::current().id()
    ))
}

#[test]
fn sequenced_turns_dedupe_and_reject_gaps_over_the_wire() {
    let server = start_with(SessionManager::new(test_adb()), ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let sid = client.create().unwrap();
    let body = |seq: i64| {
        Json::obj([
            ("op", Json::str("add")),
            ("session", Json::Int(sid as i64)),
            ("seq", Json::Int(seq)),
            ("value", Json::str("Jim Carrey")),
        ])
    };

    let first = client.request(&body(1)).unwrap();
    assert_eq!(
        first.get("deduped"),
        None,
        "a fresh turn must not be marked deduped"
    );

    // A client retrying a lost ack re-sends the same sequence number:
    // the server absorbs it and answers with the original turn's fields.
    let replay = client.request(&body(1)).unwrap();
    assert_eq!(replay.get("deduped").and_then(Json::as_bool), Some(true));
    assert_eq!(
        replay.get("rows").and_then(Json::as_i64),
        first.get("rows").and_then(Json::as_i64),
        "deduped ack must carry the original response fields"
    );

    // Applied once, not twice.
    let examples = client
        .request(&Json::obj([
            ("op", Json::str("examples")),
            ("session", Json::Int(sid as i64)),
        ]))
        .unwrap();
    assert_eq!(
        examples
            .get("examples")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(1)
    );

    // Claiming turns the server never saw is a client bug, not a retry.
    let err = client.request(&body(5)).unwrap_err();
    assert_eq!(err.code(), Some("bad_request"));

    // Unsequenced turns still work and share the same cursor.
    client.add(sid, "Eddie Murphy").unwrap();
    server.shutdown();
}

#[test]
fn rate_limited_turns_carry_hints_and_retry_clients_absorb_them() {
    let server = start_with(
        SessionManager::new(test_adb()),
        ServeConfig {
            rate_limit: Some(RateLimit {
                per_sec: 4.0,
                burst: 1.0,
            }),
            ..ServeConfig::default()
        },
    );

    // A bare client sees the refusal and its hint.
    let mut raw = Client::connect(server.local_addr()).unwrap();
    let sid = raw.create().unwrap();
    raw.add(sid, "Jim Carrey").unwrap();
    let err = raw.add(sid, "Eddie Murphy").unwrap_err();
    match err {
        ClientError::Server {
            ref code,
            retry_after_ms,
            ..
        } if code == "rate_limited" => {
            let ms = retry_after_ms.expect("rate_limited must carry retry_after_ms");
            assert!(ms > 0 && ms <= 250, "hint {ms}ms out of range for 4/sec");
        }
        other => panic!("expected rate_limited, got {other}"),
    }
    // Reads are not budgeted turns.
    raw.sql(sid).unwrap();

    // A retry client turns the refusals into waits and finishes the
    // script anyway.
    let mut rc = RetryClient::with_policy(
        server.local_addr().to_string(),
        RetryPolicy {
            max_attempts: 30,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(400),
            read_timeout: Some(Duration::from_secs(5)),
        },
    );
    let sid2 = rc.create().unwrap();
    for name in ["Jim Carrey", "Eddie Murphy", "Robin Williams"] {
        rc.add(sid2, name).unwrap();
    }
    assert!(
        rc.counters().rate_limited >= 1,
        "back-to-back turns at 4/sec must hit the limiter at least once"
    );
    let report = server.shutdown();
    assert!(report.metrics.rate_limited >= 2);
}

#[test]
fn unknown_sessions_are_refused_before_rate_state_is_charged() {
    // Turns against a session id the server never issued must answer
    // `unknown_session` every time. Before validation-first ordering the
    // first probe minted a rate bucket for the bogus id, so the second
    // probe read `rate_limited` — and the bucket leaked forever.
    let server = start_with(
        SessionManager::new(test_adb()),
        ServeConfig {
            rate_limit: Some(RateLimit {
                per_sec: 1.0,
                burst: 1.0,
            }),
            ..ServeConfig::default()
        },
    );
    let mut raw = Client::connect(server.local_addr()).unwrap();
    for _ in 0..3 {
        let err = raw.add(9999, "Jim Carrey").unwrap_err();
        assert_eq!(
            err.code(),
            Some("unknown_session"),
            "bogus session must never surface as rate_limited"
        );
    }
    server.shutdown();
}

#[test]
fn health_reports_load_sessions_and_journal() {
    let path = temp_path("health");
    let _ = std::fs::remove_file(&path);
    let manager = SessionManager::new(test_adb());
    manager.attach_journal(Journal::open(&path, FsyncPolicy::Flush).unwrap());
    let server = start_with(manager, ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let sid = client.create().unwrap();
    client.add(sid, "Jim Carrey").unwrap();

    let h = client.health().unwrap();
    assert_eq!(h.get("healthy").and_then(Json::as_bool), Some(true));
    assert_eq!(h.get("draining").and_then(Json::as_bool), Some(false));
    assert_eq!(h.get("sessions").and_then(Json::as_i64), Some(1));
    assert!(h.get("uptime_ms").and_then(Json::as_i64).is_some());
    let journal = h.get("journal").expect("journal stats in health");
    assert!(journal.get("bytes").and_then(Json::as_i64).unwrap() > 0);
    // The create and the add are both journal tail records.
    assert_eq!(journal.get("tail_records").and_then(Json::as_i64), Some(2));
    assert_eq!(journal.get("compactions").and_then(Json::as_i64), Some(0));

    server.shutdown();
    let _ = std::fs::remove_file(&path);
}
