//! Warm-standby replication e2e, in-process: a primary/standby pair of
//! real [`Server`]s over loopback — snapshot bootstrap, read mirroring,
//! `not_primary` refusals with a failover hint, lag draining to zero,
//! and promotion after the primary goes away. (The crashing-process
//! version of this story is the chaos harness's `--standby` mode.)

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use squid_adb::{test_fixtures, ADb};
use squid_core::{FsyncPolicy, Journal, SessionManager};
use squid_serve::{
    fetch_adb, json::Json, Client, ClientError, RetryClient, RetryPolicy, ServeConfig, Server,
};

fn test_adb() -> Arc<ADb> {
    Arc::new(ADb::build(&test_fixtures::mini_imdb()).unwrap())
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "squid-replication-{tag}-{}-{:?}.journal",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn journaled_manager(tag: &str) -> SessionManager {
    let path = temp_path(tag);
    let _ = std::fs::remove_file(&path);
    let manager = SessionManager::new(test_adb());
    manager.attach_journal(Journal::open(&path, FsyncPolicy::Flush).unwrap());
    manager
}

/// Poll the primary's `health` until its replication lag is zero.
fn wait_for_zero_lag(client: &mut Client, deadline: Duration) {
    let end = Instant::now() + deadline;
    loop {
        let health = client.health().unwrap();
        let lag = health
            .get("replication")
            .and_then(|r| r.get("lag_records"))
            .and_then(Json::as_u64);
        if lag == Some(0) {
            return;
        }
        assert!(
            Instant::now() < end,
            "standby never caught up; last health: {}",
            health.encode()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn a_standby_mirrors_reads_refuses_writes_and_promotes() {
    // Primary: serving listener + replication listener, both on port 0.
    let primary = Server::start(
        Arc::new(journaled_manager("primary")),
        ServeConfig {
            replicate_to: Some("127.0.0.1:0".into()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let repl_addr = primary.repl_addr().unwrap().to_string();
    let primary_addr = primary.local_addr().to_string();

    // Standby: dials the primary's replication listener.
    let standby = Server::start(
        Arc::new(journaled_manager("standby")),
        ServeConfig {
            standby_of: Some(repl_addr),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let standby_addr = standby.local_addr().to_string();

    let mut pc = Client::connect(&primary_addr).unwrap();
    let sid = pc.create().unwrap();
    pc.add(sid, "Jim Carrey").unwrap();
    pc.add(sid, "Eddie Murphy").unwrap();
    let primary_sql = pc.sql(sid).unwrap().expect("two examples discover");
    wait_for_zero_lag(&mut pc, Duration::from_secs(10));

    // The standby serves the same session read-only...
    let mut sc = Client::connect(&standby_addr).unwrap();
    assert_eq!(
        sc.sql(sid).unwrap().as_deref(),
        Some(primary_sql.as_str()),
        "standby must mirror the primary's discovery state"
    );
    let health = sc.health().unwrap();
    assert_eq!(
        health.get("role").and_then(Json::as_str),
        Some("standby"),
        "health must report the role"
    );

    // ...and refuses mutations with the failover hint.
    let err = sc.add(sid, "Robin Williams").unwrap_err();
    match err {
        ClientError::Server { code, primary, .. } => {
            assert_eq!(code, "not_primary");
            assert_eq!(
                primary.as_deref(),
                Some(primary_addr.as_str()),
                "the refusal must name the primary's client address"
            );
        }
        other => panic!("expected a not_primary refusal, got {other:?}"),
    }

    // A retrying client that only knows the standby follows the hint:
    // the turn lands on the primary and replicates back.
    let mut rc = RetryClient::fleet(
        vec![standby_addr.clone()],
        RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
            read_timeout: Some(Duration::from_secs(5)),
        },
    );
    let cursor = rc.adopt(sid).unwrap();
    assert_eq!(cursor, 2, "two turns already acknowledged");
    rc.add(sid, "Robin Williams").unwrap();
    assert!(
        rc.counters().failovers >= 1,
        "the hint must count as a failover"
    );
    wait_for_zero_lag(&mut pc, Duration::from_secs(10));
    let sql_with_third = pc.sql(sid).unwrap().unwrap();
    assert_eq!(
        sc.sql(sid).unwrap().as_deref(),
        Some(sql_with_third.as_str()),
        "the hinted turn must replicate back to the standby"
    );

    // Primary gone → promote the standby → it accepts mutations.
    drop(pc);
    drop(rc);
    primary.shutdown();
    assert_eq!(sc.promote().unwrap(), "primary");
    let health = sc.health().unwrap();
    assert_eq!(health.get("role").and_then(Json::as_str), Some("primary"));
    sc.add(sid, "Sylvester Stallone").unwrap();
    sc.close(sid).unwrap();
    standby.shutdown();
}

#[test]
fn fetch_adb_bootstraps_a_dataset_free_standby() {
    let primary = Server::start(
        Arc::new(SessionManager::new(test_adb())),
        ServeConfig {
            replicate_to: Some("127.0.0.1:0".into()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let repl_addr = primary.repl_addr().unwrap().to_string();

    // A node with no local dataset pulls the αDB over the link...
    let fetched = fetch_adb(&repl_addr, Duration::from_secs(5)).unwrap();

    // ...and a server built on it discovers exactly what the primary
    // does. (Snapshot bytes are not compared: αDB builds embed a fresh
    // generation and other order-sensitive incidentals, so observable
    // behaviour is the contract — same stance as the adb crate's own
    // round-trip test.)
    let twin = Server::start(
        Arc::new(SessionManager::new(Arc::new(fetched))),
        ServeConfig::default(),
    )
    .unwrap();
    let mut pc = Client::connect(primary.local_addr()).unwrap();
    let mut tc = Client::connect(twin.local_addr()).unwrap();
    for client in [&mut pc, &mut tc] {
        let sid = client.create().unwrap();
        client.add(sid, "Jim Carrey").unwrap();
        client.add(sid, "Eddie Murphy").unwrap();
    }
    assert_eq!(
        pc.sql(1).unwrap(),
        tc.sql(1).unwrap(),
        "the fetched αDB must drive identical discovery"
    );
    twin.shutdown();
    primary.shutdown();
}
