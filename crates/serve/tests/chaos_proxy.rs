//! Flaky-network e2e: drive a real server through the fault-injecting
//! proxy and prove the retry layer converts every ambiguous outcome
//! (lost ack, torn reply, severed connection, reply stuck past the
//! deadline) into exactly-once turns.

use std::sync::Arc;
use std::time::Duration;

use squid_adb::{test_fixtures, ADb};
use squid_core::SessionManager;
use squid_serve::{
    json::Json, Client, FaultProxy, FaultRule, RetryClient, RetryPolicy, ServeConfig, Server,
};

fn start_server(cfg: ServeConfig) -> Server {
    let adb = Arc::new(ADb::build(&test_fixtures::mini_imdb()).unwrap());
    Server::start(Arc::new(SessionManager::new(adb)), cfg).unwrap()
}

fn impatient_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 10,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(100),
        read_timeout: Some(Duration::from_millis(300)),
    }
}

/// The examples the server actually holds for a session, asked directly
/// (not through the proxy).
fn server_examples(server: &Server, sid: u64) -> Vec<String> {
    let mut c = Client::connect(server.local_addr()).unwrap();
    let resp = c
        .request(&Json::obj([
            ("op", Json::str("examples")),
            ("session", Json::Int(sid as i64)),
        ]))
        .unwrap();
    resp.get("examples")
        .and_then(Json::as_arr)
        .unwrap_or_default()
        .iter()
        .filter_map(|j| j.as_str().map(str::to_string))
        .collect()
}

#[test]
fn a_dropped_acknowledgement_dedupes_instead_of_double_applying() {
    let server = start_server(ServeConfig::default());
    // Exchange 1 (create) passes; exchange 2 (the add) is applied by the
    // server but its ack is swallowed.
    let proxy = FaultProxy::start(
        server.local_addr(),
        vec![FaultRule::Pass, FaultRule::DropReply],
    )
    .unwrap();
    let mut rc = RetryClient::with_policy(proxy.local_addr().to_string(), impatient_policy());
    let sid = rc.create().unwrap();
    rc.add(sid, "Jim Carrey").unwrap();
    assert_eq!(
        rc.counters().deduped,
        1,
        "the retried turn must be absorbed by the server's cursor"
    );
    assert_eq!(server_examples(&server, sid), vec!["Jim Carrey"]);
    assert_eq!(proxy.faults_injected(), 1);
    proxy.stop();
    server.shutdown();
}

#[test]
fn a_reply_torn_mid_record_is_a_transport_error_and_retries() {
    let server = start_server(ServeConfig::default());
    // The add's reply is cut off halfway through the line, then severed.
    let proxy = FaultProxy::start(
        server.local_addr(),
        vec![FaultRule::Pass, FaultRule::Truncate],
    )
    .unwrap();
    let mut rc = RetryClient::with_policy(proxy.local_addr().to_string(), impatient_policy());
    let sid = rc.create().unwrap();
    // Applied on the server; the torn line must surface as a transport
    // error (not a protocol error), reconnect, and dedupe.
    rc.add(sid, "Eddie Murphy").unwrap();
    assert!(rc.counters().reconnects >= 1);
    assert_eq!(rc.counters().deduped, 1);
    assert_eq!(server_examples(&server, sid), vec!["Eddie Murphy"]);
    proxy.stop();
    server.shutdown();
}

#[test]
fn a_severed_request_is_retried_and_applied_exactly_once() {
    let server = start_server(ServeConfig::default());
    // The add is severed before the server ever sees it: the retry is a
    // first delivery, not a duplicate.
    let proxy =
        FaultProxy::start(server.local_addr(), vec![FaultRule::Pass, FaultRule::Sever]).unwrap();
    let mut rc = RetryClient::with_policy(proxy.local_addr().to_string(), impatient_policy());
    let sid = rc.create().unwrap();
    rc.add(sid, "Robin Williams").unwrap();
    assert!(rc.counters().reconnects >= 1);
    assert_eq!(
        rc.counters().deduped,
        0,
        "the server never saw the severed request, so nothing dedupes"
    );
    assert_eq!(server_examples(&server, sid), vec!["Robin Williams"]);
    proxy.stop();
    server.shutdown();
}

#[test]
fn a_reply_delayed_past_every_deadline_still_converges() {
    // Short server idle deadline: the stalled upstream connection gets
    // reaped while the proxy is still sitting on the reply.
    let server = start_server(ServeConfig {
        idle_timeout: Duration::from_millis(250),
        ..ServeConfig::default()
    });
    let proxy = FaultProxy::start(
        server.local_addr(),
        vec![
            FaultRule::Pass,
            FaultRule::Delay(Duration::from_millis(800)),
        ],
    )
    .unwrap();
    let mut rc = RetryClient::with_policy(proxy.local_addr().to_string(), impatient_policy());
    let sid = rc.create().unwrap();
    // The add is applied promptly server-side, but its reply is held
    // past the client's 300ms read timeout — the retry (on a fresh
    // connection) dedupes.
    rc.add(sid, "Jim Carrey").unwrap();
    assert!(rc.counters().retries >= 1);
    assert_eq!(rc.counters().deduped, 1);
    assert_eq!(server_examples(&server, sid), vec!["Jim Carrey"]);
    proxy.stop();
    server.shutdown();
}
