//! Protocol edge cases: malformed input must produce structured error
//! replies — never a dead worker, and never a silently dropped byte — and
//! concurrent turns against one session id must serialize.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use squid_adb::{test_fixtures, ADb};
use squid_core::SessionManager;
use squid_serve::{json, Client, ServeConfig, Server};

fn start(cfg: ServeConfig) -> Server {
    let adb = Arc::new(ADb::build(&test_fixtures::mini_imdb()).unwrap());
    Server::start(Arc::new(SessionManager::new(adb)), cfg).unwrap()
}

fn raw_connect(server: &Server) -> TcpStream {
    let s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

/// Send raw bytes (appending a newline) and read one response line.
fn raw_round_trip(stream: &mut TcpStream, bytes: &[u8]) -> json::Json {
    stream.write_all(bytes).unwrap();
    stream.write_all(b"\n").unwrap();
    read_line(stream)
}

fn read_line(stream: &mut TcpStream) -> json::Json {
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(!line.is_empty(), "server closed without replying");
    json::parse(line.trim()).expect("response must be valid JSON")
}

fn error_code(resp: &json::Json) -> String {
    assert_eq!(
        resp.get("ok").and_then(json::Json::as_bool),
        Some(false),
        "expected an error response, got {resp}"
    );
    resp.get("error")
        .and_then(|e| e.get("code"))
        .and_then(json::Json::as_str)
        .expect("error responses carry error.code")
        .to_string()
}

/// Reading after the server closed must observe the close, not hang.
/// Either a clean EOF or a reset counts: closing with unread bytes still
/// queued (the tail of an oversized line) makes the kernel send RST.
fn assert_closed(stream: &mut TcpStream) {
    let mut byte = [0u8; 1];
    match stream.read(&mut byte) {
        Ok(n) => assert_eq!(n, 0, "connection must be closed"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset),
    }
}

#[test]
fn bad_json_and_unknown_verb_keep_the_connection_alive() {
    let server = start(ServeConfig::default());
    let mut conn = raw_connect(&server);

    let resp = raw_round_trip(&mut conn, b"this is not json");
    assert_eq!(error_code(&resp), "bad_json");

    let resp = raw_round_trip(&mut conn, br#"{"op":"frobnicate","id":7}"#);
    assert_eq!(error_code(&resp), "unknown_verb");
    assert_eq!(
        resp.get("id").and_then(json::Json::as_i64),
        Some(7),
        "the request id must be salvaged into the error"
    );

    let resp = raw_round_trip(&mut conn, br#"{"op":"add","session":0}"#);
    assert_eq!(error_code(&resp), "bad_request");

    let resp = raw_round_trip(&mut conn, br#"{"op":"sql","session":999}"#);
    assert_eq!(error_code(&resp), "unknown_session");

    // After four straight protocol errors the same connection still works.
    let resp = raw_round_trip(&mut conn, br#"{"op":"ping"}"#);
    assert_eq!(resp.get("ok").and_then(json::Json::as_bool), Some(true));

    server.shutdown();
}

#[test]
fn oversized_line_gets_a_reply_then_close() {
    let server = start(ServeConfig {
        max_line_bytes: 1024,
        ..ServeConfig::default()
    });
    let mut conn = raw_connect(&server);
    // 8 KiB of garbage with no newline: the server must bail on the frame
    // bound, not buffer forever.
    let huge = vec![b'x'; 8 << 10];
    conn.write_all(&huge).unwrap();
    conn.write_all(b"\n").unwrap();
    let resp = read_line(&mut conn);
    assert_eq!(error_code(&resp), "line_too_long");
    assert_closed(&mut conn);

    // The worker survived; a fresh connection is served.
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ping().unwrap();
    server.shutdown();
}

#[test]
fn invalid_utf8_gets_a_reply_then_close() {
    let server = start(ServeConfig::default());
    let mut conn = raw_connect(&server);
    let resp = raw_round_trip(&mut conn, &[0x7b, 0xff, 0xfe, 0x7d]);
    assert_eq!(error_code(&resp), "invalid_utf8");
    assert_closed(&mut conn);

    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ping().unwrap();
    server.shutdown();
}

#[test]
fn half_closed_socket_mid_request_is_survivable() {
    let server = start(ServeConfig::default());
    let mut conn = raw_connect(&server);
    // Half a request, never finished: the peer half-closes its write side
    // with the line incomplete.
    conn.write_all(br#"{"op":"ping""#).unwrap();
    conn.shutdown(Shutdown::Write).unwrap();
    // No reply is owed for an unterminated line; the server just closes.
    assert_closed(&mut conn);

    // And keeps serving everyone else.
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ping().unwrap();
    let sid = client.create().unwrap();
    client.add(sid, "Jim Carrey").unwrap();
    server.shutdown();
}

#[test]
fn concurrent_turns_on_one_session_serialize() {
    let server = start(ServeConfig::default());
    let addr = server.local_addr();
    let mut owner = Client::connect(addr).unwrap();
    let sid = owner.create().unwrap();

    // Eight connections, one shared session id, one add each: the
    // per-session lock must serialize the turns into eight intact
    // examples — no torn state, no lost update, no worker error.
    let names = [
        "Jim Carrey",
        "Eddie Murphy",
        "Robin Williams",
        "Sylvester Stallone",
        "Arnold Schwarzenegger",
        "Ewan McGregor",
        "Julia Roberts",
        "Emma Stone",
    ];
    std::thread::scope(|scope| {
        for name in names {
            scope.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.add(sid, name).unwrap();
            });
        }
    });

    let resp = owner
        .request(&json::Json::obj([
            ("op", json::Json::str("examples")),
            ("session", json::Json::Int(sid as i64)),
        ]))
        .unwrap();
    let mut got: Vec<String> = resp
        .get("examples")
        .and_then(json::Json::as_arr)
        .unwrap()
        .iter()
        .map(|e| e.as_str().unwrap().to_string())
        .collect();
    got.sort();
    let mut want: Vec<String> = names.iter().map(|n| n.to_string()).collect();
    want.sort();
    assert_eq!(got, want);

    // The session is still coherent: a discovery exists over all examples.
    assert!(owner.sql(sid).unwrap().is_some());
    let report = server.shutdown();
    assert_eq!(report.metrics.turns, 8);
    assert_eq!(report.metrics.protocol_errors, 0);
}
