//! End-to-end serving tests: TCP turns must cost (and answer) exactly
//! what direct session turns cost — incremental path included — and the
//! operational envelope (admission control, idle reaping, graceful
//! shutdown, journal recovery) must hold under concurrent load.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use squid_adb::{test_fixtures, ADb};
use squid_core::{FsyncPolicy, Journal, SessionManager, SessionOp};
use squid_serve::{
    json::Json, run_load, Client, ClientError, LoadConfig, LoadTurn, ServeConfig, Server,
};

fn test_adb() -> Arc<ADb> {
    Arc::new(ADb::build(&test_fixtures::mini_imdb()).unwrap())
}

fn start_with(adb: Arc<ADb>, cfg: ServeConfig) -> Server {
    Server::start(Arc::new(SessionManager::new(adb)), cfg).unwrap()
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "squid-serve-{tag}-{}-{:?}.journal",
        std::process::id(),
        std::thread::current().id()
    ))
}

#[test]
fn tcp_turns_match_direct_sessions_and_take_the_incremental_path() {
    let adb = test_adb();
    let server = start_with(Arc::clone(&adb), ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Direct twin: the same ops through a local manager on the same αDB.
    let direct = SessionManager::new(adb);
    let did = direct.create_session();
    let sid = client.create().unwrap();

    let script = ["Jim Carrey", "Eddie Murphy", "Robin Williams"];
    for (i, name) in script.iter().enumerate() {
        let tcp = client.add(sid, name).unwrap();
        let local = direct
            .apply_op(did, &SessionOp::AddExample(name.to_string()))
            .unwrap()
            .expect("add produces a delta");
        // Same result shape...
        assert_eq!(
            tcp.get("rows").and_then(Json::as_i64),
            local.discovery.as_ref().map(|d| d.rows.len() as i64),
            "turn {i}: row count over TCP diverged from the direct session"
        );
        // ...and the same evaluation path: the wire reports the delta's
        // own incremental flag, so turn 2+ being incremental over TCP is
        // server-attested, not assumed.
        assert_eq!(
            tcp.get("incremental").and_then(Json::as_bool),
            Some(local.incremental),
            "turn {i}: incremental flag diverged"
        );
        if i > 0 {
            assert_eq!(
                tcp.get("incremental").and_then(Json::as_bool),
                Some(true),
                "turn {i}: follow-up TCP turns must take the incremental path"
            );
        }
    }

    let tcp_sql = client.sql(sid).unwrap().expect("discovery exists");
    let direct_sql = direct
        .with_session(did, |s| Ok(s.discovery().unwrap().sql()))
        .unwrap();
    assert_eq!(tcp_sql, direct_sql, "abduced SQL diverged over the wire");

    client.close(sid).unwrap();
    let err = client.sql(sid).unwrap_err();
    assert_eq!(err.code(), Some("unknown_session"));
    server.shutdown();
}

#[test]
fn admission_control_replies_overloaded_instead_of_dropping() {
    // One worker, zero queue slots: the second concurrent connection must
    // be refused explicitly while the first is being served.
    let server = start_with(
        test_adb(),
        ServeConfig {
            workers: 1,
            max_pending: 0,
            ..ServeConfig::default()
        },
    );
    let mut held = Client::connect(server.local_addr()).unwrap();
    held.ping().unwrap(); // proves the only worker is now occupied by us

    let mut refused = Client::connect(server.local_addr()).unwrap();
    refused
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match refused.ping() {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "overloaded"),
        // The overloaded reply races our ping write; either way the error
        // line arrives before the close.
        Err(ClientError::Io(_)) => {
            panic!("connection dropped without an overloaded reply")
        }
        other => panic!("expected an overloaded refusal, got {other:?}"),
    }

    // The held connection is unaffected, and once it finishes new
    // connections are admitted again.
    held.ping().unwrap();
    drop(held);
    let mut retry = Client::connect(server.local_addr()).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match retry.ping() {
            Ok(()) => break,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
                retry = Client::connect(server.local_addr()).unwrap();
            }
            Err(e) => panic!("worker never freed up: {e}"),
        }
    }
    let report = server.shutdown();
    assert!(report.metrics.rejected_overloaded >= 1);
}

#[test]
fn session_cap_refuses_create_but_keeps_the_connection() {
    let server = start_with(
        test_adb(),
        ServeConfig {
            max_sessions: 2,
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect(server.local_addr()).unwrap();
    let a = client.create().unwrap();
    let _b = client.create().unwrap();
    let err = client.create().unwrap_err();
    assert_eq!(err.code(), Some("session_limit"));
    // The refusal tells the client when to try again.
    assert!(matches!(
        err,
        ClientError::Server {
            retry_after_ms: Some(ms),
            ..
        } if ms > 0
    ));
    // Refusal is per-request: the connection still serves, and closing a
    // session frees a slot.
    client.close(a).unwrap();
    let _c = client.create().unwrap();
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped_with_a_final_reply() {
    let server = start_with(
        test_adb(),
        ServeConfig {
            idle_timeout: Duration::from_millis(150),
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ping().unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Send nothing; the reaper owes us one last error line, then EOF.
    let resp = client.read_response().unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        resp.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("idle_timeout")
    );
    assert!(matches!(
        client.read_response(),
        Err(ClientError::Io(ref e)) if e.kind() == std::io::ErrorKind::UnexpectedEof
    ));
    let report = server.shutdown();
    assert_eq!(report.metrics.idle_reaped, 1);
}

#[test]
fn graceful_shutdown_drains_syncs_and_recovers() {
    let adb = test_adb();
    let journal_path = temp_path("graceful");
    let _ = std::fs::remove_file(&journal_path);

    let manager = SessionManager::new(Arc::clone(&adb));
    manager.attach_journal(Journal::open(&journal_path, FsyncPolicy::Flush).unwrap());
    let server = Server::start(Arc::new(manager), ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut client = Client::connect(addr).unwrap();
    let sid = client.create().unwrap();
    client.add(sid, "Jim Carrey").unwrap();
    client.add(sid, "Eddie Murphy").unwrap();
    let sql_before = client.sql(sid).unwrap().expect("discovery exists");

    // The shutdown verb answers before the drain starts...
    client.shutdown().unwrap();
    // ...after which new connections are declined, not ignored: either a
    // `shutting_down` reply or (once the acceptor has exited) a refused
    // connect, but never fresh service.
    if let Ok(mut late) = Client::connect(addr) {
        match late.ping() {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, "shutting_down"),
            Err(ClientError::Io(_) | ClientError::BadResponse(_)) => {}
            Ok(()) => panic!("a draining server accepted new work"),
        }
    }

    let report = server.shutdown();
    assert!(report.journal_synced, "journal must fsync during the drain");
    assert_eq!(report.live_sessions, 1);

    // A recovered fleet reproduces the exact pre-shutdown session.
    let recovered = SessionManager::new(adb);
    let stats = recovered
        .recover(&journal_path, FsyncPolicy::Flush)
        .unwrap();
    assert_eq!(stats.live_sessions, 1);
    assert_eq!(recovered.active_ids(), vec![sid]);
    let sql_after = recovered
        .with_session(sid, |s| Ok(s.discovery().unwrap().sql()))
        .unwrap();
    assert_eq!(sql_after, sql_before, "recovery must be diff-identical");

    let _ = std::fs::remove_file(&journal_path);
}

#[test]
fn abandoned_fleet_with_always_fsync_is_recoverable_without_shutdown() {
    // The crash story: with `--fsync always` every journaled turn is
    // durable the moment its response is written, so a fleet that never
    // gets a graceful drain (SIGKILL) still recovers to the last turn.
    let adb = test_adb();
    let journal_path = temp_path("abandoned");
    let _ = std::fs::remove_file(&journal_path);

    let manager = SessionManager::new(Arc::clone(&adb));
    manager.attach_journal(Journal::open(&journal_path, FsyncPolicy::Always).unwrap());
    let server = Server::start(Arc::new(manager), ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let sid = client.create().unwrap();
    client.add(sid, "Julia Roberts").unwrap();
    client.add(sid, "Emma Stone").unwrap();
    let sql_live = client.sql(sid).unwrap().expect("discovery exists");

    // No shutdown verb, no drain: read the journal out from under the
    // still-running server, as a post-crash restart would.
    let recovered = SessionManager::new(adb);
    recovered
        .recover(&journal_path, FsyncPolicy::Always)
        .unwrap();
    let sql_recovered = recovered
        .with_session(sid, |s| Ok(s.discovery().unwrap().sql()))
        .unwrap();
    assert_eq!(sql_recovered, sql_live);

    server.shutdown();
    let _ = std::fs::remove_file(&journal_path);
}

#[test]
fn eight_concurrent_clients_replay_ten_turn_scripts_without_errors() {
    let server = start_with(test_adb(), ServeConfig::default());
    let cfg = LoadConfig {
        clients: 8,
        sessions_per_client: 2,
        script: vec![
            LoadTurn::Add("Jim Carrey".into()),
            LoadTurn::Add("Eddie Murphy".into()),
            LoadTurn::Sql,
            LoadTurn::Suggest(2),
            LoadTurn::Rows(5),
            LoadTurn::Add("Robin Williams".into()),
            LoadTurn::Remove("Eddie Murphy".into()),
            LoadTurn::Sql,
            LoadTurn::Rows(3),
            LoadTurn::Suggest(1),
        ],
    };
    let report = run_load(server.local_addr(), &cfg).unwrap();
    assert_eq!(report.errors, 0, "serving under load must be error-free");
    assert_eq!(report.sessions, 16);
    assert_eq!(report.turns, 160);
    assert!(report.turn_p99 >= report.turn_p50);

    let metrics = server.metrics();
    assert_eq!(metrics.protocol_errors, 0);
    // create/close are not turns; the scripted mutations are.
    assert_eq!(metrics.turns, 16 * 4);
    let report = server.shutdown();
    assert_eq!(report.live_sessions, 0, "every load session was closed");
}
