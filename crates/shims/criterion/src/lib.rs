//! Offline stand-in for the `criterion` crate exposing the API subset this
//! workspace's benches use: `Criterion::bench_function`, benchmark groups
//! with `bench_function` / `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Each benchmark is warmed up, then timed adaptively until the sampling
//! budget (`SQUID_BENCH_MS`, default 300 ms per benchmark) is spent. With
//! `SQUID_BENCH_RUNS=N` (default 1) the whole measurement repeats `N`
//! times and the run with the smallest mean is kept — min-of-N discards
//! scheduler and frequency-scaling noise, which is what you want when
//! gating on ratios between runs. Mean wall-clock times are printed and,
//! when `SQUID_BENCH_JSON` names a file, written there as a flat
//! `{"bench_id": mean_ns}` JSON object so perf trajectories can be diffed
//! across commits (see `BENCH_squid.json`).
//!
//! Under `cargo test` (the harness passes `--test`) every benchmark runs a
//! single iteration as a smoke check and no JSON is emitted.

#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full benchmark id (`group/function`).
    pub id: String,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Iterations measured.
    pub iters: u64,
}

/// Parameterized benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id rendered from a parameter value, e.g. `10`.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Id with a function name and a parameter, e.g. `fold/10`.
    pub fn new<P: Display>(function: &str, p: P) -> Self {
        BenchmarkId(format!("{function}/{p}"))
    }
}

/// Per-iteration input sizing hint (API parity with criterion; the shim
/// times each routine call individually, so the hint is not needed).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: few per batch in real criterion.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Timing driver handed to bench closures.
pub struct Bencher {
    budget: Duration,
    test_mode: bool,
    result: Option<(f64, u64)>,
}

impl Bencher {
    /// Measure `routine` repeatedly on fresh inputs from `setup`, timing
    /// only the routine (criterion's `iter_batched`): the way to bench a
    /// mutation without paying for state reconstruction in the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        if self.test_mode {
            black_box(routine(setup()));
            self.result = Some((0.0, 1));
            return;
        }
        // Warmup: one untimed call (fills caches, triggers lazy init).
        black_box(routine(setup()));
        let mut iters = 0u64;
        let mut measured = Duration::ZERO;
        let started = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            measured += t.elapsed();
            iters += 1;
            if started.elapsed() >= self.budget || iters >= 100_000 {
                break;
            }
        }
        self.result = Some((measured.as_nanos() as f64 / iters as f64, iters));
    }

    /// Measure `f` repeatedly and record the mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.result = Some((0.0, 1));
            return;
        }
        // Warmup: one untimed call (fills caches, triggers lazy init).
        black_box(f());
        let mut iters = 0u64;
        let started = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            if started.elapsed() >= self.budget || iters >= 100_000 {
                break;
            }
        }
        let total = started.elapsed();
        self.result = Some((total.as_nanos() as f64 / iters as f64, iters));
    }
}

/// Top-level benchmark driver (stand-in for criterion's `Criterion`).
pub struct Criterion {
    budget: Duration,
    /// Independent measurement repetitions per benchmark; the smallest
    /// mean wins (`SQUID_BENCH_RUNS`, default 1).
    runs: u32,
    test_mode: bool,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        let budget_ms: u64 = std::env::var("SQUID_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        let runs: u32 = std::env::var("SQUID_BENCH_RUNS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1)
            .max(1);
        Criterion {
            budget: Duration::from_millis(budget_ms),
            runs,
            test_mode,
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Run one named benchmark: `runs` independent measurements, keeping
    /// the one with the smallest mean (min-of-N noise rejection).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let id = id.to_string();
        let runs = if self.test_mode { 1 } else { self.runs };
        let mut best: Option<(f64, u64)> = None;
        for _ in 0..runs {
            let mut b = Bencher {
                budget: self.budget,
                test_mode: self.test_mode,
                result: None,
            };
            f(&mut b);
            let run = b.result.unwrap_or((0.0, 0));
            best = Some(match best {
                Some(prev) if prev.0 <= run.0 => prev,
                _ => run,
            });
        }
        let (mean_ns, iters) = best.unwrap_or((0.0, 0));
        if !self.test_mode {
            eprintln!("bench {id:<50} {:>12.1} ns/iter ({iters} iters)", mean_ns);
        }
        self.records.push(BenchRecord { id, mean_ns, iters });
        self
    }

    /// Record an externally measured value (nanoseconds) under a
    /// benchmark id — for numbers a closure-timing harness cannot
    /// produce, like latency percentiles from a concurrent load run.
    /// The record lands in the same JSON as timed benchmarks. No-op in
    /// test mode (shim extension; not part of the real criterion API).
    pub fn record(&mut self, id: impl Display, mean_ns: f64) -> &mut Self {
        if self.test_mode {
            return self;
        }
        let id = id.to_string();
        eprintln!("bench {id:<50} {mean_ns:>12.1} ns (recorded)");
        self.records.push(BenchRecord {
            id,
            mean_ns,
            iters: 1,
        });
        self
    }

    /// Whether the harness is in `cargo test` smoke mode (single
    /// iteration, no JSON) — benches use this to shrink expensive
    /// external setups (shim extension).
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        if self.test_mode || self.records.is_empty() {
            return;
        }
        let Ok(path) = std::env::var("SQUID_BENCH_JSON") else {
            return;
        };
        let mut out = String::from("{\n");
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 < self.records.len() { "," } else { "" };
            out.push_str(&format!(
                "  \"{}\": {{\"mean_ns\": {:.1}, \"iters\": {}}}{comma}\n",
                r.id.replace('"', "'"),
                r.mean_ns,
                r.iters
            ));
        }
        out.push_str("}\n");
        // One JSON file per bench binary: append a suffix when the file
        // exists so parallel bench targets don't clobber each other.
        let mut target = std::path::PathBuf::from(&path);
        let mut n = 1;
        while target.exists() {
            target = std::path::PathBuf::from(format!("{path}.{n}"));
            n += 1;
        }
        if let Ok(mut f) = std::fs::File::create(&target) {
            let _ = f.write_all(out.as_bytes());
        }
    }
}

/// Scoped group of related benchmarks (`group/name` ids).
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.c.bench_function(full, f);
        self
    }

    /// Run one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        self.c.bench_function(full, |b| f(b, input));
        self
    }

    /// Finish the group (drop marker; kept for API parity).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_measurement() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
            runs: 1,
            test_mode: false,
            records: Vec::new(),
        };
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.records.len(), 1);
        assert!(c.records[0].iters > 0);
        c.records.clear(); // avoid Drop writing JSON in tests
    }

    #[test]
    fn iter_batched_times_only_the_routine() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
            runs: 1,
            test_mode: false,
            records: Vec::new(),
        };
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 16],
                |v| black_box(v.iter().sum::<u64>()),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(c.records.len(), 1);
        assert!(c.records[0].iters > 0);
        c.records.clear(); // avoid Drop writing JSON in tests
    }

    #[test]
    fn min_of_n_runs_every_measurement_and_keeps_one() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
            runs: 3,
            test_mode: false,
            records: Vec::new(),
        };
        let mut measurements = 0;
        c.bench_function("min_of_n", |b| {
            measurements += 1;
            b.iter(|| black_box(2 + 2));
        });
        assert_eq!(measurements, 3, "each run re-measures");
        assert_eq!(c.records.len(), 1, "only the best run is recorded");
        assert!(c.records[0].iters > 0);
        c.records.clear(); // avoid Drop writing JSON in tests
    }

    #[test]
    fn record_logs_external_measurements() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
            runs: 1,
            test_mode: false,
            records: Vec::new(),
        };
        c.record("serving_tail/p99", 1234.5);
        assert_eq!(c.records.len(), 1);
        assert_eq!(c.records[0].id, "serving_tail/p99");
        assert_eq!(c.records[0].mean_ns, 1234.5);
        // Test mode drops records instead of polluting the smoke output.
        let mut t = Criterion {
            budget: Duration::from_millis(1),
            runs: 1,
            test_mode: true,
            records: Vec::new(),
        };
        t.record("serving_tail/p99", 1.0);
        assert!(t.records.is_empty());
        c.records.clear(); // avoid Drop writing JSON in tests
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
            runs: 1,
            test_mode: false,
            records: Vec::new(),
        };
        {
            let mut g = c.benchmark_group("g");
            g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert_eq!(c.records[0].id, "g/7");
        c.records.clear();
    }
}
