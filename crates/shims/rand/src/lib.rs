//! Offline stand-in for the `rand` crate, exposing exactly the API subset
//! this workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::random_range` / `random_bool` / `random`.
//!
//! The build container has no network access to crates.io, so the real
//! `rand` cannot be vendored; this shim keeps the dependency graph
//! identical (`use rand::rngs::StdRng` works unchanged) while providing a
//! deterministic xoshiro256++ generator seeded via SplitMix64. Streams are
//! NOT bit-compatible with upstream `rand`, but every consumer in this
//! workspace only relies on determinism per seed, which holds.

#![warn(missing_docs)]

/// Random number generators.
pub mod rngs {
    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Seedable construction (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from one u64.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[lo, hi)`; `hi > lo` guaranteed by callers.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Successor for turning inclusive ranges into half-open ones, saturating.
    fn successor(self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                debug_assert!(span > 0);
                // 128-bit multiply-shift keeps the modulo bias negligible.
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
            #[inline]
            fn successor(self) -> Self { self.saturating_add(1) }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
    #[inline]
    fn successor(self) -> Self {
        self
    }
}

/// Range argument accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "random_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "random_range: empty range");
        T::sample_half_open(rng, lo, hi.successor())
    }
}

/// Types producible by [`Rng::random`].
pub trait FromRandom {
    /// Draw one uniformly distributed value.
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRandom for u64 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRandom for u32 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRandom for bool {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level sampling methods (blanket-implemented for every generator).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_random(self) < p
    }

    /// Uniform value of an inferable type.
    #[inline]
    fn random<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn range_sampling_covers_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.2)).count();
        assert!((1_500..2_500).contains(&hits), "{hits}");
    }
}
