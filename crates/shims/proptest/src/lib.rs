//! Offline stand-in for the `proptest` crate covering the API subset this
//! workspace uses: the `proptest!` macro, `Strategy` with `prop_map`,
//! `Just`, `any`, `prop_oneof!`, range and char-class strategies,
//! `prop::collection::{vec, btree_set}`, `prop::option::of`, and the
//! `prop_assert*` macros.
//!
//! Cases are generated deterministically (seeded per test name), there is
//! no shrinking, and failures panic like ordinary `assert!`s. That trades
//! proptest's minimal counterexamples for zero external dependencies — the
//! container building this workspace has no crates.io access.

#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, RngCore, SeedableRng};

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Derive a per-test deterministic RNG.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(h ^ ((case as u64) << 32) ^ case as u64)
}

/// A value generator. Mirrors proptest's `Strategy` (without shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy yielding a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// New union over `arms` (non-empty).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Full-domain strategy marker returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy over a type's full value domain.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<u8> {
    type Value = u8;
    fn generate(&self, rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Strategy for Any<u16> {
    type Value = u16;
    fn generate(&self, rng: &mut TestRng) -> u16 {
        rng.next_u64() as u16
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Strategy for Any<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Strategy for Any<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Mix of interesting specials and full-width bit patterns, like
        // proptest's `any::<f64>()` (which generates NaN and infinities).
        match rng.random_range(0..10u32) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            4 => -0.0,
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

/// Character-class string strategy: `"[a-z]{0,8}"` style patterns.
///
/// Supports exactly the shape `[<lo>-<hi>]{<min>,<max>}` (plus a bare
/// `[<lo>-<hi>]` for one char). Anything else is generated literally.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        fn parse(pat: &str) -> Option<(char, char, usize, usize)> {
            let rest = pat.strip_prefix('[')?;
            let (class, rest) = rest.split_once(']')?;
            let mut chars = class.chars();
            let (lo, dash, hi) = (chars.next()?, chars.next()?, chars.next()?);
            if dash != '-' || chars.next().is_some() {
                return None;
            }
            if rest.is_empty() {
                return Some((lo, hi, 1, 1));
            }
            let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
            let (min, max) = counts.split_once(',')?;
            Some((lo, hi, min.parse().ok()?, max.parse().ok()?))
        }
        match parse(self) {
            Some((lo, hi, min, max)) => {
                let len = rng.random_range(min..=max);
                (0..len)
                    .map(|_| rng.random_range(lo as u32..=hi as u32))
                    .map(|c| char::from_u32(c).unwrap_or('?'))
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Length specification: a fixed size or a half-open range.
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy for `Vec`s of `element` values.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `Vec` of values from `element` with a length drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s of `element` values.
    pub struct BTreeSetStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `BTreeSet` with up to `len` values from `element` (duplicates merge).
    pub fn btree_set<S, L>(element: S, len: L) -> BTreeSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Ord,
        L: SizeRange,
    {
        BTreeSetStrategy { element, len }
    }

    impl<S, L> Strategy for BTreeSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Ord,
        L: SizeRange,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::*;

    /// Strategy yielding `None` 25% of the time, else `Some(inner)`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option` of values from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.random_range(0..4u32) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// `assert!` with proptest spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` with proptest spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` with proptest spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::Union::new(arms)
    }};
}

/// Property-test harness macro. Each contained `#[test] fn name(x in S, ..)`
/// expands to an ordinary test running `cases` deterministic draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg($cfg) $($rest)* }
    };
    (@cfg($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut prop_rng = $crate::case_rng(stringify!($name), case);
                    $(let $pat = $crate::Strategy::generate(&$strategy, &mut prop_rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// The conventional glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, case_rng, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_generate_in_bounds(x in 3usize..9, y in -2i64..=2) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2..=2).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_spec(v in prop::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_and_map_compose(
            o in prop_oneof![Just(None), (1u64..5).prop_map(Some)],
        ) {
            if let Some(x) = o {
                prop_assert!((1..5).contains(&x));
            }
        }

        #[test]
        fn char_class_strings(s in "[a-z]{0,8}") {
            prop_assert!(s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u32..1000, 10usize);
        let a = strat.generate(&mut crate::case_rng("t", 0));
        let b = strat.generate(&mut crate::case_rng("t", 0));
        assert_eq!(a, b);
        let c = strat.generate(&mut crate::case_rng("t", 1));
        assert_ne!(a, c);
    }
}
