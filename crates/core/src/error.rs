//! Error type for query intent discovery.

use std::fmt;

use squid_relation::RelationError;

/// Errors surfaced by the SQuID online phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SquidError {
    /// No examples were provided.
    EmptyExamples,
    /// No `(entity table, column)` contains all the example values.
    NoMatchingColumn {
        /// The examples that failed to resolve.
        examples: Vec<String>,
    },
    /// The requested projection target does not exist or is not an entity
    /// table known to the αDB.
    UnknownTarget {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// One example did not match any entity in the requested target.
    EntityNotFound {
        /// The unresolved example value.
        example: String,
        /// Target table.
        table: String,
    },
    /// A session operation referenced an example that was never added (or
    /// was already removed).
    UnknownExample {
        /// The example value.
        example: String,
    },
    /// Disambiguation feedback named an entity that is not among the
    /// example's candidate matches.
    InvalidChoice {
        /// The example value.
        example: String,
        /// The rejected primary key.
        pk: i64,
    },
    /// The session id is unknown to the manager (never created, closed, or
    /// evicted after its TTL).
    UnknownSession {
        /// The session id.
        id: u64,
    },
    /// A sequenced mutation skipped ahead of the session's cursor: the
    /// client claims turns the server never saw, so applying it would
    /// silently drop history. (At or below the cursor is a benign retry,
    /// not an error.)
    SequenceGap {
        /// The session id.
        id: u64,
        /// The next sequence number the session would accept.
        expected: u64,
        /// The sequence number the caller sent.
        got: u64,
    },
    /// Underlying relational error.
    Relation(RelationError),
    /// An I/O failure in the durability layer (snapshot save/load, journal
    /// append/replay). Carries the rendered error text: `std::io::Error`
    /// is neither `Clone` nor `Eq`, which this enum requires.
    Io(String),
    /// Durable bytes (snapshot section or journal record) failed
    /// validation — checksum mismatch, truncation, or a value out of
    /// range. The file is damaged; the state it caches must be rebuilt
    /// from its source (generators for snapshots, the valid journal
    /// prefix for sessions).
    Corrupt {
        /// Which section or record failed to decode.
        section: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for SquidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SquidError::EmptyExamples => write!(f, "no example tuples provided"),
            SquidError::NoMatchingColumn { examples } => write!(
                f,
                "no entity-table column contains all examples: {}",
                examples.join(", ")
            ),
            SquidError::UnknownTarget { table, column } => {
                write!(f, "unknown projection target {table}.{column}")
            }
            SquidError::EntityNotFound { example, table } => {
                write!(f, "example {example:?} matches no entity in {table}")
            }
            SquidError::UnknownExample { example } => {
                write!(f, "example {example:?} is not in the session")
            }
            SquidError::InvalidChoice { example, pk } => {
                write!(f, "entity {pk} is not a candidate match for {example:?}")
            }
            SquidError::UnknownSession { id } => {
                write!(f, "unknown or expired session {id}")
            }
            SquidError::SequenceGap { id, expected, got } => {
                write!(
                    f,
                    "session {id}: sequence gap (expected {expected}, got {got})"
                )
            }
            SquidError::Relation(e) => write!(f, "relational error: {e}"),
            SquidError::Io(detail) => write!(f, "i/o error: {detail}"),
            SquidError::Corrupt { section, detail } => {
                write!(f, "corrupt {section}: {detail}")
            }
        }
    }
}

impl std::error::Error for SquidError {}

impl From<RelationError> for SquidError {
    fn from(e: RelationError) -> Self {
        SquidError::Relation(e)
    }
}

impl From<std::io::Error> for SquidError {
    fn from(e: std::io::Error) -> Self {
        SquidError::Io(e.to_string())
    }
}

impl From<squid_relation::FrameError> for SquidError {
    fn from(e: squid_relation::FrameError) -> Self {
        match e {
            squid_relation::FrameError::Io(e) => SquidError::Io(e.to_string()),
            squid_relation::FrameError::Corrupt { section, detail } => {
                SquidError::Corrupt { section, detail }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SquidError::NoMatchingColumn {
            examples: vec!["a".into(), "b".into()],
        };
        assert!(e.to_string().contains("a, b"));
        let e = SquidError::EntityNotFound {
            example: "X".into(),
            table: "person".into(),
        };
        assert!(e.to_string().contains("person"));
    }
}
