//! The end-to-end SQuID API (Figure 4's online "query intent discovery"
//! module): entity lookup & disambiguation → semantic context discovery →
//! query abduction → executable query + result tuples.

use std::time::{Duration, Instant};

use squid_adb::ADb;
use squid_engine::Query;
use squid_relation::{DataType, RowId, RowSet, TableRole};

use crate::abduce::{abduce, ScoredFilter};
use crate::context::discover_contexts;
use crate::disambiguate::{disambiguate, similarity_score};
use crate::error::SquidError;
use crate::filter::CandidateFilter;
use crate::params::SquidParams;
use crate::query_gen::{adb_query, evaluate, original_query};

/// The outcome of one query intent discovery run.
#[derive(Debug, Clone)]
pub struct Discovery {
    /// Entity table the examples resolved to.
    pub entity_table: String,
    /// Projected column (the one containing the example values).
    pub projection_column: String,
    /// Resolved example entity rows (after disambiguation).
    pub example_rows: Vec<RowId>,
    /// Every candidate filter with its abduction decision and scores.
    pub scored: Vec<ScoredFilter>,
    /// The abduced SPJAI query over the original database.
    pub query: Query,
    /// The equivalent SPJ query over the αDB, when expressible.
    pub adb_query: Option<Query>,
    /// Result rows (entity row ids) of the abduced query, evaluated
    /// directly against the αDB statistics (a dense bitmap).
    pub rows: RowSet,
    /// Online abduction time (entity lookup through query generation).
    pub elapsed: Duration,
}

impl Discovery {
    /// The filters Algorithm 1 chose to include.
    pub fn chosen_filters(&self) -> Vec<&CandidateFilter> {
        self.scored
            .iter()
            .filter(|s| s.included)
            .map(|s| &s.filter)
            .collect()
    }

    /// SQL rendering of the abduced query.
    pub fn sql(&self) -> String {
        squid_engine::to_sql(&self.query)
    }
}

/// Semantic similarity-aware query intent discovery.
pub struct Squid<'a> {
    adb: &'a ADb,
    params: SquidParams,
}

impl<'a> Squid<'a> {
    /// New instance with default parameters.
    pub fn new(adb: &'a ADb) -> Self {
        Squid {
            adb,
            params: SquidParams::default(),
        }
    }

    /// New instance with explicit parameters.
    pub fn with_params(adb: &'a ADb, params: SquidParams) -> Self {
        Squid { adb, params }
    }

    /// Current parameters.
    pub fn params(&self) -> &SquidParams {
        &self.params
    }

    /// Discover the most likely query intent behind `examples`
    /// (single-column string values, e.g. person names).
    ///
    /// The projection target is inferred via the inverted column index: the
    /// candidate `(entity table, text column)` pairs containing *all*
    /// examples, ranked by the semantic similarity of their disambiguated
    /// entities (a rare coherent match beats a scattered one).
    pub fn discover(&self, examples: &[&str]) -> Result<Discovery, SquidError> {
        if examples.is_empty() {
            return Err(SquidError::EmptyExamples);
        }
        let started = Instant::now();
        let candidates = self.candidate_targets(examples);
        if candidates.is_empty() {
            return Err(SquidError::NoMatchingColumn {
                examples: examples.iter().map(|s| s.to_string()).collect(),
            });
        }
        // Rank candidate targets by resolved-entity similarity.
        let mut best: Option<(f64, String, usize, Vec<RowId>)> = None;
        for (table, column) in candidates {
            let Ok(rows) = self.resolve_examples(&table, column, examples) else {
                continue;
            };
            let entity = self.adb.entity(&table).expect("entity exists");
            let score = similarity_score(entity, &rows);
            if best.as_ref().is_none_or(|(b, _, _, _)| score > *b) {
                best = Some((score, table, column, rows));
            }
        }
        let Some((_, table, column, rows)) = best else {
            return Err(SquidError::NoMatchingColumn {
                examples: examples.iter().map(|s| s.to_string()).collect(),
            });
        };
        self.finish(started, &table, column, rows)
    }

    /// Discover with an explicit projection target `table.column`
    /// (skips target inference).
    pub fn discover_on(
        &self,
        table: &str,
        column: &str,
        examples: &[&str],
    ) -> Result<Discovery, SquidError> {
        if examples.is_empty() {
            return Err(SquidError::EmptyExamples);
        }
        let started = Instant::now();
        let entity = self
            .adb
            .entity(table)
            .ok_or_else(|| SquidError::UnknownTarget {
                table: table.to_string(),
                column: column.to_string(),
            })?;
        let ci = self
            .adb
            .database
            .table(table)?
            .schema()
            .column_index(column)
            .ok_or_else(|| SquidError::UnknownTarget {
                table: table.to_string(),
                column: column.to_string(),
            })?;
        let _ = entity;
        let rows = self.resolve_examples(table, ci, examples)?;
        self.finish(started, table, ci, rows)
    }

    /// Candidate `(entity table, column)` targets containing all examples.
    fn candidate_targets(&self, examples: &[&str]) -> Vec<(String, usize)> {
        self.adb
            .inverted
            .columns_containing_all(examples)
            .into_iter()
            .filter(|(t, _)| {
                self.adb.entity(t).is_some()
                    && self
                        .adb
                        .database
                        .table(t)
                        .map(|tab| tab.schema().role == TableRole::Entity)
                        .unwrap_or(false)
            })
            .collect()
    }

    /// Resolve examples to entity rows in a fixed target, disambiguating
    /// multi-matches.
    fn resolve_examples(
        &self,
        table: &str,
        column: usize,
        examples: &[&str],
    ) -> Result<Vec<RowId>, SquidError> {
        let entity = self
            .adb
            .entity(table)
            .ok_or_else(|| SquidError::UnknownTarget {
                table: table.to_string(),
                column: format!("#{column}"),
            })?;
        let mut candidates: Vec<Vec<RowId>> = Vec::with_capacity(examples.len());
        for ex in examples {
            let rows = self.adb.inverted.lookup_in(ex, table, column);
            if rows.is_empty() {
                return Err(SquidError::EntityNotFound {
                    example: ex.to_string(),
                    table: table.to_string(),
                });
            }
            candidates.push(rows);
        }
        if !self.params.disambiguate {
            return Ok(candidates.iter().map(|c| c[0]).collect());
        }
        Ok(disambiguate(entity, &candidates, &self.params))
    }

    fn finish(
        &self,
        started: Instant,
        table: &str,
        column: usize,
        mut rows: Vec<RowId>,
    ) -> Result<Discovery, SquidError> {
        let entity = self.adb.entity(table).expect("entity exists");
        // Duplicate example strings may resolve to the same entity.
        rows.sort_unstable();
        rows.dedup();
        let candidates = discover_contexts(entity, &rows, &self.params);
        let scored = abduce(candidates, rows.len(), &self.params);
        let chosen: Vec<CandidateFilter> = scored
            .iter()
            .filter(|s| s.included)
            .map(|s| s.filter.clone())
            .collect();
        let schema = self.adb.database.table(table)?.schema().clone();
        let projection_column = schema.columns[column].name.clone();
        let (query, _) = original_query(entity, &chosen, &projection_column);
        let adb_q = adb_query(entity, &chosen, &projection_column);
        let result_rows = evaluate(entity, &chosen);
        Ok(Discovery {
            entity_table: table.to_string(),
            projection_column,
            example_rows: rows,
            scored,
            query,
            adb_query: adb_q,
            rows: result_rows,
            elapsed: started.elapsed(),
        })
    }
}

/// Ensure text columns exist for target inference (compile-time helper used
/// in tests; text columns are the only valid example carriers).
pub fn is_text_column(dtype: DataType) -> bool {
    dtype == DataType::Text
}

#[cfg(test)]
mod tests {
    use super::*;
    use squid_adb::test_fixtures::{figure6_db, mini_imdb};

    #[test]
    fn discovers_comedy_actor_intent() {
        // Example 1.3 in miniature: funny actors share an unusually high
        // comedy count; Male/USA are common and must be dropped.
        let db = mini_imdb();
        let adb = ADb::build(&db).unwrap();
        let params = SquidParams {
            tau_a: 3, // the mini dataset's counts are small
            ..SquidParams::default()
        };
        let squid = Squid::with_params(&adb, params);
        let d = squid
            .discover(&["Jim Carrey", "Eddie Murphy", "Robin Williams"])
            .unwrap();
        assert_eq!(d.entity_table, "person");
        assert_eq!(d.projection_column, "name");
        assert_eq!(d.example_rows.len(), 3);
        let chosen = d.chosen_filters();
        assert!(
            chosen.iter().any(|f| f.describe().contains("Comedy")),
            "comedy filter expected among {:?}",
            chosen.iter().map(|f| f.describe()).collect::<Vec<_>>()
        );
        // The generic contexts are dropped: gender=Male covers 6/8 persons.
        assert!(chosen.iter().all(|f| f.attr_name != "gender"));
        // The result contains exactly the three comedy actors.
        assert_eq!(d.rows.len(), 3);
        assert!(d.sql().contains("Comedy"));
    }

    #[test]
    fn figure6_examples_yield_ranges_but_drop_common_gender() {
        let db = figure6_db();
        let adb = ADb::build(&db).unwrap();
        let squid = Squid::new(&adb);
        let d = squid.discover(&["Tom Cruise", "Clint Eastwood"]).unwrap();
        // φ⟨gender,Male,⊥⟩ has ψ=1/2, φ⟨age,[50,90],⊥⟩ ψ=5/6: with two
        // examples neither is convincing under ρ=0.1 → near-generic query.
        for s in &d.scored {
            if s.filter.attr_name == "age" {
                assert!(!s.included);
            }
        }
        assert!(d.rows.len() >= 2);
    }

    #[test]
    fn unknown_example_errors() {
        let adb = ADb::build(&mini_imdb()).unwrap();
        let squid = Squid::new(&adb);
        let err = squid.discover(&["No Such Person"]).unwrap_err();
        assert!(matches!(err, SquidError::NoMatchingColumn { .. }));
    }

    #[test]
    fn empty_examples_error() {
        let adb = ADb::build(&mini_imdb()).unwrap();
        let squid = Squid::new(&adb);
        assert_eq!(squid.discover(&[]).unwrap_err(), SquidError::EmptyExamples);
    }

    #[test]
    fn discover_on_fixed_target() {
        let adb = ADb::build(&mini_imdb()).unwrap();
        let squid = Squid::new(&adb);
        let d = squid
            .discover_on("person", "name", &["Jim Carrey", "Eddie Murphy"])
            .unwrap();
        assert_eq!(d.entity_table, "person");
        let err = squid
            .discover_on("person", "nope", &["Jim Carrey"])
            .unwrap_err();
        assert!(matches!(err, SquidError::UnknownTarget { .. }));
        let err = squid
            .discover_on("person", "name", &["No Such Person"])
            .unwrap_err();
        assert!(matches!(err, SquidError::EntityNotFound { .. }));
    }

    #[test]
    fn duplicate_examples_deduplicate() {
        let adb = ADb::build(&mini_imdb()).unwrap();
        let squid = Squid::new(&adb);
        let d = squid
            .discover_on("person", "name", &["Jim Carrey", "Jim Carrey"])
            .unwrap();
        assert_eq!(d.example_rows.len(), 1);
    }

    #[test]
    fn examples_always_in_result() {
        // E ⊆ Q(D): Definition 2.1's hard constraint.
        let adb = ADb::build(&mini_imdb()).unwrap();
        let squid = Squid::new(&adb);
        for exs in [
            vec!["Jim Carrey", "Eddie Murphy"],
            vec!["Sylvester Stallone", "Arnold Schwarzenegger"],
            vec!["Julia Roberts", "Emma Stone"],
        ] {
            let d = squid.discover(&exs).unwrap();
            for r in &d.example_rows {
                assert!(d.rows.contains(*r), "examples must satisfy Qϕ");
            }
        }
    }

    #[test]
    fn elapsed_is_recorded() {
        let adb = ADb::build(&mini_imdb()).unwrap();
        let squid = Squid::new(&adb);
        let d = squid.discover(&["Jim Carrey", "Eddie Murphy"]).unwrap();
        assert!(d.elapsed.as_nanos() > 0);
    }
}
