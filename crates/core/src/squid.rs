//! The classic one-shot SQuID API (Figure 4's online "query intent
//! discovery" module): entity lookup & disambiguation → semantic context
//! discovery → query abduction → executable query + result tuples.
//!
//! Since the session redesign, [`Squid::discover`] and
//! [`Squid::discover_on`] are thin wrappers over a one-shot
//! [`SquidSession`](crate::SquidSession): they feed every example through
//! the same incremental pipeline the interactive loop uses, so the two
//! paths cannot drift. New code that adds examples over time (or wants
//! feedback operations like pinning filters) should hold a session instead
//! of re-calling `discover`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use squid_adb::{ADb, SharedFilterSetCache};
use squid_engine::Query;
use squid_relation::{DataType, RowId, RowSet};

use crate::abduce::ScoredFilter;
use crate::error::SquidError;
use crate::filter::CandidateFilter;
use crate::params::SquidParams;
use crate::session::SquidSession;

/// The outcome of one query intent discovery run.
#[derive(Debug, Clone)]
pub struct Discovery {
    /// Entity table the examples resolved to.
    pub entity_table: String,
    /// Projected column (the one containing the example values).
    pub projection_column: String,
    /// Resolved example entity rows (after disambiguation).
    pub example_rows: Vec<RowId>,
    /// Every candidate filter with its abduction decision and scores.
    pub scored: Vec<ScoredFilter>,
    /// The abduced SPJAI query over the original database.
    pub query: Query,
    /// The equivalent SPJ query over the αDB, when expressible.
    pub adb_query: Option<Query>,
    /// Result rows (entity row ids) of the abduced query, evaluated
    /// directly against the αDB statistics (a dense bitmap).
    pub rows: RowSet,
    /// Online abduction time (entity lookup through query generation).
    pub elapsed: Duration,
}

impl Discovery {
    /// The filters Algorithm 1 chose to include.
    pub fn chosen_filters(&self) -> Vec<&CandidateFilter> {
        self.scored
            .iter()
            .filter(|s| s.included)
            .map(|s| &s.filter)
            .collect()
    }

    /// SQL rendering of the abduced query.
    pub fn sql(&self) -> String {
        squid_engine::to_sql(&self.query)
    }
}

/// Semantic similarity-aware query intent discovery (one-shot form).
///
/// Soft-deprecated in favor of [`SquidSession`](crate::SquidSession),
/// which this type now wraps: prefer a session for anything interactive.
pub struct Squid<'a> {
    adb: &'a ADb,
    params: SquidParams,
    /// Fleet-wide evaluation cache for one-shot fleets (see
    /// [`Squid::with_shared_cache`]); `None` disables caching entirely.
    shared: Option<Arc<SharedFilterSetCache>>,
}

impl<'a> Squid<'a> {
    /// New instance with default parameters.
    pub fn new(adb: &'a ADb) -> Self {
        Squid {
            adb,
            params: SquidParams::default(),
            shared: None,
        }
    }

    /// New instance with explicit parameters.
    pub fn with_params(adb: &'a ADb, params: SquidParams) -> Self {
        Squid {
            adb,
            params,
            shared: None,
        }
    }

    /// Share filter bitmaps across discoveries through a fleet-wide
    /// [`SharedFilterSetCache`]. A plain `Squid` disables the evaluation
    /// cache — a throwaway session never reuses what it admits — but a
    /// *fleet* of one-shot discoveries over the same αDB repeats popular
    /// filters constantly; with a shared cache attached, each discovery
    /// pulls resident bitmaps from (and publishes fresh ones to) the
    /// byte-bounded shared shards, exactly like hosted sessions do.
    pub fn with_shared_cache(mut self, shared: Arc<SharedFilterSetCache>) -> Self {
        self.shared = Some(shared);
        self
    }

    /// Current parameters.
    pub fn params(&self) -> &SquidParams {
        &self.params
    }

    /// Discover the most likely query intent behind `examples`
    /// (single-column string values, e.g. person names).
    ///
    /// The projection target is inferred via the inverted column index: the
    /// candidate `(entity table, text column)` pairs containing *all*
    /// examples, ranked by the semantic similarity of their disambiguated
    /// entities (a rare coherent match beats a scattered one; score ties
    /// break deterministically by `(table, column)` name).
    pub fn discover(&self, examples: &[&str]) -> Result<Discovery, SquidError> {
        self.run(None, examples)
    }

    /// Discover with an explicit projection target `table.column`
    /// (skips target inference).
    pub fn discover_on(
        &self,
        table: &str,
        column: &str,
        examples: &[&str],
    ) -> Result<Discovery, SquidError> {
        self.run(Some((table, column)), examples)
    }

    /// One-shot session drive shared by both entry points.
    fn run(
        &self,
        target: Option<(&str, &str)>,
        examples: &[&str],
    ) -> Result<Discovery, SquidError> {
        if examples.is_empty() {
            return Err(SquidError::EmptyExamples);
        }
        let started = Instant::now();
        let mut session = SquidSession::with_params(self.adb, self.params.clone());
        match &self.shared {
            // One-shot fleet: keep the cache on and wire it to the shared
            // shards so repeat filters across discoveries stay bitmap-free.
            Some(shared) => session.attach_shared_cache(Arc::clone(shared)),
            // Lone one-shot: admitting bitmaps a discarded session will
            // never reuse is pure overhead.
            None => session.disable_eval_cache(),
        }
        if let Some((table, column)) = target {
            session.set_target(table, column)?;
        }
        session.add_examples(examples)?;
        let mut d = session
            .into_discovery()
            .expect("non-empty session has a discovery");
        d.elapsed = started.elapsed();
        Ok(d)
    }
}

/// Ensure text columns exist for target inference (compile-time helper used
/// in tests; text columns are the only valid example carriers).
pub fn is_text_column(dtype: DataType) -> bool {
    dtype == DataType::Text
}

#[cfg(test)]
mod tests {
    use super::*;
    use squid_adb::test_fixtures::{figure6_db, mini_imdb};

    #[test]
    fn discovers_comedy_actor_intent() {
        // Example 1.3 in miniature: funny actors share an unusually high
        // comedy count; Male/USA are common and must be dropped.
        let db = mini_imdb();
        let adb = ADb::build(&db).unwrap();
        let params = SquidParams {
            tau_a: 3, // the mini dataset's counts are small
            ..SquidParams::default()
        };
        let squid = Squid::with_params(&adb, params);
        let d = squid
            .discover(&["Jim Carrey", "Eddie Murphy", "Robin Williams"])
            .unwrap();
        assert_eq!(d.entity_table, "person");
        assert_eq!(d.projection_column, "name");
        assert_eq!(d.example_rows.len(), 3);
        let chosen = d.chosen_filters();
        assert!(
            chosen.iter().any(|f| f.describe().contains("Comedy")),
            "comedy filter expected among {:?}",
            chosen.iter().map(|f| f.describe()).collect::<Vec<_>>()
        );
        // The generic contexts are dropped: gender=Male covers 6/8 persons.
        assert!(chosen.iter().all(|f| f.attr_name != "gender"));
        // The result contains exactly the three comedy actors.
        assert_eq!(d.rows.len(), 3);
        assert!(d.sql().contains("Comedy"));
    }

    #[test]
    fn figure6_examples_yield_ranges_but_drop_common_gender() {
        let db = figure6_db();
        let adb = ADb::build(&db).unwrap();
        let squid = Squid::new(&adb);
        let d = squid.discover(&["Tom Cruise", "Clint Eastwood"]).unwrap();
        // φ⟨gender,Male,⊥⟩ has ψ=1/2, φ⟨age,[50,90],⊥⟩ ψ=5/6: with two
        // examples neither is convincing under ρ=0.1 → near-generic query.
        for s in &d.scored {
            if s.filter.attr_name == "age" {
                assert!(!s.included);
            }
        }
        assert!(d.rows.len() >= 2);
    }

    #[test]
    fn unknown_example_errors() {
        let adb = ADb::build(&mini_imdb()).unwrap();
        let squid = Squid::new(&adb);
        let err = squid.discover(&["No Such Person"]).unwrap_err();
        assert!(matches!(err, SquidError::NoMatchingColumn { .. }));
    }

    #[test]
    fn empty_examples_error() {
        let adb = ADb::build(&mini_imdb()).unwrap();
        let squid = Squid::new(&adb);
        assert_eq!(squid.discover(&[]).unwrap_err(), SquidError::EmptyExamples);
    }

    #[test]
    fn discover_on_fixed_target() {
        let adb = ADb::build(&mini_imdb()).unwrap();
        let squid = Squid::new(&adb);
        let d = squid
            .discover_on("person", "name", &["Jim Carrey", "Eddie Murphy"])
            .unwrap();
        assert_eq!(d.entity_table, "person");
        let err = squid
            .discover_on("person", "nope", &["Jim Carrey"])
            .unwrap_err();
        assert!(matches!(err, SquidError::UnknownTarget { .. }));
        let err = squid
            .discover_on("person", "name", &["No Such Person"])
            .unwrap_err();
        assert!(matches!(err, SquidError::EntityNotFound { .. }));
    }

    #[test]
    fn duplicate_examples_deduplicate() {
        let adb = ADb::build(&mini_imdb()).unwrap();
        let squid = Squid::new(&adb);
        let d = squid
            .discover_on("person", "name", &["Jim Carrey", "Jim Carrey"])
            .unwrap();
        assert_eq!(d.example_rows.len(), 1);
    }

    #[test]
    fn examples_always_in_result() {
        // E ⊆ Q(D): Definition 2.1's hard constraint.
        let adb = ADb::build(&mini_imdb()).unwrap();
        let squid = Squid::new(&adb);
        for exs in [
            vec!["Jim Carrey", "Eddie Murphy"],
            vec!["Sylvester Stallone", "Arnold Schwarzenegger"],
            vec!["Julia Roberts", "Emma Stone"],
        ] {
            let d = squid.discover(&exs).unwrap();
            for r in &d.example_rows {
                assert!(d.rows.contains(*r), "examples must satisfy Qϕ");
            }
        }
    }

    #[test]
    fn one_shot_fleet_shares_bitmaps() {
        let adb = ADb::build(&mini_imdb()).unwrap();
        let shared = Arc::new(SharedFilterSetCache::new(adb.generation, 1 << 20));
        let fleet = Squid::new(&adb).with_shared_cache(Arc::clone(&shared));
        let slate = ["Jim Carrey", "Eddie Murphy"];
        let d1 = fleet.discover(&slate).unwrap();
        assert!(shared.stats().entries > 0, "first discovery publishes");
        let hits_before = shared.stats().hits;
        let d2 = fleet.discover(&slate).unwrap();
        assert!(
            shared.stats().hits > hits_before,
            "repeat discovery is served from the shared cache"
        );
        // Shared-cache discoveries match the plain (uncached) path.
        let plain = Squid::new(&adb).discover(&slate).unwrap();
        assert_eq!(d1.rows, d2.rows);
        assert_eq!(plain.rows, d2.rows);
        assert_eq!(plain.sql(), d2.sql());
    }

    #[test]
    fn elapsed_is_recorded() {
        let adb = ADb::build(&mini_imdb()).unwrap();
        let squid = Squid::new(&adb);
        let d = squid.discover(&["Jim Carrey", "Eddie Murphy"]).unwrap();
        assert!(d.elapsed.as_nanos() > 0);
    }
}
