//! Semantic property filters (paper Section 3) and their candidate form
//! produced by semantic-context discovery (Section 6.1.2).
//!
//! A candidate filter is a *minimal valid* filter φ: the tightest filter on
//! one semantic property that every example satisfies, annotated with the
//! statistics (selectivity ψ, domain coverage, association strength θ) the
//! probabilistic model needs.

use squid_adb::{PropStats, Property};
use squid_relation::{RowId, Sym, Value};

/// The value constraint carried by a filter.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterValue {
    /// Basic categorical: `attr = v`.
    CatEq(Value),
    /// Disjunctive categorical: `attr IN (vs)` (footnote 7 extension).
    CatIn(Vec<Value>),
    /// Basic numeric range: `low ≤ attr ≤ high`.
    NumRange(f64, f64),
    /// Derived: associated with value `v` at least `theta` times.
    DerivedEq {
        /// Property value (e.g. genre name).
        value: Value,
        /// Association-strength threshold θ.
        theta: u64,
    },
    /// Derived, normalized: share of associations to `v` is ≥ `frac`
    /// (§7.4). `raw_theta` keeps the un-normalized minimum count for the
    /// α significance test.
    DerivedFrac {
        /// Property value.
        value: Value,
        /// Minimum share in [0, 1].
        frac: f64,
        /// Raw minimum association count.
        raw_theta: u64,
    },
    /// Derived over a numeric mid attribute: at least `theta` associations
    /// with attribute value ≥ `cut` ("≥10 movies released after 2010").
    DerivedGe {
        /// Attribute cutpoint.
        cut: f64,
        /// Association-strength threshold θ.
        theta: u64,
    },
}

impl FilterValue {
    /// Association strength θ, or `None` for basic filters (θ = ⊥).
    pub fn theta(&self) -> Option<u64> {
        match self {
            FilterValue::DerivedEq { theta, .. } | FilterValue::DerivedGe { theta, .. } => {
                Some(*theta)
            }
            FilterValue::DerivedFrac { raw_theta, .. } => Some(*raw_theta),
            _ => None,
        }
    }

    /// Is this a derived filter?
    pub fn is_derived(&self) -> bool {
        self.theta().is_some()
    }

    /// The association strength used for the outlier test λ: raw counts, or
    /// the fraction when normalized.
    pub fn strength(&self) -> Option<f64> {
        match self {
            FilterValue::DerivedEq { theta, .. } | FilterValue::DerivedGe { theta, .. } => {
                Some(*theta as f64)
            }
            FilterValue::DerivedFrac { frac, .. } => Some(*frac),
            _ => None,
        }
    }
}

/// A minimal valid filter discovered from the examples, annotated with the
/// statistics used by the probabilistic model.
///
/// Identifiers are interned [`Sym`]s: candidate filters flow through the
/// interactive session pipeline on every turn (snapshot cache → abduction →
/// delta rendering), so cloning one must not allocate.
#[derive(Debug, Clone)]
pub struct CandidateFilter {
    /// Id of the semantic property this filter constrains (interned).
    pub prop_id: Sym,
    /// Display name of the attribute (for rendering; interned).
    pub attr_name: Sym,
    /// The constraint.
    pub value: FilterValue,
    /// ψ(φ): fraction of entities satisfying the filter.
    pub selectivity: f64,
    /// Domain coverage (input to δ).
    pub coverage: f64,
}

impl CandidateFilter {
    /// Human-readable rendering, e.g. `⟨genre.name, Comedy, 40⟩`.
    pub fn describe(&self) -> String {
        match &self.value {
            FilterValue::CatEq(v) => format!("⟨{}, {}, ⊥⟩", self.attr_name, v),
            FilterValue::CatIn(vs) => {
                let list: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
                format!("⟨{}, {{{}}}, ⊥⟩", self.attr_name, list.join("|"))
            }
            FilterValue::NumRange(l, h) => format!("⟨{}, [{}, {}], ⊥⟩", self.attr_name, l, h),
            FilterValue::DerivedEq { value, theta } => {
                format!("⟨{}, {}, {}⟩", self.attr_name, value, theta)
            }
            FilterValue::DerivedFrac { value, frac, .. } => {
                format!("⟨{}, {}, {:.0}%⟩", self.attr_name, value, frac * 100.0)
            }
            FilterValue::DerivedGe { cut, theta } => {
                format!("⟨{} ≥ {}, {}⟩", self.attr_name, cut, theta)
            }
        }
    }

    /// Does entity `row` satisfy this filter? Evaluated directly against the
    /// αDB's per-entity statistics (the fast path for abduced queries).
    pub fn matches_row(&self, prop: &Property, row: RowId) -> bool {
        match (&self.value, &prop.stats) {
            (FilterValue::CatEq(v), PropStats::Categorical(s)) => s.values_of(row).contains(v),
            (FilterValue::CatIn(vs), PropStats::Categorical(s)) => {
                s.values_of(row).iter().any(|v| vs.contains(v))
            }
            (FilterValue::NumRange(l, h), PropStats::Numeric(s)) => {
                s.value_of(row).is_some_and(|x| x >= *l && x <= *h)
            }
            (FilterValue::DerivedEq { value, theta }, PropStats::Derived(s)) => {
                s.count_of(row, value) >= *theta
            }
            (FilterValue::DerivedFrac { value, frac, .. }, PropStats::Derived(s)) => {
                s.frac_of(row, value) >= *frac
            }
            (FilterValue::DerivedGe { cut, theta }, PropStats::DerivedNumeric(s)) => {
                s.suffix_count_of(row, *cut) >= *theta
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_extraction() {
        assert_eq!(FilterValue::CatEq(Value::text("M")).theta(), None);
        assert_eq!(FilterValue::NumRange(1.0, 2.0).theta(), None);
        assert_eq!(
            FilterValue::DerivedEq {
                value: Value::text("Comedy"),
                theta: 40
            }
            .theta(),
            Some(40)
        );
        assert_eq!(
            FilterValue::DerivedFrac {
                value: Value::text("Comedy"),
                frac: 0.6,
                raw_theta: 9
            }
            .theta(),
            Some(9)
        );
    }

    #[test]
    fn strength_uses_fraction_when_normalized() {
        let f = FilterValue::DerivedFrac {
            value: Value::text("Comedy"),
            frac: 0.6,
            raw_theta: 9,
        };
        assert_eq!(f.strength(), Some(0.6));
        let g = FilterValue::DerivedEq {
            value: Value::text("Comedy"),
            theta: 40,
        };
        assert_eq!(g.strength(), Some(40.0));
    }

    #[test]
    fn describe_formats() {
        let f = CandidateFilter {
            prop_id: "p".into(),
            attr_name: "genre.name".into(),
            value: FilterValue::DerivedEq {
                value: Value::text("Comedy"),
                theta: 40,
            },
            selectivity: 0.01,
            coverage: 0.05,
        };
        assert_eq!(f.describe(), "⟨genre.name, Comedy, 40⟩");
        let g = CandidateFilter {
            prop_id: "p".into(),
            attr_name: "age".into(),
            value: FilterValue::NumRange(50.0, 90.0),
            selectivity: 0.8,
            coverage: 0.6,
        };
        assert_eq!(g.describe(), "⟨age, [50, 90], ⊥⟩");
    }
}
