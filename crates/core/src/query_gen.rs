//! Turning an abduced filter set ϕ into executable queries (Section 6.2):
//! the SPJAI form over the original database, the SPJ form over the αDB's
//! materialized derived relations (Example 2.2), and a direct evaluation
//! path against the αDB's per-entity statistics.

use squid_adb::{EntityProps, FilterFingerprint, FilterSetCache, PropKind, PropStats, Property};
use squid_engine::{Pred, Query, QueryBlock};
use squid_relation::{RowSet, Value};

use crate::filter::{CandidateFilter, FilterValue};

/// Build the SPJAI query over the ORIGINAL database expressing the base
/// query plus the chosen filters. Normalized (fraction) filters cannot be
/// expressed in this query class and are skipped (callers evaluate them via
/// [`evaluate`]); the returned flag reports whether any were skipped.
pub fn original_query(
    entity: &EntityProps,
    filters: &[CandidateFilter],
    projection: &str,
) -> (Query, bool) {
    let mut block = QueryBlock::new(&entity.table);
    let mut skipped_normalized = false;
    for f in filters {
        let Some(prop) = entity.property(f.prop_id) else {
            continue;
        };
        // All identifiers come from the property's prebuilt fragments —
        // query generation runs per session turn and must not re-intern
        // (or re-allocate) the join-path names.
        match &f.value {
            FilterValue::CatEq(v) => match (prop.fragments.root_col(), &prop.def.kind) {
                (Some(col), PropKind::DirectCategorical { .. }) => {
                    block = block.filter(Pred::eq(col, *v));
                }
                _ => {
                    if let Some(sj) = prop.fragments.semi_join(v, 1) {
                        block = block.semi_join(sj);
                    }
                }
            },
            FilterValue::CatIn(vs) => {
                if let (Some(col), PropKind::DirectCategorical { .. }) =
                    (prop.fragments.root_col(), &prop.def.kind)
                {
                    block = block.filter(Pred::in_set(col, vs.clone()));
                }
            }
            FilterValue::NumRange(l, h) => {
                if let (Some(col), PropKind::DirectNumeric { .. }) =
                    (prop.fragments.root_col(), &prop.def.kind)
                {
                    block = block.filter(range_pred(col, *l, *h));
                }
            }
            FilterValue::DerivedEq { value, theta } => {
                if let Some(sj) = prop.fragments.semi_join(value, *theta) {
                    block = block.semi_join(sj);
                }
            }
            FilterValue::DerivedGe { cut, theta } => {
                if let Some(sj) = prop.fragments.semi_join_ge(&num_value(*cut), *theta) {
                    block = block.semi_join(sj);
                }
            }
            FilterValue::DerivedFrac { .. } => {
                skipped_normalized = true;
            }
        }
    }
    (Query::single(block, projection), skipped_normalized)
}

/// Build the equivalent SPJ query over the αDB (derived relations replace
/// the aggregation joins, Example 2.2). Returns `None` when a chosen filter
/// has no αDB-expressible form (normalized fractions, or derived relations
/// that were not materialized).
pub fn adb_query(
    entity: &EntityProps,
    filters: &[CandidateFilter],
    projection: &str,
) -> Option<Query> {
    let mut block = QueryBlock::new(&entity.table);
    for f in filters {
        let prop = entity.property(f.prop_id)?;
        match &f.value {
            FilterValue::CatEq(v) => match (prop.fragments.root_col(), &prop.def.kind) {
                (Some(col), PropKind::DirectCategorical { .. }) => {
                    block = block.filter(Pred::eq(col, *v));
                }
                _ => {
                    let sj = prop.fragments.semi_join(v, 1)?;
                    block = block.semi_join(sj);
                }
            },
            FilterValue::CatIn(vs) => {
                if let (Some(col), PropKind::DirectCategorical { .. }) =
                    (prop.fragments.root_col(), &prop.def.kind)
                {
                    block = block.filter(Pred::in_set(col, vs.clone()));
                } else {
                    return None;
                }
            }
            FilterValue::NumRange(l, h) => {
                if let (Some(col), PropKind::DirectNumeric { .. }) =
                    (prop.fragments.root_col(), &prop.def.kind)
                {
                    block = block.filter(range_pred(col, *l, *h));
                } else {
                    return None;
                }
            }
            FilterValue::DerivedEq { value, theta } => {
                let sj = prop.fragments.adb_semi_join(value, *theta)?;
                block = block.semi_join(sj);
            }
            // Suffix ranges need SUM over derived rows: not expressible as
            // a single SPJ filter on the materialized relation.
            FilterValue::DerivedGe { .. } | FilterValue::DerivedFrac { .. } => return None,
        }
    }
    Some(Query::single(block, projection))
}

/// Evaluate the chosen filters directly against the αDB's per-entity
/// statistics: the set of qualifying entity rows. This is exact for every
/// filter kind (including normalized fractions) and is how SQuID returns
/// result tuples in real time.
///
/// When the most selective filter can *enumerate* its satisfying rows from
/// the αDB's value→row postings (equality, range, and derived-count
/// filters can; suffix-range filters cannot), evaluation walks only those
/// rows instead of every entity — O(matches of the rarest filter) rather
/// than O(n).
pub fn evaluate(entity: &EntityProps, filters: &[CandidateFilter]) -> RowSet {
    let mut out = RowSet::with_universe(entity.n);
    // Resolve each filter's property once, not once per row. A filter
    // whose property is unknown excludes every row (as before).
    let mut resolved = Vec::with_capacity(filters.len());
    for f in filters {
        let Some(prop) = entity.property(f.prop_id) else {
            return out;
        };
        resolved.push((f, prop));
    }
    // Most selective filter first: rows that fail short-circuit earliest
    // (and the driver below enumerates the fewest candidates).
    resolved.sort_by(|a, b| a.0.selectivity.total_cmp(&b.0.selectivity));
    let driver = resolved.iter().position(|(f, p)| can_enumerate(f, p));
    match driver {
        Some(di) => {
            let rest: Vec<_> = resolved
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != di)
                .map(|(_, fp)| *fp)
                .collect();
            let (df, dp) = resolved[di];
            enumerate_rows(df, dp, &mut |row| {
                if !out.contains(row) && rest.iter().all(|(f, p)| f.matches_row(p, row)) {
                    out.insert(row);
                }
            });
        }
        None => {
            'rows: for row in 0..entity.n {
                for (f, prop) in &resolved {
                    if !f.matches_row(prop, row) {
                        continue 'rows;
                    }
                }
                out.insert(row);
            }
        }
    }
    out
}

/// Canonical [`FilterFingerprint`] of a candidate filter: the interned
/// property id, a kind tag, θ, and the value/bounds as raw words (symbol
/// id / integer / float bits per [`Value`] variant). Filters with equal
/// fingerprints have identical satisfying row sets — the
/// [`FilterSetCache`] admission key.
///
/// The encoding is intentionally conservative: `Int(3)` and `Float(3.0)`
/// compare equal as [`Value`]s but fingerprint differently, which only
/// costs a redundant cache entry, never a wrong hit.
pub fn filter_fingerprint(f: &CandidateFilter) -> FilterFingerprint {
    fn value_words(v: &Value) -> [u64; 2] {
        match v {
            Value::Null => [0, 0],
            Value::Bool(b) => [1, *b as u64],
            Value::Int(i) => [2, *i as u64],
            Value::Float(x) => [3, x.to_bits()],
            Value::Text(s) => [4, s.id() as u64],
        }
    }
    let pid = f.prop_id;
    match &f.value {
        FilterValue::CatEq(v) => FilterFingerprint::new(pid, 0, 0, &value_words(v)),
        FilterValue::CatIn(vs) => {
            // Canonical order: `Value`'s total order, so permuted IN lists
            // fingerprint identically.
            let mut sorted: Vec<&Value> = vs.iter().collect();
            sorted.sort();
            let mut payload = Vec::with_capacity(2 * sorted.len());
            for v in sorted {
                payload.extend(value_words(v));
            }
            FilterFingerprint::new(pid, 1, 0, &payload)
        }
        FilterValue::NumRange(l, h) => {
            FilterFingerprint::new(pid, 2, 0, &[l.to_bits(), h.to_bits()])
        }
        FilterValue::DerivedEq { value, theta } => {
            FilterFingerprint::new(pid, 3, *theta, &value_words(value))
        }
        FilterValue::DerivedFrac {
            value,
            frac,
            raw_theta,
        } => {
            let [a, b] = value_words(value);
            FilterFingerprint::new(pid, 4, *raw_theta, &[a, b, frac.to_bits()])
        }
        FilterValue::DerivedGe { cut, theta } => {
            FilterFingerprint::new(pid, 5, *theta, &[cut.to_bits()])
        }
    }
}

/// The exact satisfying row set of ONE filter: postings enumeration when
/// the statistics support it, otherwise a full per-row scan (suffix-range
/// filters and hand-assembled stats). This is the cache-miss path of
/// [`evaluate_cached`] — each distinct filter pays it once per session.
pub fn filter_row_set(entity: &EntityProps, f: &CandidateFilter, prop: &Property) -> RowSet {
    let mut out = RowSet::with_universe(entity.n);
    if can_enumerate(f, prop) {
        enumerate_rows(f, prop, &mut |row| {
            out.insert(row);
        });
    } else {
        for row in 0..entity.n {
            if f.matches_row(prop, row) {
                out.insert(row);
            }
        }
    }
    out
}

/// Upper bound on a filter's match count, read off the statistics in O(1)
/// (postings lengths) or O(log n) (two binary searches for ranges).
/// `None` when the filter cannot enumerate its matches at all.
fn match_estimate(f: &CandidateFilter, prop: &Property) -> Option<usize> {
    match (&f.value, &prop.stats) {
        (FilterValue::CatEq(v), PropStats::Categorical(s)) if s.enumerable() => {
            Some(s.rows_with(v).len())
        }
        (FilterValue::CatIn(vs), PropStats::Categorical(s)) if s.enumerable() => {
            Some(vs.iter().map(|v| s.rows_with(v).len()).sum())
        }
        (FilterValue::NumRange(l, h), PropStats::Numeric(s)) if s.enumerable() => {
            Some(s.rows_in_range(*l, *h).len())
        }
        (
            FilterValue::DerivedEq { value, .. } | FilterValue::DerivedFrac { value, .. },
            PropStats::Derived(s),
        ) if s.enumerable() => Some(s.postings_of(value).len()),
        _ => None,
    }
}

/// Is a cache miss on this filter worth materializing? Two gates:
///
/// * it must be *enumerable* — non-enumerable filters (suffix ranges,
///   hand-assembled stats) would need an O(n) scan with a per-row probe,
///   which the probe-restricted path beats by orders of magnitude;
/// * it must be *selective enough* — a bitmap with most rows set costs a
///   long postings walk to build yet removes almost nothing from the
///   intersection, while probing it over the surviving rows is near-free.
fn admit_on_miss(f: &CandidateFilter, prop: &Property, n: usize) -> bool {
    match match_estimate(f, prop) {
        Some(m) => m <= (n / 4).max(64),
        None => false,
    }
}

/// Drop from `rows` every row failing `f` — the evaluation path for
/// filters whose sets are not worth materializing: only the rows that
/// survived the cached intersection are probed.
fn restrict_by_probe(rows: &mut RowSet, f: &CandidateFilter, prop: &Property) {
    let failing: Vec<squid_relation::RowId> =
        rows.iter().filter(|&r| !f.matches_row(prop, r)).collect();
    for r in failing {
        rows.remove(r);
    }
}

/// One incremental result-maintenance step for the session: restrict
/// `rows` by a single newly chosen filter — through its cached bitmap when
/// resident (or cheap to admit from postings), by probing the surviving
/// rows otherwise. An unknown property clears the result, matching
/// [`evaluate`].
pub(crate) fn restrict_rows(
    rows: &mut RowSet,
    entity: &EntityProps,
    f: &CandidateFilter,
    fp: &FilterFingerprint,
    cache: &mut FilterSetCache,
) {
    let Some(prop) = entity.property(f.prop_id) else {
        *rows = RowSet::with_universe(entity.n);
        return;
    };
    if let Some(set) = cache.lookup(fp) {
        rows.intersect_with(&set);
    } else if admit_on_miss(f, prop, entity.n) {
        let set = cache.insert_with(fp, || filter_row_set(entity, f, prop));
        rows.intersect_with(&set);
    } else {
        restrict_by_probe(rows, f, prop);
    }
}

/// [`evaluate`] through a [`FilterSetCache`]: each filter's satisfying set
/// is fetched by fingerprint (computed from postings and memoized on a
/// miss), the resident sets are intersected word-wise smallest-first, and
/// filters too expensive to materialize probe only the surviving rows.
/// With a warm cache a repeat evaluation performs no postings walks at all
/// — only `u64` AND loops over resident bitmaps.
///
/// The lookup is transparently **two-level** when the cache has a
/// [`SharedFilterSetCache`](squid_adb::SharedFilterSetCache) attached: a
/// local miss consults the fleet-wide shards (brief per-shard lock,
/// `Arc` clone out), and a full miss publishes the freshly computed set
/// back — so warm *cross-session* evaluations are bitmap algebra too.
///
/// Exactly equivalent to the uncached [`evaluate`] (property-tested), and
/// like it, an unknown property id excludes every row.
pub fn evaluate_cached(
    entity: &EntityProps,
    filters: &[CandidateFilter],
    cache: &mut FilterSetCache,
) -> RowSet {
    let fps: Vec<FilterFingerprint> = filters.iter().map(filter_fingerprint).collect();
    evaluate_cached_fps(entity, filters, &fps, cache)
}

/// [`evaluate_cached`] with the fingerprints precomputed by the caller
/// (the session already maintains them for its turn-over-turn diff).
pub(crate) fn evaluate_cached_fps(
    entity: &EntityProps,
    filters: &[CandidateFilter],
    fps: &[FilterFingerprint],
    cache: &mut FilterSetCache,
) -> RowSet {
    if filters.is_empty() {
        return RowSet::full(entity.n);
    }
    // The probe mask below is a `u64`; abduced filter sets are tiny, but
    // stay correct for adversarial inputs.
    if filters.len() > 64 {
        return evaluate(entity, filters);
    }
    let mut props = Vec::with_capacity(filters.len());
    for f in filters {
        let Some(prop) = entity.property(f.prop_id) else {
            return RowSet::with_universe(entity.n);
        };
        props.push(prop);
    }
    // Set-backed filters (resident, or cheap to admit from postings) feed
    // the bitmap intersection; the rest probe the surviving rows after it.
    // One hash probe per filter: the resident `Arc` handles ride along.
    let mut sized: Vec<(usize, std::sync::Arc<RowSet>)> = Vec::with_capacity(filters.len());
    let mut probe_mask = 0u64;
    for (i, (f, prop)) in filters.iter().zip(&props).enumerate() {
        if let Some(set) = cache.lookup(&fps[i]) {
            sized.push((set.len(), set));
        } else if admit_on_miss(f, prop, entity.n) {
            let set = cache.insert_with(&fps[i], || filter_row_set(entity, f, prop));
            sized.push((set.len(), set));
        } else {
            probe_mask |= 1 << i;
        }
    }
    if sized.is_empty() {
        // Nothing to intersect from bitmaps: the classic driver-based
        // evaluation is strictly better than scanning per filter.
        return evaluate(entity, filters);
    }
    // Ascending size: the running intersection shrinks as early as possible.
    sized.sort_unstable_by_key(|(len, _)| *len);
    let mut out = (*sized[0].1).clone();
    for (_, set) in &sized[1..] {
        if out.is_empty() {
            break;
        }
        out.intersect_with(set);
    }
    for (i, (f, prop)) in filters.iter().zip(&props).enumerate() {
        if probe_mask & (1 << i) != 0 && !out.is_empty() {
            restrict_by_probe(&mut out, f, prop);
        }
    }
    out
}

/// Can this filter enumerate exactly its satisfying rows from postings?
/// (`enumerable()` guards against hand-assembled stats without postings.)
fn can_enumerate(f: &CandidateFilter, prop: &Property) -> bool {
    match (&f.value, &prop.stats) {
        (FilterValue::CatEq(_) | FilterValue::CatIn(_), PropStats::Categorical(s)) => {
            s.enumerable()
        }
        (FilterValue::NumRange(..), PropStats::Numeric(s)) => s.enumerable(),
        (
            FilterValue::DerivedEq { .. } | FilterValue::DerivedFrac { .. },
            PropStats::Derived(s),
        ) => s.enumerable(),
        _ => false,
    }
}

/// Visit every row satisfying `f` (exactly once per distinct row for the
/// single-value kinds; `CatIn` may revisit rows shared between values —
/// the caller deduplicates via its output set).
fn enumerate_rows(
    f: &CandidateFilter,
    prop: &Property,
    visit: &mut dyn FnMut(squid_relation::RowId),
) {
    match (&f.value, &prop.stats) {
        (FilterValue::CatEq(v), PropStats::Categorical(s)) => {
            for &row in s.rows_with(v) {
                visit(row);
            }
        }
        (FilterValue::CatIn(vs), PropStats::Categorical(s)) => {
            for v in vs {
                for &row in s.rows_with(v) {
                    visit(row);
                }
            }
        }
        (FilterValue::NumRange(l, h), PropStats::Numeric(s)) => {
            for &(_, row) in s.rows_in_range(*l, *h) {
                visit(row);
            }
        }
        (FilterValue::DerivedEq { value, theta }, PropStats::Derived(s)) => {
            for &(row, c) in s.postings_of(value) {
                if c >= *theta {
                    visit(row);
                }
            }
        }
        (FilterValue::DerivedFrac { value, frac, .. }, PropStats::Derived(s)) => {
            for &(row, _) in s.postings_of(value) {
                if s.frac_of(row, value) >= *frac {
                    visit(row);
                }
            }
        }
        _ => unreachable!("gated by can_enumerate"),
    }
}

fn num_value(x: f64) -> Value {
    if x.fract() == 0.0 && x.abs() < i64::MAX as f64 {
        Value::Int(x as i64)
    } else {
        Value::Float(x)
    }
}

fn range_pred(column: squid_relation::Sym, l: f64, h: f64) -> Pred {
    Pred::between(column, num_value(l), num_value(h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::discover_contexts;
    use crate::params::SquidParams;
    use squid_adb::{test_fixtures, ADb};
    use squid_engine::{to_sql, Executor};

    fn comedy_filter(entity: &EntityProps) -> CandidateFilter {
        let prop = entity
            .props
            .iter()
            .find(|p| matches!(&p.def.kind, PropKind::TwoHopCount { prop_table, .. } if prop_table == "genre"))
            .unwrap();
        CandidateFilter {
            prop_id: prop.def.id.as_str().into(),
            attr_name: prop.def.attr_name.as_str().into(),
            value: FilterValue::DerivedEq {
                value: Value::text("Comedy"),
                theta: 4,
            },
            selectivity: 0.375,
            coverage: 0.25,
        }
    }

    #[test]
    fn original_and_adb_forms_agree_with_direct_evaluation() {
        let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
        let e = adb.entity("person").unwrap();
        let filters = vec![comedy_filter(e)];

        let direct = evaluate(e, &filters);
        assert_eq!(direct.len(), 3); // Jim, Eddie, Robin

        let (orig, skipped) = original_query(e, &filters, "name");
        assert!(!skipped);
        let exec = Executor::new(&adb.database);
        let r_orig = exec.execute(&orig).unwrap();
        assert_eq!(r_orig.rows, direct);

        let aq = adb_query(e, &filters, "name").expect("αDB form");
        let r_adb = exec.execute(&aq).unwrap();
        assert_eq!(r_adb.rows, direct);

        // The αDB form is structurally simpler: fewer joins.
        assert!(aq.join_predicate_count() < orig.join_predicate_count());
    }

    #[test]
    fn basic_filters_become_root_predicates() {
        let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
        let e = adb.entity("person").unwrap();
        let f = CandidateFilter {
            prop_id: "person.gender".into(),
            attr_name: "gender".into(),
            value: FilterValue::CatEq(Value::text("Male")),
            selectivity: 0.75,
            coverage: 0.5,
        };
        let (q, _) = original_query(e, &[f], "name");
        assert_eq!(q.join_predicate_count(), 0);
        assert_eq!(q.selection_predicate_count(), 1);
        assert!(to_sql(&q).contains("t0.gender = 'Male'"));
    }

    #[test]
    fn normalized_filters_skip_sql_but_evaluate() {
        let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
        let e = adb.entity("person").unwrap();
        let prop = e
            .props
            .iter()
            .find(|p| matches!(&p.def.kind, PropKind::TwoHopCount { prop_table, .. } if prop_table == "genre"))
            .unwrap();
        let f = CandidateFilter {
            prop_id: prop.def.id.as_str().into(),
            attr_name: prop.def.attr_name.as_str().into(),
            value: FilterValue::DerivedFrac {
                value: Value::text("Comedy"),
                frac: 0.9,
                raw_theta: 4,
            },
            selectivity: 0.3,
            coverage: 0.25,
        };
        let (_, skipped) = original_query(e, std::slice::from_ref(&f), "name");
        assert!(skipped);
        assert!(adb_query(e, std::slice::from_ref(&f), "name").is_none());
        let rows = evaluate(e, &[f]);
        assert!(!rows.is_empty());
    }

    #[test]
    fn evaluation_matches_contexts_for_examples() {
        // Whatever contexts are discovered from the examples, the examples
        // themselves must satisfy all of them (Lemma 3.1).
        let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
        let e = adb.entity("person").unwrap();
        let rows = vec![e.pk_to_row[&1], e.pk_to_row[&2]];
        let filters = discover_contexts(e, &rows, &SquidParams::default());
        let result = evaluate(e, &filters);
        for r in &rows {
            assert!(result.contains(*r));
        }
    }

    #[test]
    fn numeric_range_renders_between() {
        let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
        let e = adb.entity("person").unwrap();
        let f = CandidateFilter {
            prop_id: "person.birth_year".into(),
            attr_name: "birth_year".into(),
            value: FilterValue::NumRange(1961.0, 1962.0),
            selectivity: 0.25,
            coverage: 0.1,
        };
        let (q, _) = original_query(e, &[f], "name");
        assert!(to_sql(&q).contains("BETWEEN 1961 AND 1962"));
        let exec = Executor::new(&adb.database);
        assert_eq!(exec.execute(&q).unwrap().len(), 2);
    }
}
