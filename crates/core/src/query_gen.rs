//! Turning an abduced filter set ϕ into executable queries (Section 6.2):
//! the SPJAI form over the original database, the SPJ form over the αDB's
//! materialized derived relations (Example 2.2), and a direct evaluation
//! path against the αDB's per-entity statistics.

use squid_adb::{EntityProps, PropKind, PropStats, Property};
use squid_engine::{PathStep, Pred, Query, QueryBlock, SemiJoin};
use squid_relation::{RowSet, Value};

use crate::filter::{CandidateFilter, FilterValue};

/// Build the SPJAI query over the ORIGINAL database expressing the base
/// query plus the chosen filters. Normalized (fraction) filters cannot be
/// expressed in this query class and are skipped (callers evaluate them via
/// [`evaluate`]); the returned flag reports whether any were skipped.
pub fn original_query(
    entity: &EntityProps,
    filters: &[CandidateFilter],
    projection: &str,
) -> (Query, bool) {
    let mut block = QueryBlock::new(&entity.table);
    let mut skipped_normalized = false;
    for f in filters {
        let Some(prop) = entity.property(&f.prop_id) else {
            continue;
        };
        match &f.value {
            FilterValue::CatEq(v) => match &prop.def.kind {
                PropKind::DirectCategorical { column } => {
                    block = block.filter(Pred::eq(column, *v));
                }
                _ => {
                    if let Some(sj) = prop.def.semi_join(&entity.pk_column, v, 1) {
                        block = block.semi_join(sj);
                    }
                }
            },
            FilterValue::CatIn(vs) => {
                if let PropKind::DirectCategorical { column } = &prop.def.kind {
                    block = block.filter(Pred::in_set(column, vs.clone()));
                }
            }
            FilterValue::NumRange(l, h) => {
                if let PropKind::DirectNumeric { column } = &prop.def.kind {
                    block = block.filter(range_pred(column, *l, *h));
                }
            }
            FilterValue::DerivedEq { value, theta } => {
                if let Some(sj) = prop.def.semi_join(&entity.pk_column, value, *theta) {
                    block = block.semi_join(sj);
                }
            }
            FilterValue::DerivedGe { cut, theta } => {
                if let Some(sj) = prop
                    .def
                    .semi_join_ge(&entity.pk_column, &num_value(*cut), *theta)
                {
                    block = block.semi_join(sj);
                }
            }
            FilterValue::DerivedFrac { .. } => {
                skipped_normalized = true;
            }
        }
    }
    (Query::single(block, projection), skipped_normalized)
}

/// Build the equivalent SPJ query over the αDB (derived relations replace
/// the aggregation joins, Example 2.2). Returns `None` when a chosen filter
/// has no αDB-expressible form (normalized fractions, or derived relations
/// that were not materialized).
pub fn adb_query(
    entity: &EntityProps,
    filters: &[CandidateFilter],
    projection: &str,
) -> Option<Query> {
    let mut block = QueryBlock::new(&entity.table);
    for f in filters {
        let prop = entity.property(&f.prop_id)?;
        match &f.value {
            FilterValue::CatEq(v) => match &prop.def.kind {
                PropKind::DirectCategorical { column } => {
                    block = block.filter(Pred::eq(column, *v));
                }
                _ => {
                    let sj = prop.def.semi_join(&entity.pk_column, v, 1)?;
                    block = block.semi_join(sj);
                }
            },
            FilterValue::CatIn(vs) => {
                if let PropKind::DirectCategorical { column } = &prop.def.kind {
                    block = block.filter(Pred::in_set(column, vs.clone()));
                } else {
                    return None;
                }
            }
            FilterValue::NumRange(l, h) => {
                if let PropKind::DirectNumeric { column } = &prop.def.kind {
                    block = block.filter(range_pred(column, *l, *h));
                } else {
                    return None;
                }
            }
            FilterValue::DerivedEq { value, theta } => {
                let table = prop.derived_table.as_deref()?;
                block = block.semi_join(SemiJoin::exists(vec![PathStep::new(
                    table,
                    &entity.pk_column,
                    "entity_id",
                )
                .filter(Pred::eq("value", *value))
                .filter(Pred::ge("count", Value::Int(*theta as i64)))]));
            }
            // Suffix ranges need SUM over derived rows: not expressible as
            // a single SPJ filter on the materialized relation.
            FilterValue::DerivedGe { .. } | FilterValue::DerivedFrac { .. } => return None,
        }
    }
    Some(Query::single(block, projection))
}

/// Evaluate the chosen filters directly against the αDB's per-entity
/// statistics: the set of qualifying entity rows. This is exact for every
/// filter kind (including normalized fractions) and is how SQuID returns
/// result tuples in real time.
///
/// When the most selective filter can *enumerate* its satisfying rows from
/// the αDB's value→row postings (equality, range, and derived-count
/// filters can; suffix-range filters cannot), evaluation walks only those
/// rows instead of every entity — O(matches of the rarest filter) rather
/// than O(n).
pub fn evaluate(entity: &EntityProps, filters: &[CandidateFilter]) -> RowSet {
    let mut out = RowSet::with_universe(entity.n);
    // Resolve each filter's property once, not once per row. A filter
    // whose property is unknown excludes every row (as before).
    let mut resolved = Vec::with_capacity(filters.len());
    for f in filters {
        let Some(prop) = entity.property(&f.prop_id) else {
            return out;
        };
        resolved.push((f, prop));
    }
    // Most selective filter first: rows that fail short-circuit earliest
    // (and the driver below enumerates the fewest candidates).
    resolved.sort_by(|a, b| a.0.selectivity.total_cmp(&b.0.selectivity));
    let driver = resolved.iter().position(|(f, p)| can_enumerate(f, p));
    match driver {
        Some(di) => {
            let rest: Vec<_> = resolved
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != di)
                .map(|(_, fp)| *fp)
                .collect();
            let (df, dp) = resolved[di];
            enumerate_rows(df, dp, &mut |row| {
                if !out.contains(row) && rest.iter().all(|(f, p)| f.matches_row(p, row)) {
                    out.insert(row);
                }
            });
        }
        None => {
            'rows: for row in 0..entity.n {
                for (f, prop) in &resolved {
                    if !f.matches_row(prop, row) {
                        continue 'rows;
                    }
                }
                out.insert(row);
            }
        }
    }
    out
}

/// Can this filter enumerate exactly its satisfying rows from postings?
/// (`enumerable()` guards against hand-assembled stats without postings.)
fn can_enumerate(f: &CandidateFilter, prop: &Property) -> bool {
    match (&f.value, &prop.stats) {
        (FilterValue::CatEq(_) | FilterValue::CatIn(_), PropStats::Categorical(s)) => {
            s.enumerable()
        }
        (FilterValue::NumRange(..), PropStats::Numeric(s)) => s.enumerable(),
        (
            FilterValue::DerivedEq { .. } | FilterValue::DerivedFrac { .. },
            PropStats::Derived(s),
        ) => s.enumerable(),
        _ => false,
    }
}

/// Visit every row satisfying `f` (exactly once per distinct row for the
/// single-value kinds; `CatIn` may revisit rows shared between values —
/// the caller deduplicates via its output set).
fn enumerate_rows(
    f: &CandidateFilter,
    prop: &Property,
    visit: &mut dyn FnMut(squid_relation::RowId),
) {
    match (&f.value, &prop.stats) {
        (FilterValue::CatEq(v), PropStats::Categorical(s)) => {
            for &row in s.rows_with(v) {
                visit(row);
            }
        }
        (FilterValue::CatIn(vs), PropStats::Categorical(s)) => {
            for v in vs {
                for &row in s.rows_with(v) {
                    visit(row);
                }
            }
        }
        (FilterValue::NumRange(l, h), PropStats::Numeric(s)) => {
            for &(_, row) in s.rows_in_range(*l, *h) {
                visit(row);
            }
        }
        (FilterValue::DerivedEq { value, theta }, PropStats::Derived(s)) => {
            for &(row, c) in s.postings_of(value) {
                if c >= *theta {
                    visit(row);
                }
            }
        }
        (FilterValue::DerivedFrac { value, frac, .. }, PropStats::Derived(s)) => {
            for &(row, _) in s.postings_of(value) {
                if s.frac_of(row, value) >= *frac {
                    visit(row);
                }
            }
        }
        _ => unreachable!("gated by can_enumerate"),
    }
}

fn num_value(x: f64) -> Value {
    if x.fract() == 0.0 && x.abs() < i64::MAX as f64 {
        Value::Int(x as i64)
    } else {
        Value::Float(x)
    }
}

fn range_pred(column: &str, l: f64, h: f64) -> Pred {
    Pred::between(column, num_value(l), num_value(h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::discover_contexts;
    use crate::params::SquidParams;
    use squid_adb::{test_fixtures, ADb};
    use squid_engine::{to_sql, Executor};

    fn comedy_filter(entity: &EntityProps) -> CandidateFilter {
        let prop = entity
            .props
            .iter()
            .find(|p| matches!(&p.def.kind, PropKind::TwoHopCount { prop_table, .. } if prop_table == "genre"))
            .unwrap();
        CandidateFilter {
            prop_id: prop.def.id.clone(),
            attr_name: prop.def.attr_name.clone(),
            value: FilterValue::DerivedEq {
                value: Value::text("Comedy"),
                theta: 4,
            },
            selectivity: 0.375,
            coverage: 0.25,
        }
    }

    #[test]
    fn original_and_adb_forms_agree_with_direct_evaluation() {
        let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
        let e = adb.entity("person").unwrap();
        let filters = vec![comedy_filter(e)];

        let direct = evaluate(e, &filters);
        assert_eq!(direct.len(), 3); // Jim, Eddie, Robin

        let (orig, skipped) = original_query(e, &filters, "name");
        assert!(!skipped);
        let exec = Executor::new(&adb.database);
        let r_orig = exec.execute(&orig).unwrap();
        assert_eq!(r_orig.rows, direct);

        let aq = adb_query(e, &filters, "name").expect("αDB form");
        let r_adb = exec.execute(&aq).unwrap();
        assert_eq!(r_adb.rows, direct);

        // The αDB form is structurally simpler: fewer joins.
        assert!(aq.join_predicate_count() < orig.join_predicate_count());
    }

    #[test]
    fn basic_filters_become_root_predicates() {
        let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
        let e = adb.entity("person").unwrap();
        let f = CandidateFilter {
            prop_id: "person.gender".into(),
            attr_name: "gender".into(),
            value: FilterValue::CatEq(Value::text("Male")),
            selectivity: 0.75,
            coverage: 0.5,
        };
        let (q, _) = original_query(e, &[f], "name");
        assert_eq!(q.join_predicate_count(), 0);
        assert_eq!(q.selection_predicate_count(), 1);
        assert!(to_sql(&q).contains("t0.gender = 'Male'"));
    }

    #[test]
    fn normalized_filters_skip_sql_but_evaluate() {
        let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
        let e = adb.entity("person").unwrap();
        let prop = e
            .props
            .iter()
            .find(|p| matches!(&p.def.kind, PropKind::TwoHopCount { prop_table, .. } if prop_table == "genre"))
            .unwrap();
        let f = CandidateFilter {
            prop_id: prop.def.id.clone(),
            attr_name: prop.def.attr_name.clone(),
            value: FilterValue::DerivedFrac {
                value: Value::text("Comedy"),
                frac: 0.9,
                raw_theta: 4,
            },
            selectivity: 0.3,
            coverage: 0.25,
        };
        let (_, skipped) = original_query(e, std::slice::from_ref(&f), "name");
        assert!(skipped);
        assert!(adb_query(e, std::slice::from_ref(&f), "name").is_none());
        let rows = evaluate(e, &[f]);
        assert!(!rows.is_empty());
    }

    #[test]
    fn evaluation_matches_contexts_for_examples() {
        // Whatever contexts are discovered from the examples, the examples
        // themselves must satisfy all of them (Lemma 3.1).
        let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
        let e = adb.entity("person").unwrap();
        let rows = vec![e.pk_to_row[&1], e.pk_to_row[&2]];
        let filters = discover_contexts(e, &rows, &SquidParams::default());
        let result = evaluate(e, &filters);
        for r in &rows {
            assert!(result.contains(*r));
        }
    }

    #[test]
    fn numeric_range_renders_between() {
        let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
        let e = adb.entity("person").unwrap();
        let f = CandidateFilter {
            prop_id: "person.birth_year".into(),
            attr_name: "birth_year".into(),
            value: FilterValue::NumRange(1961.0, 1962.0),
            selectivity: 0.25,
            coverage: 0.1,
        };
        let (q, _) = original_query(e, &[f], "name");
        assert!(to_sql(&q).contains("BETWEEN 1961 AND 1962"));
        let exec = Executor::new(&adb.database);
        assert_eq!(exec.execute(&q).unwrap().len(), 2);
    }
}
