//! Example recommendation — one of the paper's "future directions"
//! (Section 9: "example recommendation to increase sample diversity and
//! improve abduction").
//!
//! After a discovery, some filters are *uncertain*: their include and
//! exclude scores are close, so a few more examples could flip them. The
//! most informative next example is a tuple from the current result that
//! **violates** uncertain excluded filters or **fails to pin down**
//! uncertain included ones: if the user confirms such a tuple as a valid
//! example, the contested filter is refuted (it would no longer be valid);
//! if the user rejects it, the filter gains support. We rank candidate
//! tuples by the total uncertainty mass they would resolve.

use squid_adb::EntityProps;
use squid_relation::RowId;

use crate::abduce::ScoredFilter;
use crate::squid::Discovery;

/// Default `min_uncertainty` threshold below which a filter decision is
/// considered settled (shared by [`recommend_examples`] callers: the
/// session's `suggest`, the REPL, and the CLI `--recommend` flag).
pub const DEFAULT_MIN_UNCERTAINTY: f64 = 0.05;

/// A recommended next example with its diagnostic score.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Entity row to show the user.
    pub row: RowId,
    /// Total uncertainty mass this tuple would resolve if labeled.
    pub score: f64,
    /// Ids of the contested filters this tuple discriminates.
    pub discriminates: Vec<String>,
}

/// How contested a decision is: 1 when include and exclude scores tie,
/// approaching 0 for confident decisions.
pub fn uncertainty(s: &ScoredFilter) -> f64 {
    let hi = s.include_score.max(s.exclude_score);
    let lo = s.include_score.min(s.exclude_score);
    if hi <= 0.0 {
        0.0
    } else {
        lo / hi
    }
}

/// Rank the `k` most informative next examples among the discovery's
/// current result rows (excluding the rows already given as examples).
///
/// A candidate tuple discriminates a contested filter iff it does *not*
/// satisfy it: asking the user about that tuple directly tests whether the
/// filter belongs to the intent.
pub fn recommend_examples(
    entity: &EntityProps,
    discovery: &Discovery,
    k: usize,
    min_uncertainty: f64,
) -> Vec<Recommendation> {
    let contested: Vec<&ScoredFilter> = discovery
        .scored
        .iter()
        .filter(|s| uncertainty(s) >= min_uncertainty)
        .collect();
    if contested.is_empty() {
        return Vec::new();
    }
    let mut recs: Vec<Recommendation> = Vec::new();
    for row in &discovery.rows {
        if discovery.example_rows.contains(&row) {
            continue;
        }
        let mut score = 0.0;
        let mut discriminates = Vec::new();
        for s in &contested {
            let Some(prop) = entity.property(s.filter.prop_id) else {
                continue;
            };
            if !s.filter.matches_row(prop, row) {
                score += uncertainty(s);
                discriminates.push(s.filter.prop_id.as_str().to_string());
            }
        }
        if score > 0.0 {
            recs.push(Recommendation {
                row,
                score,
                discriminates,
            });
        }
    }
    recs.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.row.cmp(&b.row)));
    recs.truncate(k);
    recs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SquidParams;
    use crate::squid::Squid;
    use squid_adb::{test_fixtures, ADb};

    fn discovery() -> (ADb, Discovery) {
        let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
        let d = {
            let squid = Squid::with_params(
                &adb,
                SquidParams {
                    tau_a: 2,
                    ..SquidParams::default()
                },
            );
            squid.discover(&["Jim Carrey", "Eddie Murphy"]).unwrap()
        };
        (adb, d)
    }

    #[test]
    fn uncertainty_peaks_at_ties() {
        let (_, d) = discovery();
        for s in &d.scored {
            let u = uncertainty(s);
            assert!((0.0..=1.0).contains(&u), "{u}");
            if (s.include_score - s.exclude_score).abs() < 1e-15 {
                assert!((u - 1.0).abs() < 1e-9 || s.include_score == 0.0);
            }
        }
    }

    #[test]
    fn recommendations_come_from_result_minus_examples() {
        let (adb, d) = discovery();
        let entity = adb.entity("person").unwrap();
        let recs = recommend_examples(entity, &d, 5, 0.0);
        for r in &recs {
            assert!(d.rows.contains(r.row));
            assert!(!d.example_rows.contains(&r.row));
            assert!(r.score > 0.0);
            assert!(!r.discriminates.is_empty());
        }
    }

    #[test]
    fn high_threshold_yields_nothing() {
        let (adb, d) = discovery();
        let entity = adb.entity("person").unwrap();
        // No decision is ever *perfectly* contested here.
        let recs = recommend_examples(entity, &d, 5, 1.1);
        assert!(recs.is_empty());
    }

    #[test]
    fn recommendations_are_ranked_and_bounded() {
        let (adb, d) = discovery();
        let entity = adb.entity("person").unwrap();
        let recs = recommend_examples(entity, &d, 2, 0.0);
        assert!(recs.len() <= 2);
        for w in recs.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
