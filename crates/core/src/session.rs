//! Stateful, incremental query intent discovery — the paper's Figure 1
//! interaction loop as a first-class API.
//!
//! A [`SquidSession`] holds examples the user has dropped in so far and
//! refines the abduced query after every change: [`SquidSession::add_example`]
//! re-uses cached inverted-index resolutions and the per-property
//! [`ContextState`](crate::ContextState) intersection state, so folding in
//! example *k+1* costs O(properties) instead of the O(k · properties) a
//! fresh [`Squid::discover`](crate::Squid::discover) pays. Feedback
//! operations ([`pin_filter`](SquidSession::pin_filter),
//! [`ban_filter`](SquidSession::ban_filter),
//! [`choose_entity`](SquidSession::choose_entity)) steer abduction and
//! disambiguation without restarting the loop.
//!
//! Every mutating operation returns a [`DiscoveryDelta`]: the updated
//! [`Discovery`] plus what changed relative to the previous state (filters
//! that entered or left the abduced query, result rows gained and lost, and
//! whether the update took the incremental path).
//!
//! ```
//! use squid_adb::{test_fixtures, ADb};
//! use squid_core::{SquidParams, SquidSession};
//!
//! let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
//! let mut params = SquidParams::default();
//! params.tau_a = 3;
//! let mut session = SquidSession::with_params(&adb, params);
//! session.add_example("Jim Carrey").unwrap();
//! session.add_example("Eddie Murphy").unwrap();
//! let delta = session.add_example("Robin Williams").unwrap();
//! let d = delta.discovery.expect("three examples resolve");
//! assert_eq!(d.entity_table, "person");
//! assert!(d.sql().contains("Comedy"));
//! ```

use std::ops::Deref;
use std::sync::Arc;
use std::time::Instant;

use squid_adb::{ADb, FilterFingerprint, FilterSetCache, SharedFilterSetCache};
use squid_relation::RowId;

use crate::abduce::abduce;
use crate::context::ContextState;
use crate::disambiguate::{disambiguate, similarity_score};
use crate::error::SquidError;
use crate::filter::CandidateFilter;
use crate::journal::SessionOp;
use crate::params::SquidParams;
use crate::query_gen::{adb_query, evaluate, filter_fingerprint, original_query};
use crate::recommend::{recommend_examples, Recommendation, DEFAULT_MIN_UNCERTAINTY};
use crate::squid::Discovery;

/// Shared or borrowed handle to the αDB. Sessions created from a borrow
/// (`SquidSession::new`) live as long as the borrow; sessions created from
/// an [`Arc`] (`SquidSession::shared`) are `'static` and can be hosted by a
/// [`SessionManager`](crate::SessionManager) or moved across threads.
#[derive(Debug, Clone)]
enum AdbRef<'a> {
    Borrowed(&'a ADb),
    Shared(Arc<ADb>),
}

impl Deref for AdbRef<'_> {
    type Target = ADb;

    fn deref(&self) -> &ADb {
        match self {
            AdbRef::Borrowed(a) => a,
            AdbRef::Shared(a) => a,
        }
    }
}

/// Projection-target selection mode.
#[derive(Debug, Clone)]
enum TargetState {
    /// Infer the target from the examples (the `discover` behavior). The
    /// candidate `(table, column)` pairs containing every example so far
    /// are cached and only narrowed as examples arrive; `upto` counts the
    /// examples already folded into the cache.
    Auto {
        candidates: Option<Vec<(String, usize)>>,
        upto: usize,
    },
    /// Fixed `table` + column index (the `discover_on` behavior).
    Fixed { table: String, column: usize },
}

/// One example value with its cached inverted-index resolutions and any
/// disambiguation feedback.
#[derive(Debug, Clone)]
struct ExampleState {
    text: String,
    /// Entity primary key forced by [`SquidSession::choose_entity`].
    chosen_pk: Option<i64>,
    /// Cached `(table, column) → candidate rows` lookups (linear scan; a
    /// session touches only a handful of targets).
    lookups: Vec<((String, usize), Vec<RowId>)>,
}

/// What one session operation changed, plus the resulting discovery.
#[derive(Debug, Clone)]
pub struct DiscoveryDelta {
    /// The updated discovery, or `None` when the session has no examples.
    /// Shared with the session's own snapshot ([`SquidSession::discovery`])
    /// so returning a delta never copies the result set.
    pub discovery: Option<Arc<Discovery>>,
    /// Rendered filters ([`CandidateFilter::describe`]) newly chosen by
    /// abduction.
    pub added_filters: Vec<String>,
    /// Rendered filters no longer chosen.
    pub removed_filters: Vec<String>,
    /// Result rows gained relative to the previous discovery.
    pub rows_added: usize,
    /// Result rows lost relative to the previous discovery.
    pub rows_removed: usize,
    /// Whether the cached per-property context state was updated in place
    /// (`true`) or rebuilt from scratch (`false`: first example, target
    /// change, or a disambiguation reshuffle of earlier examples).
    pub incremental: bool,
    /// Evaluation-cache hits this operation: chosen filters whose row
    /// bitmaps were already resident (session-locally or in the attached
    /// fleet-wide shared cache), so their contribution to the result was a
    /// word-wise intersection instead of a postings walk.
    pub cache_hits: u64,
    /// Evaluation-cache misses this operation (each computed and admitted
    /// one filter row set).
    pub cache_misses: u64,
}

/// Point-in-time counters of a session's cross-turn evaluation cache
/// (see [`SquidSession::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalCacheStats {
    /// Lifetime local cache hits across the session's operations.
    pub hits: u64,
    /// Lifetime full misses (both levels; each computed a row set).
    pub misses: u64,
    /// Resident memoized filter row sets (session-local level).
    pub entries: usize,
    /// Approximate bytes held by the resident bitmaps and their keys.
    pub resident_bytes: usize,
    /// Entries evicted from the session-local level by its byte bound.
    pub evictions: u64,
    /// Local misses served by the attached fleet-wide shared cache.
    pub shared_hits: u64,
    /// Lookups that missed both levels (0 without a shared cache).
    pub shared_misses: u64,
}

/// Interactive query intent discovery session (see the module docs).
///
/// Create one per user interaction; every mutation keeps the session
/// consistent (failed operations roll back and leave the previous state
/// untouched) and returns the [`DiscoveryDelta`] against the prior state.
#[derive(Debug, Clone)]
pub struct SquidSession<'a> {
    adb: AdbRef<'a>,
    params: SquidParams,
    examples: Vec<ExampleState>,
    target: TargetState,
    pinned: Vec<String>,
    banned: Vec<String>,
    /// Incremental Φ state for the current target entity.
    ctx: Option<ContextState>,
    ctx_table: Option<String>,
    last: Option<Arc<Discovery>>,
    /// Rendered chosen filters of `last` (cached for delta reporting).
    last_chosen: Vec<String>,
    /// Fingerprints of `last`'s chosen filters, parallel to `last_chosen`:
    /// the turn-over-turn diff that drives incremental result maintenance.
    last_fps: Vec<FilterFingerprint>,
    /// Cross-turn evaluation cache: memoized per-filter row bitmaps.
    cache: FilterSetCache,
    /// Scored filters memoized against `(ctx generation, example count)`:
    /// feedback turns (pin/ban) leave the Φ state untouched, so abduction's
    /// base decisions are replayed instead of recomputed. Cleared whenever
    /// `ctx` is replaced wholesale (generations of distinct states are not
    /// comparable).
    last_scored: Option<(u64, usize, Vec<crate::abduce::ScoredFilter>)>,
    /// Whether results go through the evaluation cache. One-shot wrappers
    /// ([`Squid::discover`](crate::Squid::discover)) disable it: admitting
    /// bitmaps a discarded session will never reuse is pure overhead.
    eval_cache: bool,
    /// Monotonic count of applied journaled operations — the replay-dedupe
    /// cursor maintained by [`SessionManager`](crate::SessionManager):
    /// journal records carry it so replay (and retried serving turns) can
    /// skip operations already folded into this state.
    op_seq: u64,
}

impl<'a> SquidSession<'a> {
    /// New session over a borrowed αDB with default parameters.
    pub fn new(adb: &'a ADb) -> SquidSession<'a> {
        Self::with_params(adb, SquidParams::default())
    }

    /// New session over a borrowed αDB with explicit parameters.
    pub fn with_params(adb: &'a ADb, params: SquidParams) -> SquidSession<'a> {
        Self::from_ref(AdbRef::Borrowed(adb), params)
    }

    fn from_ref(adb: AdbRef<'a>, params: SquidParams) -> SquidSession<'a> {
        let cache = FilterSetCache::new(adb.generation);
        SquidSession {
            adb,
            params,
            examples: Vec::new(),
            target: TargetState::Auto {
                candidates: None,
                upto: 0,
            },
            pinned: Vec::new(),
            banned: Vec::new(),
            ctx: None,
            ctx_table: None,
            last: None,
            last_chosen: Vec::new(),
            last_fps: Vec::new(),
            cache,
            last_scored: None,
            eval_cache: true,
            op_seq: 0,
        }
    }

    /// Turn off cross-turn result caching (see the `eval_cache` field).
    pub(crate) fn disable_eval_cache(&mut self) {
        self.eval_cache = false;
    }

    /// Current parameters.
    pub fn params(&self) -> &SquidParams {
        &self.params
    }

    /// The example values currently in the session, in insertion order.
    pub fn examples(&self) -> Vec<&str> {
        self.examples.iter().map(|e| e.text.as_str()).collect()
    }

    /// Filter keys currently pinned (forced into the query).
    pub fn pinned(&self) -> &[String] {
        &self.pinned
    }

    /// Filter keys currently banned (forced out of the query).
    pub fn banned(&self) -> &[String] {
        &self.banned
    }

    /// The most recent discovery, if the session has examples.
    pub fn discovery(&self) -> Option<&Discovery> {
        self.last.as_deref()
    }

    /// The session's operation sequence number: how many journaled
    /// mutations this state is the product of (the replay-dedupe cursor).
    pub fn op_seq(&self) -> u64 {
        self.op_seq
    }

    /// Move the operation cursor forward (replay installs the journaled
    /// seq; live mutation paths use `seq = op_seq() + 1`). Backward moves
    /// are ignored — the cursor is monotonic by construction.
    pub fn advance_op_seq(&mut self, seq: u64) {
        self.op_seq = self.op_seq.max(seq);
    }

    /// The minimal operation sequence that rebuilds this session's logical
    /// state from scratch: the journal-compaction snapshot form. Replaying
    /// the returned ops against a fresh session on the same αDB lands on
    /// the same discovery (mutators are deterministic), in far fewer steps
    /// than the add/remove/pin churn that produced it.
    ///
    /// Order matters: a fixed target is restored first (so example adds
    /// resolve against it exactly as live adds did), then examples in
    /// insertion order with their disambiguation choices, then pins and
    /// bans (whose vectors already reflect net pin/ban/unpin history).
    pub fn state_ops(&self) -> Vec<SessionOp> {
        let mut ops =
            Vec::with_capacity(1 + 2 * self.examples.len() + self.pinned.len() + self.banned.len());
        if let TargetState::Fixed { table, column } = &self.target {
            // The journal op carries the column *name*; map the index back.
            if let Some(name) = self
                .adb
                .database
                .table(table)
                .ok()
                .and_then(|t| t.schema().columns.get(*column).map(|c| c.name.clone()))
            {
                ops.push(SessionOp::SetTarget {
                    table: table.clone(),
                    column: name,
                });
            }
        }
        for ex in &self.examples {
            ops.push(SessionOp::AddExample(ex.text.clone()));
            if let Some(pk) = ex.chosen_pk {
                ops.push(SessionOp::ChooseEntity {
                    example: ex.text.clone(),
                    pk,
                });
            }
        }
        for key in &self.pinned {
            ops.push(SessionOp::PinFilter(key.clone()));
        }
        for key in &self.banned {
            ops.push(SessionOp::BanFilter(key.clone()));
        }
        ops
    }

    /// Counters of the session's cross-turn evaluation cache: lifetime
    /// hits/misses (local and shared levels), eviction count, and the
    /// resident memoized-bitmap footprint.
    pub fn cache_stats(&self) -> EvalCacheStats {
        EvalCacheStats {
            hits: self.cache.hits(),
            misses: self.cache.misses(),
            entries: self.cache.entries(),
            resident_bytes: self.cache.resident_bytes(),
            evictions: self.cache.evictions(),
            shared_hits: self.cache.shared_hits(),
            shared_misses: self.cache.shared_misses(),
        }
    }

    /// Join a fleet-wide [`SharedFilterSetCache`]: this session's local
    /// evaluation-cache misses consult the shared shards before computing,
    /// and freshly computed bitmaps are published back. Sessions hosted by
    /// a [`SessionManager`](crate::SessionManager) are attached
    /// automatically; call this for standalone (or one-shot) fleets.
    pub fn attach_shared_cache(&mut self, shared: Arc<SharedFilterSetCache>) {
        self.cache.attach_shared(shared);
    }

    /// Bound the session-local evaluation cache's resident bytes (CLOCK
    /// second-chance eviction; evicts immediately if already over).
    pub fn set_cache_budget(&mut self, max_resident_bytes: usize) {
        self.cache.set_max_resident_bytes(max_resident_bytes);
    }

    /// Uncertainty-driven next-example hints (the paper's Figure-1 loop
    /// closed end to end): the `k` result tuples whose confirmation or
    /// rejection would resolve the most contested abduction decisions.
    /// Empty when the session has no discovery or no filter is contested.
    pub fn suggest(&self, k: usize) -> Vec<Recommendation> {
        let Some(d) = self.last.as_deref() else {
            return Vec::new();
        };
        let Some(entity) = self.adb.entity(&d.entity_table) else {
            return Vec::new();
        };
        recommend_examples(entity, d, k, DEFAULT_MIN_UNCERTAINTY)
    }

    /// Consume the session, yielding the final discovery.
    pub fn into_discovery(self) -> Option<Discovery> {
        self.last
            .map(|d| Arc::try_unwrap(d).unwrap_or_else(|d| (*d).clone()))
    }

    /// Add one example value and refine the discovery incrementally.
    ///
    /// On failure (the example matches nothing, or no target contains all
    /// examples) the session is left exactly as it was.
    pub fn add_example(&mut self, example: &str) -> Result<DiscoveryDelta, SquidError> {
        let started = Instant::now();
        let saved_target = self.target.clone();
        self.examples.push(ExampleState {
            text: example.to_string(),
            chosen_pk: None,
            lookups: Vec::new(),
        });
        match self.refresh(started) {
            Ok(d) => Ok(d),
            Err(e) => {
                self.examples.pop();
                self.target = saved_target;
                Err(e)
            }
        }
    }

    /// Add a batch of examples with a single discovery recomputation at the
    /// end (what [`Squid::discover`](crate::Squid::discover) uses): per-add
    /// deltas are skipped, so this costs one pipeline pass instead of one
    /// per example. On failure the session is left exactly as it was.
    pub fn add_examples(&mut self, examples: &[&str]) -> Result<DiscoveryDelta, SquidError> {
        let started = Instant::now();
        let saved_target = self.target.clone();
        let saved_len = self.examples.len();
        for example in examples {
            self.examples.push(ExampleState {
                text: example.to_string(),
                chosen_pk: None,
                lookups: Vec::new(),
            });
        }
        match self.refresh(started) {
            Ok(d) => Ok(d),
            Err(e) => {
                self.examples.truncate(saved_len);
                self.target = saved_target;
                Err(e)
            }
        }
    }

    /// Remove one previously added example (first match by value) and
    /// refine the discovery; property states the removed entity constrained
    /// are rebuilt, the rest adjust in place.
    pub fn remove_example(&mut self, example: &str) -> Result<DiscoveryDelta, SquidError> {
        let started = Instant::now();
        let Some(idx) = self.examples.iter().position(|e| e.text == example) else {
            return Err(SquidError::UnknownExample {
                example: example.to_string(),
            });
        };
        let saved_target = self.target.clone();
        let removed = self.examples.remove(idx);
        match self.refresh(started) {
            Ok(d) => Ok(d),
            Err(e) => {
                self.examples.insert(idx, removed);
                self.target = saved_target;
                Err(e)
            }
        }
    }

    /// Fix the projection target to `table.column` (disables target
    /// inference until [`set_target_auto`](Self::set_target_auto)).
    pub fn set_target(&mut self, table: &str, column: &str) -> Result<DiscoveryDelta, SquidError> {
        let started = Instant::now();
        let unknown = || SquidError::UnknownTarget {
            table: table.to_string(),
            column: column.to_string(),
        };
        if self.adb.entity(table).is_none() {
            return Err(unknown());
        }
        let ci = self
            .adb
            .database
            .table(table)
            .map_err(|_| unknown())?
            .schema()
            .column_index(column)
            .ok_or_else(unknown)?;
        let saved = std::mem::replace(
            &mut self.target,
            TargetState::Fixed {
                table: table.to_string(),
                column: ci,
            },
        );
        match self.refresh(started) {
            Ok(d) => Ok(d),
            Err(e) => {
                self.target = saved;
                Err(e)
            }
        }
    }

    /// Return to automatic target inference.
    pub fn set_target_auto(&mut self) -> Result<DiscoveryDelta, SquidError> {
        let started = Instant::now();
        let saved = std::mem::replace(
            &mut self.target,
            TargetState::Auto {
                candidates: None,
                upto: 0,
            },
        );
        match self.refresh(started) {
            Ok(d) => Ok(d),
            Err(e) => {
                self.target = saved;
                Err(e)
            }
        }
    }

    /// Force every filter whose property id *or* attribute name equals
    /// `key` into the abduced query, overriding Algorithm 1's decision
    /// (and clearing any ban on the same key).
    pub fn pin_filter(&mut self, key: &str) -> Result<DiscoveryDelta, SquidError> {
        let started = Instant::now();
        self.banned.retain(|k| k != key);
        if !self.pinned.iter().any(|k| k == key) {
            self.pinned.push(key.to_string());
        }
        self.rescore(started)
    }

    /// Force every filter whose property id *or* attribute name equals
    /// `key` out of the abduced query (and clear any pin on the same key).
    pub fn ban_filter(&mut self, key: &str) -> Result<DiscoveryDelta, SquidError> {
        let started = Instant::now();
        self.pinned.retain(|k| k != key);
        if !self.banned.iter().any(|k| k == key) {
            self.banned.push(key.to_string());
        }
        self.rescore(started)
    }

    /// Drop a pin set by [`pin_filter`](Self::pin_filter).
    pub fn unpin_filter(&mut self, key: &str) -> Result<DiscoveryDelta, SquidError> {
        let started = Instant::now();
        self.pinned.retain(|k| k != key);
        self.rescore(started)
    }

    /// Drop a ban set by [`ban_filter`](Self::ban_filter).
    pub fn unban_filter(&mut self, key: &str) -> Result<DiscoveryDelta, SquidError> {
        let started = Instant::now();
        self.banned.retain(|k| k != key);
        self.rescore(started)
    }

    /// Disambiguation feedback: force `example` to resolve to the entity
    /// with primary key `pk` (which must be among its candidate matches).
    /// In auto-target mode the choice also narrows target inference to the
    /// tables where `pk` is a real match for the example.
    pub fn choose_entity(&mut self, example: &str, pk: i64) -> Result<DiscoveryDelta, SquidError> {
        let started = Instant::now();
        let Some(idx) = self.examples.iter().position(|e| e.text == example) else {
            return Err(SquidError::UnknownExample {
                example: example.to_string(),
            });
        };
        let prev = self.examples[idx].chosen_pk.replace(pk);
        match self.refresh(started) {
            Ok(d) => Ok(d),
            Err(e) => {
                self.examples[idx].chosen_pk = prev;
                Err(e)
            }
        }
    }

    /// Clear disambiguation feedback for `example`, returning to
    /// similarity-based disambiguation.
    pub fn clear_choice(&mut self, example: &str) -> Result<DiscoveryDelta, SquidError> {
        let started = Instant::now();
        let Some(idx) = self.examples.iter().position(|e| e.text == example) else {
            return Err(SquidError::UnknownExample {
                example: example.to_string(),
            });
        };
        let prev = self.examples[idx].chosen_pk.take();
        match self.refresh(started) {
            Ok(d) => Ok(d),
            Err(e) => {
                self.examples[idx].chosen_pk = prev;
                Err(e)
            }
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn example_texts(&self) -> Vec<String> {
        self.examples.iter().map(|e| e.text.clone()).collect()
    }

    /// Cached inverted-index lookup for example `i` in `table.column`.
    fn cached_lookup(&mut self, i: usize, table: &str, column: usize) -> Vec<RowId> {
        let adb = &self.adb;
        let ex = &mut self.examples[i];
        if let Some((_, rows)) = ex
            .lookups
            .iter()
            .find(|((t, c), _)| t == table && *c == column)
        {
            return rows.clone();
        }
        let rows = adb.inverted.lookup_in(&ex.text, table, column);
        ex.lookups.push(((table.to_string(), column), rows.clone()));
        rows
    }

    /// Candidate `(table, column)` targets containing every example,
    /// narrowed incrementally as examples are added and recomputed from
    /// scratch after removals. Sorted by `(table, column name)` so that
    /// score ties in [`pick_target`](Self::pick_target) break
    /// deterministically.
    fn auto_candidates(&mut self) -> Result<Vec<(String, usize)>, SquidError> {
        let (mut cands, upto) = match &self.target {
            TargetState::Auto {
                candidates: Some(c),
                upto,
            } if *upto <= self.examples.len() => (c.clone(), *upto),
            TargetState::Auto { .. } => {
                let texts: Vec<&str> = self.examples.iter().map(|e| e.text.as_str()).collect();
                let mut cands: Vec<(String, usize)> = self
                    .adb
                    .inverted
                    .columns_containing_all(&texts)
                    .into_iter()
                    .filter(|(t, _)| self.adb.entity(t).is_some())
                    .collect();
                cands.sort_by_cached_key(|(t, c)| {
                    let name = self
                        .adb
                        .database
                        .table(t)
                        .ok()
                        .map(|tab| tab.schema().columns[*c].name.clone())
                        .unwrap_or_default();
                    (t.clone(), name)
                });
                (cands, self.examples.len())
            }
            TargetState::Fixed { .. } => unreachable!("auto_candidates in fixed mode"),
        };
        for i in upto..self.examples.len() {
            cands.retain(|(t, c)| {
                let adb = &self.adb;
                let ex = &mut self.examples[i];
                if let Some((_, rows)) = ex.lookups.iter().find(|((lt, lc), _)| lt == t && lc == c)
                {
                    return !rows.is_empty();
                }
                let rows = adb.inverted.lookup_in(&ex.text, t, *c);
                let hit = !rows.is_empty();
                ex.lookups.push(((t.clone(), *c), rows));
                hit
            });
        }
        self.target = TargetState::Auto {
            candidates: Some(cands.clone()),
            upto: self.examples.len(),
        };
        Ok(cands)
    }

    /// Resolve every example to one entity row in `table.column`, applying
    /// disambiguation feedback and similarity-based disambiguation.
    fn resolve_target_rows(
        &mut self,
        table: &str,
        column: usize,
    ) -> Result<Vec<RowId>, SquidError> {
        let mut lists: Vec<Vec<RowId>> = Vec::with_capacity(self.examples.len());
        for i in 0..self.examples.len() {
            let rows = self.cached_lookup(i, table, column);
            if rows.is_empty() {
                return Err(SquidError::EntityNotFound {
                    example: self.examples[i].text.clone(),
                    table: table.to_string(),
                });
            }
            let rows = match self.examples[i].chosen_pk {
                None => rows,
                Some(pk) => {
                    let row = self
                        .adb
                        .entity(table)
                        .and_then(|e| e.pk_to_row.get(&pk).copied())
                        .filter(|r| rows.contains(r));
                    match row {
                        Some(r) => vec![r],
                        None => {
                            return Err(SquidError::InvalidChoice {
                                example: self.examples[i].text.clone(),
                                pk,
                            })
                        }
                    }
                }
            };
            lists.push(rows);
        }
        let entity = self
            .adb
            .entity(table)
            .ok_or_else(|| SquidError::UnknownTarget {
                table: table.to_string(),
                column: format!("#{column}"),
            })?;
        if !self.params.disambiguate {
            return Ok(lists.iter().map(|c| c[0]).collect());
        }
        Ok(disambiguate(entity, &lists, &self.params))
    }

    /// The current projection target: the fixed one, or the best-scoring
    /// auto candidate (resolved-entity similarity, ties broken by the
    /// candidates' `(table, column)` name order). When target ranking
    /// already resolved the winner's example rows, they are returned too
    /// so [`refresh`](Self::refresh) does not disambiguate twice.
    #[allow(clippy::type_complexity)]
    fn pick_target(&mut self) -> Result<(String, usize, Option<Vec<RowId>>), SquidError> {
        if let TargetState::Fixed { table, column } = &self.target {
            return Ok((table.clone(), *column, None));
        }
        let cands = self.auto_candidates()?;
        if cands.is_empty() {
            return Err(SquidError::NoMatchingColumn {
                examples: self.example_texts(),
            });
        }
        if cands.len() == 1 {
            let (t, c) = cands.into_iter().next().expect("one candidate");
            return Ok((t, c, None));
        }
        let mut best: Option<(f64, String, usize, Vec<RowId>)> = None;
        // A candidate where a `choose_entity` pk does not resolve is
        // skipped (the choice narrows target inference to tables where it
        // is a real match) — but remember the error so an all-candidates
        // failure reports the actual problem, not a bogus NoMatchingColumn.
        let mut invalid_choice: Option<SquidError> = None;
        for (t, c) in cands {
            let rows = match self.resolve_target_rows(&t, c) {
                Ok(rows) => rows,
                Err(e @ SquidError::InvalidChoice { .. }) => {
                    invalid_choice.get_or_insert(e);
                    continue;
                }
                Err(_) => continue,
            };
            let entity = self.adb.entity(&t).expect("candidate is an entity");
            let score = similarity_score(entity, &rows);
            // Candidates are name-sorted and strict `>` keeps the first
            // best, so ties break by (table, column) name.
            if best.as_ref().is_none_or(|(b, _, _, _)| score > *b) {
                best = Some((score, t, c, rows));
            }
        }
        match best {
            Some((_, t, c, rows)) => Ok((t, c, Some(rows))),
            None => Err(invalid_choice.unwrap_or(SquidError::NoMatchingColumn {
                examples: self.example_texts(),
            })),
        }
    }

    /// Recompute the discovery after a state change. All fallible steps
    /// (target selection, resolution) run before any cached state is
    /// mutated, so callers can roll back their input change on error.
    fn refresh(&mut self, started: Instant) -> Result<DiscoveryDelta, SquidError> {
        if self.examples.is_empty() {
            let delta = DiscoveryDelta {
                discovery: None,
                added_filters: Vec::new(),
                removed_filters: std::mem::take(&mut self.last_chosen),
                rows_added: 0,
                rows_removed: self.last.as_ref().map(|d| d.rows.len()).unwrap_or(0),
                incremental: true,
                cache_hits: 0,
                cache_misses: 0,
            };
            self.ctx = None;
            self.ctx_table = None;
            self.last = None;
            self.last_fps.clear();
            self.last_scored = None;
            if let TargetState::Auto { candidates, upto } = &mut self.target {
                *candidates = None;
                *upto = 0;
            }
            return Ok(delta);
        }
        let (table, column, resolved) = self.pick_target()?;
        let projection_column = self.adb.database.table(&table)?.schema().columns[column]
            .name
            .clone();
        let mut distinct = match resolved {
            Some(rows) => rows,
            None => self.resolve_target_rows(&table, column)?,
        };
        // Duplicate example strings may resolve to the same entity.
        distinct.sort_unstable();
        distinct.dedup();

        // Infallible from here: update the cached Φ state.
        if self.ctx_table.as_deref() != Some(table.as_str()) {
            self.ctx = None;
            self.last_scored = None;
        }
        let entity = self.adb.entity(&table).expect("target is an entity");
        let mut incremental = true;
        match &mut self.ctx {
            Some(ctx) => {
                let old = ctx.rows();
                let added: Vec<RowId> = distinct
                    .iter()
                    .copied()
                    .filter(|r| old.binary_search(r).is_err())
                    .collect();
                let removed: Vec<RowId> = old
                    .iter()
                    .copied()
                    .filter(|r| distinct.binary_search(r).is_err())
                    .collect();
                if !added.is_empty() && !removed.is_empty() {
                    // Disambiguation reshuffled earlier examples: rebuild.
                    // (A fresh state restarts its generation counter, so
                    // the scored memo must not survive it.)
                    incremental = false;
                    let mut st = ContextState::new(entity);
                    for &r in &distinct {
                        st.add_row(entity, r);
                    }
                    *ctx = st;
                    self.last_scored = None;
                } else {
                    for &r in &added {
                        ctx.add_row(entity, r);
                    }
                    for &r in &removed {
                        ctx.remove_row(entity, r);
                    }
                }
            }
            None => {
                incremental = false;
                let mut st = ContextState::new(entity);
                for &r in &distinct {
                    st.add_row(entity, r);
                }
                self.ctx = Some(st);
                self.ctx_table = Some(table.clone());
            }
        }

        self.snapshot(started, table, projection_column, distinct, incremental)
    }

    /// Recompute the discovery for feedback-only changes (pin/ban): the
    /// example set, target, and resolutions are unchanged, so skip target
    /// inference and re-disambiguation and rescore from the cached Φ state.
    fn rescore(&mut self, started: Instant) -> Result<DiscoveryDelta, SquidError> {
        let (Some(last), Some(_)) = (&self.last, &self.ctx) else {
            return self.refresh(started);
        };
        let table = last.entity_table.clone();
        let projection_column = last.projection_column.clone();
        let distinct = last.example_rows.clone();
        self.snapshot(started, table, projection_column, distinct, true)
    }

    /// The abduce-onward pipeline tail shared by [`refresh`](Self::refresh)
    /// and [`rescore`](Self::rescore): snapshot Φ, score, apply pins/bans,
    /// generate queries, evaluate, and report the delta.
    ///
    /// Result evaluation is **incremental bitmap algebra** over the
    /// session's [`FilterSetCache`]: the chosen filters are diffed against
    /// the previous turn by fingerprint, and
    ///
    /// * an unchanged filter set reuses the previous result bitmap;
    /// * a turn that only *adds* filters intersects the previous bitmap
    ///   with the added filters' cached sets (one word-wise AND each);
    /// * any removal re-intersects the cached per-filter sets — with a warm
    ///   cache that is still pure bitmap work, no postings walks.
    fn snapshot(
        &mut self,
        started: Instant,
        table: String,
        projection_column: String,
        distinct: Vec<RowId>,
        incremental: bool,
    ) -> Result<DiscoveryDelta, SquidError> {
        let entity = self.adb.entity(&table).expect("target is an entity");
        let ctx = self.ctx.as_mut().expect("context state ensured");
        // Abduction is a pure function of (Φ snapshot, |examples|): replay
        // the memoized decisions when neither moved — the feedback-turn
        // (pin/ban) fast path; pins and bans are applied after.
        let scored_key = (ctx.generation(), distinct.len());
        let mut scored = match &self.last_scored {
            Some((generation, count, scored))
                if (*generation, *count) == scored_key
                    && self.ctx_table.as_deref() == Some(table.as_str()) =>
            {
                scored.clone()
            }
            _ => {
                let candidates = ctx.candidates(entity, &self.params);
                let scored = abduce(candidates, distinct.len(), &self.params);
                self.last_scored = Some((scored_key.0, scored_key.1, scored.clone()));
                scored
            }
        };
        for s in &mut scored {
            if key_matches(&self.banned, &s.filter) {
                s.included = false;
            } else if key_matches(&self.pinned, &s.filter) {
                s.included = true;
            }
        }
        let chosen: Vec<CandidateFilter> = scored
            .iter()
            .filter(|s| s.included)
            .map(|s| s.filter.clone())
            .collect();

        self.cache.revalidate(self.adb.generation);
        // Shared-cache hits count as hits in the delta: either way the
        // filter's bitmap was served resident instead of computed.
        let (hits0, misses0) = (
            self.cache.hits() + self.cache.shared_hits(),
            self.cache.misses(),
        );
        let fps: Vec<FilterFingerprint> = chosen.iter().map(filter_fingerprint).collect();
        let unchanged = fps == self.last_fps;
        let prev_same_target = self
            .last
            .as_ref()
            .filter(|p| p.entity_table == table)
            .cloned();

        // Queries depend only on (entity, chosen, projection): an unchanged
        // turn reuses the previous turn's forms instead of re-deriving them.
        let (query, adb_q) = match &prev_same_target {
            Some(prev) if unchanged && prev.projection_column == projection_column => {
                (prev.query.clone(), prev.adb_query.clone())
            }
            _ => (
                original_query(entity, &chosen, &projection_column).0,
                adb_query(entity, &chosen, &projection_column),
            ),
        };

        let removed_any = self.last_fps.iter().any(|fp| !fps.contains(fp));
        let rows = match &prev_same_target {
            _ if !self.eval_cache => evaluate(entity, &chosen),
            Some(prev) if unchanged => prev.rows.clone(),
            Some(prev) if !removed_any => {
                // Add-only turn: restrict the previous result by each newly
                // chosen filter (cached bitmap AND, or a probe over the
                // surviving rows for sets not worth materializing).
                let mut rows = prev.rows.clone();
                for (f, fp) in chosen.iter().zip(&fps) {
                    if !self.last_fps.contains(fp) {
                        crate::query_gen::restrict_rows(&mut rows, entity, f, fp, &mut self.cache);
                    }
                }
                rows
            }
            _ => crate::query_gen::evaluate_cached_fps(entity, &chosen, &fps, &mut self.cache),
        };
        let (cache_hits, cache_misses) = (
            self.cache.hits() + self.cache.shared_hits() - hits0,
            self.cache.misses() - misses0,
        );

        let discovery = Arc::new(Discovery {
            entity_table: table,
            projection_column,
            example_rows: distinct,
            scored,
            query,
            adb_query: adb_q,
            rows,
            elapsed: started.elapsed(),
        });
        // Equal fingerprints mean equal rendered filters: the string diff
        // (and its re-rendering) only runs when the chosen set changed.
        let (added_filters, removed_filters) = if unchanged {
            (Vec::new(), Vec::new())
        } else {
            // Renders carry over from the previous turn for filters whose
            // fingerprint did not change; only genuinely new ones format.
            let next_chosen: Vec<String> = chosen
                .iter()
                .zip(&fps)
                .map(|(f, fp)| match self.last_fps.iter().position(|p| p == fp) {
                    Some(i) => self.last_chosen[i].clone(),
                    None => f.describe(),
                })
                .collect();
            let added: Vec<String> = next_chosen
                .iter()
                .filter(|f| !self.last_chosen.contains(f))
                .cloned()
                .collect();
            let removed: Vec<String> = self
                .last_chosen
                .iter()
                .filter(|f| !next_chosen.contains(f))
                .cloned()
                .collect();
            self.last_chosen = next_chosen;
            (added, removed)
        };
        let (rows_added, rows_removed) = match &self.last {
            // Row ids are table-local: across a target change the bitmaps
            // are incomparable, so the whole result set turned over.
            Some(prev) if prev.entity_table != discovery.entity_table => {
                (discovery.rows.len(), prev.rows.len())
            }
            Some(prev) => (
                discovery.rows.difference_size(&prev.rows),
                prev.rows.difference_size(&discovery.rows),
            ),
            None => (discovery.rows.len(), 0),
        };
        let delta = DiscoveryDelta {
            discovery: Some(Arc::clone(&discovery)),
            added_filters,
            removed_filters,
            rows_added,
            rows_removed,
            incremental,
            cache_hits,
            cache_misses,
        };
        self.last = Some(discovery);
        self.last_fps = fps;
        Ok(delta)
    }
}

impl SquidSession<'static> {
    /// New `'static` session over a shared αDB (default parameters).
    pub fn shared(adb: Arc<ADb>) -> SquidSession<'static> {
        Self::shared_with_params(adb, SquidParams::default())
    }

    /// New `'static` session over a shared αDB with explicit parameters.
    pub fn shared_with_params(adb: Arc<ADb>, params: SquidParams) -> SquidSession<'static> {
        Self::from_ref(AdbRef::Shared(adb), params)
    }
}

fn key_matches(keys: &[String], filter: &CandidateFilter) -> bool {
    keys.iter()
        .any(|k| filter.prop_id == k.as_str() || filter.attr_name == k.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::squid::Squid;
    use squid_adb::test_fixtures::{figure6_db, mini_imdb};
    use squid_relation::{Database, Value};

    fn assert_same_discovery(a: &Discovery, b: &Discovery) {
        assert_eq!(a.entity_table, b.entity_table);
        assert_eq!(a.projection_column, b.projection_column);
        assert_eq!(a.example_rows, b.example_rows);
        let render = |d: &Discovery| -> Vec<String> {
            d.scored
                .iter()
                .map(|s| {
                    format!(
                        "{} ψ={:.9} prior={:.9} inc={}",
                        s.filter.describe(),
                        s.filter.selectivity,
                        s.prior,
                        s.included
                    )
                })
                .collect()
        };
        assert_eq!(render(a), render(b));
        assert_eq!(a.sql(), b.sql());
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn incremental_adds_match_one_shot_discover() {
        let adb = ADb::build(&mini_imdb()).unwrap();
        let params = SquidParams {
            tau_a: 3,
            ..SquidParams::default()
        };
        let examples = ["Jim Carrey", "Eddie Murphy", "Robin Williams"];
        let mut session = SquidSession::with_params(&adb, params.clone());
        for e in &examples {
            session.add_example(e).unwrap();
        }
        let squid = Squid::with_params(&adb, params);
        let one_shot = squid.discover(&examples).unwrap();
        assert_same_discovery(session.discovery().unwrap(), &one_shot);
    }

    #[test]
    fn second_add_takes_the_incremental_path() {
        let adb = ADb::build(&mini_imdb()).unwrap();
        let mut session = SquidSession::new(&adb);
        let d1 = session.add_example("Jim Carrey").unwrap();
        assert!(!d1.incremental, "first example builds the state");
        let d2 = session.add_example("Eddie Murphy").unwrap();
        assert!(d2.incremental, "second example folds in incrementally");
    }

    #[test]
    fn remove_and_re_add_round_trips() {
        let adb = ADb::build(&mini_imdb()).unwrap();
        let params = SquidParams {
            tau_a: 3,
            ..SquidParams::default()
        };
        let mut session = SquidSession::with_params(&adb, params.clone());
        for e in ["Jim Carrey", "Eddie Murphy", "Robin Williams"] {
            session.add_example(e).unwrap();
        }
        let before = session.discovery().unwrap().clone();
        session.remove_example("Eddie Murphy").unwrap();
        assert_eq!(session.discovery().unwrap().example_rows.len(), 2);
        session.add_example("Eddie Murphy").unwrap();
        assert_same_discovery(session.discovery().unwrap(), &before);
    }

    #[test]
    fn removing_last_example_clears_the_discovery() {
        let adb = ADb::build(&mini_imdb()).unwrap();
        let mut session = SquidSession::new(&adb);
        session.add_example("Jim Carrey").unwrap();
        let delta = session.remove_example("Jim Carrey").unwrap();
        assert!(delta.discovery.is_none());
        assert!(delta.rows_removed > 0);
        assert!(session.discovery().is_none());
        assert!(session.examples().is_empty());
    }

    #[test]
    fn failed_add_rolls_back() {
        let adb = ADb::build(&mini_imdb()).unwrap();
        let mut session = SquidSession::new(&adb);
        session.add_example("Jim Carrey").unwrap();
        let before = session.discovery().unwrap().clone();
        let err = session.add_example("No Such Person").unwrap_err();
        assert!(matches!(err, SquidError::NoMatchingColumn { .. }));
        assert_eq!(session.examples(), vec!["Jim Carrey"]);
        assert_same_discovery(session.discovery().unwrap(), &before);
        // The session still works after the failure.
        session.add_example("Eddie Murphy").unwrap();
        assert_eq!(session.discovery().unwrap().example_rows.len(), 2);
    }

    #[test]
    fn unknown_removal_errors() {
        let adb = ADb::build(&mini_imdb()).unwrap();
        let mut session = SquidSession::new(&adb);
        session.add_example("Jim Carrey").unwrap();
        let err = session.remove_example("Eddie Murphy").unwrap_err();
        assert!(matches!(err, SquidError::UnknownExample { .. }));
    }

    #[test]
    fn fixed_target_matches_discover_on() {
        let adb = ADb::build(&mini_imdb()).unwrap();
        let mut session = SquidSession::new(&adb);
        session.set_target("person", "name").unwrap();
        session.add_example("Jim Carrey").unwrap();
        session.add_example("Eddie Murphy").unwrap();
        let squid = Squid::new(&adb);
        let one_shot = squid
            .discover_on("person", "name", &["Jim Carrey", "Eddie Murphy"])
            .unwrap();
        assert_same_discovery(session.discovery().unwrap(), &one_shot);
        let err = session.set_target("person", "nope").unwrap_err();
        assert!(matches!(err, SquidError::UnknownTarget { .. }));
        // The failed retarget left the fixed target intact.
        assert_eq!(session.discovery().unwrap().entity_table, "person");
    }

    #[test]
    fn pin_and_ban_steer_abduction() {
        let adb = ADb::build(&mini_imdb()).unwrap();
        let mut session = SquidSession::new(&adb);
        session.add_example("Jim Carrey").unwrap();
        session.add_example("Eddie Murphy").unwrap();
        // gender=Male is generic (ψ=0.75) and normally dropped.
        let base = session.discovery().unwrap();
        assert!(base
            .chosen_filters()
            .iter()
            .all(|f| f.attr_name != "gender"));
        let rows_before = base.rows.len();

        let delta = session.pin_filter("gender").unwrap();
        assert!(delta.added_filters.iter().any(|f| f.contains("gender")));
        let pinned = session.discovery().unwrap();
        assert!(pinned
            .chosen_filters()
            .iter()
            .any(|f| f.attr_name == "gender"));
        assert!(pinned.rows.len() <= rows_before);

        let delta = session.ban_filter("gender").unwrap();
        assert!(delta.removed_filters.iter().any(|f| f.contains("gender")));
        assert!(session
            .discovery()
            .unwrap()
            .chosen_filters()
            .iter()
            .all(|f| f.attr_name != "gender"));

        session.unban_filter("gender").unwrap();
        let restored = session.discovery().unwrap();
        assert!(restored
            .chosen_filters()
            .iter()
            .all(|f| f.attr_name != "gender"));
        assert_eq!(restored.rows.len(), rows_before);
    }

    /// Two people named "Jamie Lee": similarity picks the comedy actor
    /// when the other examples are comedians, and `choose_entity` can
    /// override that.
    fn ambiguous_db() -> Database {
        let mut db = mini_imdb();
        // Add a second "Jim Carrey" (id 100) who shares nothing with the
        // comedy cluster (non-USA, female, no movies).
        db.insert(
            "person",
            vec![
                Value::Int(100),
                Value::text("Jim Carrey"),
                Value::text("Female"),
                Value::text("France"),
                Value::Int(1980),
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn choose_entity_overrides_disambiguation() {
        let db = ambiguous_db();
        let adb = ADb::build(&db).unwrap();
        let mut session = SquidSession::new(&adb);
        session.add_example("Jim Carrey").unwrap();
        session.add_example("Eddie Murphy").unwrap();
        // Similarity resolves "Jim Carrey" to the comedy actor (pk 1).
        let e = adb.entity("person").unwrap();
        let comedian = e.pk_to_row[&1];
        let impostor = e.pk_to_row[&100];
        assert!(session
            .discovery()
            .unwrap()
            .example_rows
            .contains(&comedian));
        // Feedback: the user meant the other one.
        let delta = session.choose_entity("Jim Carrey", 100).unwrap();
        assert!(session
            .discovery()
            .unwrap()
            .example_rows
            .contains(&impostor));
        assert!(!session
            .discovery()
            .unwrap()
            .example_rows
            .contains(&comedian));
        // Swapping one resolved row for another rebuilds the state.
        assert!(!delta.incremental);
        // Invalid pk is rejected and rolls back.
        let err = session.choose_entity("Jim Carrey", 999).unwrap_err();
        assert!(matches!(err, SquidError::InvalidChoice { .. }));
        assert!(session
            .discovery()
            .unwrap()
            .example_rows
            .contains(&impostor));
        // Clearing the choice returns to similarity-based resolution.
        session.clear_choice("Jim Carrey").unwrap();
        assert!(session
            .discovery()
            .unwrap()
            .example_rows
            .contains(&comedian));
    }

    #[test]
    fn delta_reports_filter_and_row_changes() {
        let adb = ADb::build(&figure6_db()).unwrap();
        let mut session = SquidSession::new(&adb);
        let d1 = session.add_example("Tom Cruise").unwrap();
        assert!(d1.rows_added > 0);
        assert_eq!(d1.rows_removed, 0);
        let d2 = session.add_example("Clint Eastwood").unwrap();
        // Refining with a second example can only shrink or keep rows here.
        assert_eq!(d2.rows_added, 0);
    }

    #[test]
    fn shared_sessions_are_static_and_send() {
        fn assert_send<T: Send>(_: &T) {}
        let adb = Arc::new(ADb::build(&mini_imdb()).unwrap());
        let mut session: SquidSession<'static> = SquidSession::shared(Arc::clone(&adb));
        assert_send(&session);
        session.add_example("Jim Carrey").unwrap();
        assert_eq!(session.discovery().unwrap().entity_table, "person");
    }
}
