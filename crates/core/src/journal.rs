//! Append-only session journal: the durable source of truth for live
//! [`SquidSession`] state.
//!
//! The αDB snapshot (`squid_adb::snapshot`) is a rebuildable cache; what a
//! crash actually destroys is the *interactive* state — which examples a
//! user added, what they pinned, banned, and chose. This module journals
//! every session-mutating operation as a length-prefixed, CRC-32 protected
//! record appended through a buffered writer, and replays the journal on
//! restart ([`read_journal`] + `SessionManager::recover`).
//!
//! ## Record format
//!
//! ```text
//! +---------+-----------+---------------------------------------------+
//! | len u32 | crc32 u32 | payload: session u64, seq u64, op tag, args |
//! +---------+-----------+---------------------------------------------+
//! ```
//!
//! `seq` is the session's operation sequence number: every applied
//! mutation bumps it by one. Replay skips any non-zero `seq` at or below
//! the session's current cursor, which makes replay idempotent — the
//! property that lets a compacted snapshot coexist with a live tail (see
//! [`Journal::compact`]) and lets the serving frontend deduplicate
//! retried client turns. Seq 0 is special: live-append lifecycle records
//! (`Create`/`End`) carry it, and compaction writes its snapshot state
//! ops at 0 so they apply unconditionally; a compacted `Create` instead
//! carries the session's cursor, which replay restores.
//!
//! ## Write-ahead semantics, inverted
//!
//! Session mutators are deterministic functions of the (immutable) αDB and
//! are rollback-on-error, so the journal records operations *after* they
//! succeed: a replayed journal applies exactly the successful prefix of
//! history and lands bit-identical to the never-crashed fleet. A torn or
//! bit-flipped tail record — the signature of dying mid-append — is
//! detected by length/CRC and **truncated**, not treated as fatal:
//! everything before the damage is recovered.
//!
//! ## Compaction
//!
//! Recovery time is proportional to journal length, which grows with
//! *history*; the state worth recovering grows only with *live sessions*.
//! [`Journal::compact`] closes that gap: it rewrites the file as one
//! snapshot section — `Create` plus the minimal op sequence that rebuilds
//! each live session ([`SquidSession::state_ops`]) — written to a temp
//! file and atomically renamed over the old journal. A crash anywhere
//! during compaction leaves the old journal untouched (the rename either
//! happened completely or not at all), so torn compaction falls back to
//! full replay, never to data loss.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use squid_relation::frame::{crc32, ByteReader, ByteWriter, FrameError};

use crate::error::SquidError;
use crate::manager::SessionId;
use crate::session::{DiscoveryDelta, SquidSession};

/// Largest accepted journal record payload (1 MiB): a declared length
/// beyond this is treated as tail corruption, not an allocation request.
const MAX_RECORD: u32 = 1 << 20;

/// When appended records are pushed toward the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record: survives OS crash and power loss at the
    /// cost of one disk round-trip per operation.
    Always,
    /// Flush to the OS after every record (default): survives process
    /// crashes — the common failure — but a simultaneous OS crash may lose
    /// the last few records.
    Flush,
    /// Leave records in the user-space buffer until it fills or the
    /// journal is dropped: fastest, loses the buffer on a process crash.
    Never,
}

/// One journaled session-mutating operation.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOp {
    /// Session was created.
    Create,
    /// `add_example(value)`.
    AddExample(String),
    /// `remove_example(value)`.
    RemoveExample(String),
    /// `set_target(table, column)`.
    SetTarget {
        /// Target entity table.
        table: String,
        /// Target column.
        column: String,
    },
    /// `set_target_auto()`.
    SetTargetAuto,
    /// `pin_filter(key)`.
    PinFilter(String),
    /// `ban_filter(key)`.
    BanFilter(String),
    /// `unpin_filter(key)`.
    UnpinFilter(String),
    /// `unban_filter(key)`.
    UnbanFilter(String),
    /// `choose_entity(example, pk)`.
    ChooseEntity {
        /// The ambiguous example value.
        example: String,
        /// The chosen entity's primary key.
        pk: i64,
    },
    /// `clear_choice(example)`.
    ClearChoice(String),
    /// Session was ended.
    End,
}

impl SessionOp {
    /// Apply this operation to a live session. `Create`/`End` are session
    /// lifecycle markers handled by the manager and are no-ops here.
    pub fn apply(&self, s: &mut SquidSession<'_>) -> Result<Option<DiscoveryDelta>, SquidError> {
        match self {
            SessionOp::Create | SessionOp::End => Ok(None),
            SessionOp::AddExample(v) => s.add_example(v).map(Some),
            SessionOp::RemoveExample(v) => s.remove_example(v).map(Some),
            SessionOp::SetTarget { table, column } => s.set_target(table, column).map(Some),
            SessionOp::SetTargetAuto => s.set_target_auto().map(Some),
            SessionOp::PinFilter(k) => s.pin_filter(k).map(Some),
            SessionOp::BanFilter(k) => s.ban_filter(k).map(Some),
            SessionOp::UnpinFilter(k) => s.unpin_filter(k).map(Some),
            SessionOp::UnbanFilter(k) => s.unban_filter(k).map(Some),
            SessionOp::ChooseEntity { example, pk } => s.choose_entity(example, *pk).map(Some),
            SessionOp::ClearChoice(example) => s.clear_choice(example).map(Some),
        }
    }

    fn encode(&self, session: SessionId, seq: u64) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(session);
        w.put_u64(seq);
        match self {
            SessionOp::Create => w.put_u8(0),
            SessionOp::AddExample(v) => {
                w.put_u8(1);
                w.put_str(v);
            }
            SessionOp::RemoveExample(v) => {
                w.put_u8(2);
                w.put_str(v);
            }
            SessionOp::SetTarget { table, column } => {
                w.put_u8(3);
                w.put_str(table);
                w.put_str(column);
            }
            SessionOp::SetTargetAuto => w.put_u8(4),
            SessionOp::PinFilter(k) => {
                w.put_u8(5);
                w.put_str(k);
            }
            SessionOp::BanFilter(k) => {
                w.put_u8(6);
                w.put_str(k);
            }
            SessionOp::UnpinFilter(k) => {
                w.put_u8(7);
                w.put_str(k);
            }
            SessionOp::UnbanFilter(k) => {
                w.put_u8(8);
                w.put_str(k);
            }
            SessionOp::ChooseEntity { example, pk } => {
                w.put_u8(9);
                w.put_str(example);
                w.put_i64(*pk);
            }
            SessionOp::ClearChoice(example) => {
                w.put_u8(10);
                w.put_str(example);
            }
            SessionOp::End => w.put_u8(11),
        }
        w.into_bytes()
    }

    fn decode(payload: &[u8]) -> Result<(SessionId, u64, SessionOp), FrameError> {
        let mut r = ByteReader::new(payload, "journal record");
        let session = r.get_u64()?;
        let seq = r.get_u64()?;
        let op = match r.get_u8()? {
            0 => SessionOp::Create,
            1 => SessionOp::AddExample(r.get_str()?),
            2 => SessionOp::RemoveExample(r.get_str()?),
            3 => SessionOp::SetTarget {
                table: r.get_str()?,
                column: r.get_str()?,
            },
            4 => SessionOp::SetTargetAuto,
            5 => SessionOp::PinFilter(r.get_str()?),
            6 => SessionOp::BanFilter(r.get_str()?),
            7 => SessionOp::UnpinFilter(r.get_str()?),
            8 => SessionOp::UnbanFilter(r.get_str()?),
            9 => SessionOp::ChooseEntity {
                example: r.get_str()?,
                pk: r.get_i64()?,
            },
            10 => SessionOp::ClearChoice(r.get_str()?),
            11 => SessionOp::End,
            t => {
                return Err(FrameError::corrupt(
                    "journal record",
                    format!("invalid op tag {t}"),
                ))
            }
        };
        r.expect_end()?;
        Ok((session, seq, op))
    }
}

/// Appender half of the journal: opened once per process, shared by the
/// `SessionManager`.
#[derive(Debug)]
pub struct Journal {
    w: BufWriter<File>,
    policy: FsyncPolicy,
    path: PathBuf,
    /// File length in bytes as of the last append (replay-debt metric).
    bytes: u64,
}

impl Journal {
    /// Open `path` for appending (creating it if absent).
    pub fn open(path: impl AsRef<Path>, policy: FsyncPolicy) -> Result<Journal, SquidError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let bytes = file.metadata()?.len();
        Ok(Journal {
            w: BufWriter::new(file),
            policy,
            path,
            bytes,
        })
    }

    /// Open `path` truncated to empty (the compaction temp-file path; the
    /// appending open above never destroys records).
    fn create(path: impl AsRef<Path>, policy: FsyncPolicy) -> Result<Journal, SquidError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(Journal {
            w: BufWriter::new(file),
            policy,
            path,
            bytes: 0,
        })
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The journal's fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Bytes written to the journal file so far (valid records only; a
    /// freshly-opened journal starts from the existing file length).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Append one record and push it toward the disk per the fsync policy.
    /// `seq` is the session's operation sequence number after applying
    /// `op` (0 for lifecycle records); replay skips records at or below a
    /// session's current cursor.
    pub fn append(
        &mut self,
        session: SessionId,
        seq: u64,
        op: &SessionOp,
    ) -> Result<(), SquidError> {
        let payload = op.encode(session, seq);
        debug_assert!(payload.len() as u32 <= MAX_RECORD);
        self.w.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.w.write_all(&crc32(&payload).to_le_bytes())?;
        self.w.write_all(&payload)?;
        self.bytes += 8 + payload.len() as u64;
        match self.policy {
            FsyncPolicy::Always => {
                self.w.flush()?;
                self.w.get_ref().sync_data()?;
            }
            FsyncPolicy::Flush => self.w.flush()?,
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Flush buffered records to the OS (and to disk under
    /// [`FsyncPolicy::Always`]).
    pub fn sync(&mut self) -> Result<(), SquidError> {
        self.w.flush()?;
        if self.policy == FsyncPolicy::Always {
            self.w.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// Rewrite the journal at `path` as a snapshot of the given live
    /// sessions plus a carried tail, returning a fresh appender over the
    /// compacted file. Each `live` entry is `(session id, op-sequence
    /// cursor, state ops)` — the minimal op sequence that rebuilds the
    /// session plus the cursor its replay must land on (see
    /// [`SquidSession::state_ops`] and `SessionManager::compact_journal`).
    /// `tail` holds old-journal records the snapshot does not cover
    /// (appended while the snapshot was being collected, or lifecycle
    /// records of sessions born since); they are re-appended after the
    /// snapshot section with their original sequence numbers, so replay
    /// ordering and dedupe behave exactly as they would have against the
    /// old file.
    ///
    /// Crash-safe: the snapshot is written to a temp file, fsynced, and
    /// atomically renamed over `path`. Dying at any point before the
    /// rename leaves the old journal byte-identical (torn compaction
    /// falls back to full replay); dying after it leaves the complete
    /// compacted journal.
    pub fn compact(
        path: impl AsRef<Path>,
        live: &[(SessionId, u64, Vec<SessionOp>)],
        tail: &[(SessionId, u64, SessionOp)],
        policy: FsyncPolicy,
    ) -> Result<(Journal, CompactStats), SquidError> {
        let path = path.as_ref();
        let bytes_before = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let tmp = path.with_extension("compacting");
        let mut snapshot = Journal::create(&tmp, policy)?;
        let mut records_written = 0u64;
        for (sid, cursor, ops) in live {
            // The `Create` record carries the session's cursor, so replay
            // restores it even when the state ops undercount history (an
            // add that was later removed contributed two cursor bumps but
            // zero state ops). State ops are written at seq 0 — the
            // always-apply sequence — because the restored cursor would
            // otherwise shadow them; a tail record appended after the
            // snapshot was taken (seq > cursor) still replays, while a
            // pre-snapshot append that raced compaction (seq <= cursor)
            // is skipped.
            snapshot.append(*sid, *cursor, &SessionOp::Create)?;
            records_written += 1;
            for op in ops {
                snapshot.append(*sid, 0, op)?;
                records_written += 1;
            }
        }
        for (sid, seq, op) in tail {
            snapshot.append(*sid, *seq, op)?;
            records_written += 1;
        }
        // The rename must never promote a half-written snapshot: force the
        // temp file to disk first, regardless of the append-path policy.
        snapshot.w.flush()?;
        snapshot.w.get_ref().sync_data()?;
        let bytes_after = snapshot.bytes;
        drop(snapshot);
        std::fs::rename(&tmp, path)?;
        // Persist the rename itself (the directory entry) where possible.
        #[cfg(unix)]
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        let journal = Journal::open(path, policy)?;
        let stats = CompactStats {
            sessions: live.len(),
            records_written,
            bytes_before,
            bytes_after,
        };
        Ok((journal, stats))
    }
}

/// What one [`Journal::compact`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Live sessions snapshotted.
    pub sessions: usize,
    /// Records in the compacted journal (the snapshot section plus the
    /// carried tail; new appends grow from here).
    pub records_written: u64,
    /// Journal bytes before compaction.
    pub bytes_before: u64,
    /// Journal bytes after compaction.
    pub bytes_after: u64,
}

impl Drop for Journal {
    fn drop(&mut self) {
        let _ = self.w.flush();
    }
}

/// Result of scanning a journal file: the decoded valid prefix plus how
/// much tail (if any) had to be abandoned as torn or corrupt.
#[derive(Debug)]
pub struct JournalReplay {
    /// Decoded `(session, seq, op)` records in append order.
    pub records: Vec<(SessionId, u64, SessionOp)>,
    /// Byte length of the valid prefix.
    pub bytes_valid: u64,
    /// Bytes after the valid prefix (torn/corrupt tail, or zero).
    pub bytes_truncated: u64,
}

/// Read and validate a journal file, stopping at the first torn or
/// corrupt record (crash-mid-append is expected, not an error). A missing
/// file is an empty journal.
pub fn read_journal(path: impl AsRef<Path>) -> Result<JournalReplay, SquidError> {
    let bytes = match std::fs::read(path.as_ref()) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    let (records, bytes_valid) = scan_records(&bytes);
    Ok(JournalReplay {
        records,
        bytes_valid,
        bytes_truncated: bytes.len() as u64 - bytes_valid,
    })
}

/// Decode the valid record prefix of raw journal bytes, stopping at the
/// first torn or corrupt record. Returns the decoded records and the
/// byte length of the valid prefix — the shared scanner behind
/// [`read_journal`] and [`JournalTail`], and what a replication standby
/// runs over bytes shipped off another node's journal.
pub fn scan_records(bytes: &[u8]) -> (Vec<(SessionId, u64, SessionOp)>, u64) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < 8 {
            break; // empty or torn mid-header
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD || rest.len() - 8 < len as usize {
            break; // corrupt length or torn payload
        }
        let payload = &rest[8..8 + len as usize];
        if crc32(payload) != crc {
            break; // bit-flipped record
        }
        let Ok(decoded) = SessionOp::decode(payload) else {
            break; // CRC-valid but undecodable: treat as tail damage
        };
        records.push(decoded);
        pos += 8 + len as usize;
    }
    (records, pos as u64)
}

/// Truncate `path` to its valid prefix so the damaged tail can never be
/// re-read (and appends continue from a clean boundary).
pub fn truncate_to_valid(path: impl AsRef<Path>, bytes_valid: u64) -> Result<(), SquidError> {
    match OpenOptions::new().write(true).open(path.as_ref()) {
        Ok(f) => {
            f.set_len(bytes_valid)?;
            f.sync_data()?;
            Ok(())
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

/// Drain a reader into bytes — helper for tests feeding fault-injected
/// readers into [`read_journal`]-equivalent scans.
pub fn read_all<R: Read>(r: &mut R) -> Result<Vec<u8>, SquidError> {
    let mut out = Vec::new();
    r.read_to_end(&mut out)?;
    Ok(out)
}

/// A streaming reader over a live journal file: the replication sender's
/// view of "what has been appended since I last looked".
///
/// Each [`JournalTail::poll`] re-opens the file, reads from the current
/// byte offset, and decodes the complete records found there; a torn
/// record mid-append simply stays unconsumed until a later poll sees the
/// rest of its bytes. The reader holds no file handle between polls, so
/// it never pins a compacted-away inode.
///
/// Compaction swaps a (usually smaller) rewritten file under the same
/// path. A poll that finds the file shorter than its offset reports
/// [`TailPoll::Truncated`] and rewinds to offset 0 — the caller must
/// treat everything it streamed so far as superseded and re-snapshot
/// from the new file. Compaction that leaves the file *longer* than the
/// offset cannot be detected here; callers that race compaction guard
/// with the owning manager's journal epoch (`JournalStats::epoch`),
/// re-reading it around each poll and discarding the batch when it
/// moved.
#[derive(Debug)]
pub struct JournalTail {
    path: PathBuf,
    offset: u64,
}

/// One [`JournalTail::poll`] outcome.
#[derive(Debug)]
pub enum TailPoll {
    /// Complete records appended since the previous poll (possibly none).
    Records(TailBatch),
    /// The file shrank below the reader's offset — a compacted journal
    /// was swapped in. The reader has rewound to offset 0; re-snapshot.
    Truncated,
}

/// A batch of decoded records plus their exact on-disk bytes, so a
/// replication sender can ship the raw framing verbatim and the standby
/// can re-verify CRCs on its side.
#[derive(Debug)]
pub struct TailBatch {
    /// Decoded `(session, seq, op)` records in append order.
    pub records: Vec<(SessionId, u64, SessionOp)>,
    /// The raw journal bytes of exactly those records.
    pub raw: Vec<u8>,
    /// Byte offset the batch starts at.
    pub start_offset: u64,
    /// Byte offset after the batch (the reader's new position).
    pub end_offset: u64,
}

impl JournalTail {
    /// Start tailing `path` from the beginning of the file.
    pub fn new(path: impl AsRef<Path>) -> JournalTail {
        JournalTail {
            path: path.as_ref().to_path_buf(),
            offset: 0,
        }
    }

    /// Resume tailing from a byte offset (e.g. a standby's acknowledged
    /// position). The offset is *validated* against the current file: the
    /// reader rescans from the start and snaps down to the largest record
    /// boundary at or below `offset`, so resuming from a torn, stale, or
    /// mid-record offset can never misframe the stream. Returns the
    /// reader plus the number of complete records that precede its
    /// (snapped) position — the caller's replay prefix.
    pub fn resume(path: impl AsRef<Path>, offset: u64) -> Result<(JournalTail, u64), SquidError> {
        let path = path.as_ref().to_path_buf();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let mut pos = 0u64;
        let mut records_before = 0u64;
        loop {
            let rest = &bytes[pos as usize..];
            if rest.len() < 8 {
                break;
            }
            let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
            if len > MAX_RECORD || rest.len() - 8 < len as usize {
                break;
            }
            let payload = &rest[8..8 + len as usize];
            if crc32(payload) != crc || SessionOp::decode(payload).is_err() {
                break;
            }
            let next = pos + 8 + len as u64;
            if next > offset {
                break; // the requested offset splits this record: snap down
            }
            pos = next;
            records_before += 1;
        }
        Ok((JournalTail { path, offset: pos }, records_before))
    }

    /// The byte offset of the next unread record.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Read everything appended since the last poll. A missing file is an
    /// empty batch (the journal may not exist yet); a file shorter than
    /// the reader's offset is [`TailPoll::Truncated`].
    pub fn poll(&mut self) -> Result<TailPoll, SquidError> {
        let mut f = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(TailPoll::Records(TailBatch {
                    records: Vec::new(),
                    raw: Vec::new(),
                    start_offset: self.offset,
                    end_offset: self.offset,
                }))
            }
            Err(e) => return Err(e.into()),
        };
        let len = f.metadata()?.len();
        if len < self.offset {
            self.offset = 0;
            return Ok(TailPoll::Truncated);
        }
        use std::io::Seek;
        f.seek(std::io::SeekFrom::Start(self.offset))?;
        let mut bytes = Vec::with_capacity((len - self.offset) as usize);
        f.read_to_end(&mut bytes)?;
        let (records, valid) = scan_records(&bytes);
        bytes.truncate(valid as usize);
        let start = self.offset;
        self.offset += valid;
        Ok(TailPoll::Records(TailBatch {
            records,
            raw: bytes,
            start_offset: start,
            end_offset: self.offset,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("squid_journal_unit");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_ops() -> Vec<(SessionId, u64, SessionOp)> {
        vec![
            (1, 0, SessionOp::Create),
            (1, 1, SessionOp::AddExample("Jim Carrey".into())),
            (
                1,
                2,
                SessionOp::SetTarget {
                    table: "person".into(),
                    column: "name".into(),
                },
            ),
            (2, 0, SessionOp::Create),
            (1, 3, SessionOp::PinFilter("gender = Male".into())),
            (
                2,
                1,
                SessionOp::ChooseEntity {
                    example: "Titanic".into(),
                    pk: 7,
                },
            ),
            (1, 4, SessionOp::ClearChoice("Titanic".into())),
            (2, 0, SessionOp::End),
        ]
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = tmp("round_trip.journal");
        std::fs::remove_file(&path).ok();
        let mut j = Journal::open(&path, FsyncPolicy::Flush).unwrap();
        for (sid, seq, op) in sample_ops() {
            j.append(sid, seq, &op).unwrap();
        }
        drop(j);
        let replay = read_journal(&path).unwrap();
        assert_eq!(replay.records, sample_ops());
        assert_eq!(replay.bytes_truncated, 0);
        assert_eq!(replay.bytes_valid, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_recovers_valid_prefix_at_every_cut() {
        let path = tmp("torn.journal");
        std::fs::remove_file(&path).ok();
        let mut j = Journal::open(&path, FsyncPolicy::Flush).unwrap();
        for (sid, seq, op) in sample_ops() {
            j.append(sid, seq, &op).unwrap();
        }
        drop(j);
        let full = std::fs::read(&path).unwrap();
        let complete = read_journal(&path).unwrap();
        for cut in 0..full.len() {
            let cut_path = tmp("torn_cut.journal");
            std::fs::write(&cut_path, &full[..cut]).unwrap();
            let replay = read_journal(&cut_path).unwrap();
            // The recovered prefix is exactly the complete records that
            // fit in `cut` bytes; never an error, never a panic.
            assert!(replay.records.len() <= complete.records.len());
            assert_eq!(replay.records[..], complete.records[..replay.records.len()]);
            assert_eq!(replay.bytes_valid + replay.bytes_truncated, cut as u64);
            std::fs::remove_file(&cut_path).ok();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flips_truncate_at_the_damaged_record() {
        let path = tmp("flip.journal");
        std::fs::remove_file(&path).ok();
        let mut j = Journal::open(&path, FsyncPolicy::Always).unwrap();
        for (sid, seq, op) in sample_ops() {
            j.append(sid, seq, &op).unwrap();
        }
        drop(j);
        let full = std::fs::read(&path).unwrap();
        for i in 0..40 {
            let bit = (i * 6067) % (full.len() * 8);
            let mut damaged = full.clone();
            squid_relation::frame::failpoint::flip_bit(&mut damaged, bit);
            let flip_path = tmp("flip_case.journal");
            std::fs::write(&flip_path, &damaged).unwrap();
            let replay = read_journal(&flip_path).unwrap();
            // Valid prefix only: every recovered record matches history.
            let complete = sample_ops();
            assert_eq!(replay.records[..], complete[..replay.records.len()]);
            std::fs::remove_file(&flip_path).ok();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_to_valid_drops_the_tail() {
        let path = tmp("truncate.journal");
        std::fs::remove_file(&path).ok();
        let mut j = Journal::open(&path, FsyncPolicy::Flush).unwrap();
        for (sid, seq, op) in sample_ops() {
            j.append(sid, seq, &op).unwrap();
        }
        drop(j);
        // Simulate a torn append.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x55, 0x2, 0x3]).unwrap();
        drop(f);
        let replay = read_journal(&path).unwrap();
        assert_eq!(replay.bytes_truncated, 3);
        truncate_to_valid(&path, replay.bytes_valid).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), replay.bytes_valid);
        let again = read_journal(&path).unwrap();
        assert_eq!(again.bytes_truncated, 0);
        assert_eq!(again.records, sample_ops());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_empty_journal() {
        let replay = read_journal(tmp("never_written.journal")).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.bytes_valid, 0);
        assert_eq!(replay.bytes_truncated, 0);
    }

    #[test]
    fn tail_streams_appends_incrementally() {
        let path = tmp("tail_incremental.journal");
        std::fs::remove_file(&path).ok();
        let mut tail = JournalTail::new(&path);
        // Missing file: empty batch, not an error.
        let TailPoll::Records(b) = tail.poll().unwrap() else {
            panic!("missing file must not look truncated");
        };
        assert!(b.records.is_empty());

        let mut j = Journal::open(&path, FsyncPolicy::Flush).unwrap();
        let ops = sample_ops();
        let (head, rest) = ops.split_at(2);
        for (sid, seq, op) in head {
            j.append(*sid, *seq, op).unwrap();
        }
        let TailPoll::Records(b) = tail.poll().unwrap() else {
            panic!("appends are records, not truncation");
        };
        assert_eq!(b.records, head);
        assert_eq!(b.start_offset, 0);
        assert_eq!(b.end_offset, tail.offset());
        // Nothing new: empty batch at the same offset.
        let TailPoll::Records(b) = tail.poll().unwrap() else {
            panic!("idle poll must not look truncated");
        };
        assert!(b.records.is_empty());
        for (sid, seq, op) in rest {
            j.append(*sid, *seq, op).unwrap();
        }
        let TailPoll::Records(b) = tail.poll().unwrap() else {
            panic!("appends are records, not truncation");
        };
        assert_eq!(b.records, rest);
        // The raw bytes re-scan to the same records (what a standby does).
        let (rescanned, valid) = scan_records(&b.raw);
        assert_eq!(rescanned, rest);
        assert_eq!(valid, b.raw.len() as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tail_leaves_a_torn_record_unconsumed_until_complete() {
        let path = tmp("tail_torn.journal");
        std::fs::remove_file(&path).ok();
        let mut j = Journal::open(&path, FsyncPolicy::Flush).unwrap();
        let ops = sample_ops();
        j.append(ops[0].0, ops[0].1, &ops[0].2).unwrap();
        j.sync().unwrap();
        drop(j);
        // Hand-write the first half of a record, as a flush mid-append would.
        let (sid, seq, op) = &ops[1];
        let payload = op.encode(*sid, *seq);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let split = frame.len() / 2;
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&frame[..split]).unwrap();
        f.sync_data().unwrap();
        let mut tail = JournalTail::new(&path);
        let TailPoll::Records(b) = tail.poll().unwrap() else {
            panic!("torn tail is not truncation");
        };
        assert_eq!(b.records, ops[..1]);
        let boundary = tail.offset();
        // The torn half stays unconsumed...
        let TailPoll::Records(b) = tail.poll().unwrap() else {
            panic!()
        };
        assert!(b.records.is_empty());
        assert_eq!(tail.offset(), boundary);
        // ...until the rest of its bytes arrive.
        f.write_all(&frame[split..]).unwrap();
        f.sync_data().unwrap();
        drop(f);
        let TailPoll::Records(b) = tail.poll().unwrap() else {
            panic!()
        };
        assert_eq!(b.records, ops[1..2]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tail_detects_a_shrunken_file_and_rewinds() {
        let path = tmp("tail_shrink.journal");
        std::fs::remove_file(&path).ok();
        let mut j = Journal::open(&path, FsyncPolicy::Flush).unwrap();
        for (sid, seq, op) in sample_ops() {
            j.append(sid, seq, &op).unwrap();
        }
        drop(j);
        let mut tail = JournalTail::new(&path);
        let TailPoll::Records(b) = tail.poll().unwrap() else {
            panic!()
        };
        assert_eq!(b.records.len(), sample_ops().len());
        // Compaction swaps in a shorter file under the same path.
        let mut j = Journal::create(&path, FsyncPolicy::Flush).unwrap();
        j.append(9, 0, &SessionOp::Create).unwrap();
        drop(j);
        assert!(matches!(tail.poll().unwrap(), TailPoll::Truncated));
        assert_eq!(tail.offset(), 0);
        let TailPoll::Records(b) = tail.poll().unwrap() else {
            panic!()
        };
        assert_eq!(b.records, vec![(9, 0, SessionOp::Create)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_snaps_mid_record_offsets_to_a_boundary() {
        let path = tmp("tail_resume.journal");
        std::fs::remove_file(&path).ok();
        let mut j = Journal::open(&path, FsyncPolicy::Flush).unwrap();
        let ops = sample_ops();
        let mut boundaries = vec![0u64];
        for (sid, seq, op) in &ops {
            j.append(*sid, *seq, op).unwrap();
            boundaries.push(j.bytes());
        }
        drop(j);
        let file_len = *boundaries.last().unwrap();
        for offset in 0..=file_len + 7 {
            let (mut tail, before) = JournalTail::resume(&path, offset).unwrap();
            let snapped = tail.offset();
            assert!(snapped <= offset.min(file_len));
            assert!(
                boundaries.contains(&snapped),
                "offset {offset} snapped to non-boundary {snapped}"
            );
            let TailPoll::Records(b) = tail.poll().unwrap() else {
                panic!()
            };
            // Prefix count + tail records always reassemble the full log.
            assert_eq!(before as usize + b.records.len(), ops.len());
            assert_eq!(b.records, ops[before as usize..]);
        }
        std::fs::remove_file(&path).ok();
    }
}
