//! The filter-event prior Pr(φ) = ρ · δ(φ) · α(φ) · λ(φ)
//! (paper Section 4.2.2, Appendices A and B).

use crate::filter::CandidateFilter;
use crate::params::SquidParams;

/// Domain selectivity impact δ(φ) (Appendix A):
/// `δ = 1 / max(1, coverage/η)^γ`.
pub fn domain_impact(coverage: f64, params: &SquidParams) -> f64 {
    if params.gamma == 0.0 || params.eta <= 0.0 {
        return 1.0;
    }
    let ratio = (coverage / params.eta).max(1.0);
    if ratio == 1.0 {
        return 1.0; // low-coverage filters (the common case) skip powf
    }
    if params.gamma == 2.0 {
        return 1.0 / (ratio * ratio); // the default γ, exact without powf
    }
    1.0 / ratio.powf(params.gamma)
}

/// Association strength impact α(φ) (Section 4.2.2): derived filters with
/// θ below τa are insignificant. Basic filters always pass. In normalized
/// mode the share is additionally gated by `min_frac`.
pub fn strength_impact(filter: &CandidateFilter, params: &SquidParams) -> f64 {
    match filter.value.theta() {
        None => 1.0,
        Some(theta) => {
            if theta < params.tau_a {
                return 0.0;
            }
            if let crate::filter::FilterValue::DerivedFrac { frac, .. } = &filter.value {
                if *frac < params.min_frac {
                    return 0.0;
                }
            }
            1.0
        }
    }
}

/// Sample skewness of a distribution (Appendix B):
/// `n·Σ(aᵢ−ā)³ / (s³·(n−1)·(n−2))`. `None` when n < 3 or s = 0.
pub fn skewness(values: &[f64]) -> Option<f64> {
    let n = values.len();
    if n < 3 {
        return None;
    }
    let nf = n as f64;
    let mean = values.iter().sum::<f64>() / nf;
    let var = values.iter().map(|a| (a - mean).powi(2)).sum::<f64>() / (nf - 1.0);
    let s = var.sqrt();
    if s == 0.0 {
        return Some(0.0);
    }
    let m3 = values.iter().map(|a| (a - mean).powi(3)).sum::<f64>();
    Some(nf * m3 / (s.powi(3) * (nf - 1.0) * (nf - 2.0)))
}

/// Mean/standard-deviation outlier test (Appendix B): `(a − ā) > k·s`.
/// For n < 3 every element is treated as an outlier.
pub fn is_outlier(a: f64, values: &[f64], k: f64) -> bool {
    let n = values.len();
    if n < 3 {
        return true;
    }
    let nf = n as f64;
    let mean = values.iter().sum::<f64>() / nf;
    let var = values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (nf - 1.0);
    let s = var.sqrt();
    (a - mean) > k * s
}

/// Outlier impact λ(φ) (Appendix B): 1 for basic filters; for derived
/// filters, 1 iff the family's association-strength distribution is skewed
/// beyond τs AND this filter's strength is an outlier in it. `family` holds
/// the strengths of all derived candidates on the same attribute.
pub fn outlier_impact(filter: &CandidateFilter, family: &[f64], params: &SquidParams) -> f64 {
    let Some(strength) = filter.value.strength() else {
        return 1.0; // basic filter, θ = ⊥
    };
    let Some(tau_s) = params.tau_s else {
        return 1.0; // outlier test disabled (τs = N/A in Figure 26)
    };
    if family.len() < 3 {
        return 1.0; // skewness undefined → all elements are outliers
    }
    let skewed = skewness(family).is_some_and(|sk| sk > tau_s);
    if skewed && is_outlier(strength, family, params.outlier_k) {
        1.0
    } else {
        0.0
    }
}

/// Full filter-event prior Pr(φ) = ρ · δ · α · λ, clamped below 1.
pub fn filter_prior(filter: &CandidateFilter, family: &[f64], params: &SquidParams) -> f64 {
    let p = params.rho
        * domain_impact(filter.coverage, params)
        * strength_impact(filter, params)
        * outlier_impact(filter, family, params);
    p.clamp(0.0, 1.0 - 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::FilterValue;
    use squid_relation::Value;

    fn basic(coverage: f64) -> CandidateFilter {
        CandidateFilter {
            prop_id: "p".into(),
            attr_name: "a".into(),
            value: FilterValue::CatEq(Value::text("x")),
            selectivity: 0.5,
            coverage,
        }
    }

    fn derived(theta: u64) -> CandidateFilter {
        CandidateFilter {
            prop_id: "p".into(),
            attr_name: "a".into(),
            value: FilterValue::DerivedEq {
                value: Value::text("x"),
                theta,
            },
            selectivity: 0.1,
            coverage: 0.05,
        }
    }

    #[test]
    fn delta_is_one_below_eta() {
        let params = SquidParams::default(); // η=0.4, γ=2
        assert_eq!(domain_impact(0.1, &params), 1.0);
        assert_eq!(domain_impact(0.4, &params), 1.0);
    }

    #[test]
    fn delta_decreases_above_eta() {
        let params = SquidParams::default();
        let d = domain_impact(0.8, &params); // ratio 2, γ=2 → 1/4
        assert!((d - 0.25).abs() < 1e-12);
        assert!(domain_impact(1.0, &params) < d);
    }

    #[test]
    fn gamma_zero_disables_penalty() {
        let params = SquidParams {
            gamma: 0.0,
            ..SquidParams::default()
        };
        assert_eq!(domain_impact(1.0, &params), 1.0);
    }

    #[test]
    fn alpha_cuts_weak_associations() {
        let params = SquidParams::default(); // τa = 5
        assert_eq!(strength_impact(&derived(4), &params), 0.0);
        assert_eq!(strength_impact(&derived(5), &params), 1.0);
        assert_eq!(strength_impact(&basic(0.1), &params), 1.0);
    }

    #[test]
    fn skewness_of_symmetric_distribution_is_zero() {
        let sk = skewness(&[1.0, 2.0, 3.0]).unwrap();
        assert!(sk.abs() < 1e-12);
        assert!(skewness(&[1.0, 2.0]).is_none());
        assert_eq!(skewness(&[5.0, 5.0, 5.0]), Some(0.0));
    }

    #[test]
    fn skewness_positive_for_heavy_right_tail() {
        // One dominant strength over a flat tail: strongly right-skewed.
        let a = skewness(&[40.0, 2.0, 2.0, 1.0, 1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(a > 2.0, "heavy tail should exceed τs=2: {a}");
        // Figure 8 Case B (12, 10, 10, 9, 9) stays below τs=2 — "no filter
        // is interesting".
        let b = skewness(&[12.0, 10.0, 10.0, 9.0, 9.0]).unwrap();
        assert!(b < 2.0, "flat family must not pass τs: {b}");
    }

    #[test]
    fn outlier_detection() {
        let family = [40.0, 2.0, 2.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        assert!(is_outlier(40.0, &family, 2.0));
        assert!(!is_outlier(2.0, &family, 2.0));
        // n < 3: everything is an outlier.
        assert!(is_outlier(1.0, &[1.0, 2.0], 2.0));
    }

    #[test]
    fn lambda_for_basic_filters_is_one() {
        let params = SquidParams::default();
        assert_eq!(outlier_impact(&basic(0.1), &[], &params), 1.0);
    }

    #[test]
    fn lambda_keeps_outliers_in_skewed_families() {
        let params = SquidParams::default();
        let family = [40.0, 2.0, 2.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        assert_eq!(outlier_impact(&derived(40), &family, &params), 1.0);
        assert_eq!(outlier_impact(&derived(2), &family, &params), 0.0);
    }

    #[test]
    fn lambda_rejects_flat_families() {
        // Figure 8 Case B: nothing stands out → no filter is interesting.
        let params = SquidParams::default();
        let family = [12.0, 10.0, 10.0, 9.0, 9.0];
        assert_eq!(outlier_impact(&derived(12), &family, &params), 0.0);
    }

    #[test]
    fn lambda_disabled_when_tau_s_none() {
        let params = SquidParams {
            tau_s: None,
            ..SquidParams::default()
        };
        let family = [12.0, 10.0, 10.0, 9.0, 9.0];
        assert_eq!(outlier_impact(&derived(12), &family, &params), 1.0);
    }

    #[test]
    fn small_families_pass_lambda() {
        let params = SquidParams::default();
        assert_eq!(outlier_impact(&derived(10), &[10.0, 2.0], &params), 1.0);
    }

    #[test]
    fn prior_composition() {
        let params = SquidParams::default();
        // Basic filter, low coverage: prior = ρ.
        assert!((filter_prior(&basic(0.1), &[], &params) - 0.1).abs() < 1e-9);
        // Weak derived filter: prior = 0.
        assert_eq!(filter_prior(&derived(2), &[2.0, 1.0], &params), 0.0);
        // Prior never reaches 1.
        let p = SquidParams {
            rho: 5.0,
            ..SquidParams::default()
        };
        assert!(filter_prior(&basic(0.1), &[], &p) < 1.0);
    }
}
