//! Precision / recall / f-score over result row-id sets (Section 7.1,
//! "Metrics"): precision = |Q'∩Q| / |Q'|, recall = |Q'∩Q| / |Q|.

use squid_relation::RowSet;

/// Accuracy metrics comparing an inferred result against the intended one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// |Q'(D) ∩ Q(D)| / |Q'(D)|.
    pub precision: f64,
    /// |Q'(D) ∩ Q(D)| / |Q(D)|.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f_score: f64,
}

impl Accuracy {
    /// Compute metrics from the inferred and intended row sets.
    pub fn of(inferred: &RowSet, intended: &RowSet) -> Accuracy {
        let inter = inferred.intersection_size(intended) as f64;
        let precision = if inferred.is_empty() {
            0.0
        } else {
            inter / inferred.len() as f64
        };
        let recall = if intended.is_empty() {
            0.0
        } else {
            inter / intended.len() as f64
        };
        let f_score = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Accuracy {
            precision,
            recall,
            f_score,
        }
    }

    /// A perfect score (instance-equivalent queries, the QRE success
    /// criterion of §7.5).
    pub fn is_perfect(&self) -> bool {
        self.f_score >= 1.0 - 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[usize]) -> RowSet {
        ids.iter().copied().collect()
    }

    #[test]
    fn perfect_match() {
        let a = Accuracy::of(&set(&[1, 2, 3]), &set(&[1, 2, 3]));
        assert_eq!(a.precision, 1.0);
        assert_eq!(a.recall, 1.0);
        assert!(a.is_perfect());
    }

    #[test]
    fn partial_overlap() {
        let a = Accuracy::of(&set(&[1, 2, 3, 4]), &set(&[3, 4, 5, 6, 7, 8]));
        assert_eq!(a.precision, 0.5);
        assert!((a.recall - 2.0 / 6.0).abs() < 1e-12);
        let expected_f = 2.0 * 0.5 * (2.0 / 6.0) / (0.5 + 2.0 / 6.0);
        assert!((a.f_score - expected_f).abs() < 1e-12);
        assert!(!a.is_perfect());
    }

    #[test]
    fn empty_sets_are_zero_not_nan() {
        let a = Accuracy::of(&set(&[]), &set(&[1]));
        assert_eq!(a.precision, 0.0);
        assert_eq!(a.recall, 0.0);
        assert_eq!(a.f_score, 0.0);
        let b = Accuracy::of(&set(&[1]), &set(&[]));
        assert_eq!(b.recall, 0.0);
        assert!(!b.f_score.is_nan());
    }

    #[test]
    fn too_general_query_has_low_precision_high_recall() {
        let a = Accuracy::of(&set(&(0..100).collect::<Vec<_>>()), &set(&[1, 2, 3]));
        assert!((a.precision - 0.03).abs() < 1e-12);
        assert_eq!(a.recall, 1.0);
    }
}
