//! SQuID's tunable parameters (paper Figure 21 and Appendix E).

/// All knobs of the probabilistic abduction model.
#[derive(Debug, Clone)]
pub struct SquidParams {
    /// Base filter prior ρ: default tendency to include a filter.
    /// Default 0.1 (Figure 21).
    pub rho: f64,
    /// Domain-coverage penalty exponent γ (Appendix A). 0 disables the
    /// penalty. Default 2.
    pub gamma: f64,
    /// Domain-coverage threshold η (Appendix A): coverage up to η is not
    /// penalized. Default 0.4.
    pub eta: f64,
    /// Association-strength threshold τa: derived filters with θ < τa are
    /// insignificant (α = 0). Default 5.
    pub tau_a: u64,
    /// Skewness threshold τs for the outlier impact λ (Appendix B).
    /// `None` disables the outlier test entirely (λ = 1 everywhere),
    /// matching the "τs = N/A" configuration of Figure 26. Default 2.0.
    pub tau_s: Option<f64>,
    /// Outlier constant k in the mean/standard-deviation rule
    /// `(θ − mean) > k·σ` (Appendix B). Default 2.0.
    pub outlier_k: f64,
    /// Use normalized association strength (the fraction of an entity's
    /// associations, §7.4 case studies) instead of raw counts.
    pub normalize_association: bool,
    /// When normalizing, the minimum share used in place of τa (raw τa still
    /// gates noise). Default 0.5.
    pub min_frac: f64,
    /// Allow disjunctive categorical filters (paper footnote 7): when the
    /// examples do not share a single value but use at most
    /// `disjunction_limit` distinct values, emit an `IN` filter.
    pub allow_disjunction: bool,
    /// Maximum number of values in a disjunctive filter.
    pub disjunction_limit: usize,
    /// Upper bound on exhaustive disambiguation combinations before falling
    /// back to the greedy strategy.
    pub max_disambiguation_combinations: usize,
    /// Entity disambiguation on/off (Figure 12's "w/ DA" vs "w/o DA";
    /// disabled picks the first candidate mapping for each example).
    pub disambiguate: bool,
}

impl Default for SquidParams {
    fn default() -> Self {
        SquidParams {
            rho: 0.1,
            gamma: 2.0,
            eta: 0.4,
            tau_a: 5,
            tau_s: Some(2.0),
            outlier_k: 2.0,
            normalize_association: false,
            min_frac: 0.5,
            allow_disjunction: false,
            disjunction_limit: 3,
            max_disambiguation_combinations: 4096,
            disambiguate: true,
        }
    }
}

impl SquidParams {
    /// Optimistic preset for the query-reverse-engineering mode (§7.5,
    /// Appendix E): high filter prior, low association-strength threshold,
    /// no coverage penalty, no outlier pruning — keep every consistent
    /// filter, since in the closed world nothing is coincidental.
    pub fn optimistic() -> Self {
        SquidParams {
            rho: 0.9,
            gamma: 0.0,
            tau_a: 1,
            tau_s: None,
            ..Default::default()
        }
    }

    /// Case-study preset (§7.4): normalized association strength.
    pub fn normalized() -> Self {
        SquidParams {
            normalize_association: true,
            tau_a: 2,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_figure21() {
        let p = SquidParams::default();
        assert_eq!(p.rho, 0.1);
        assert_eq!(p.gamma, 2.0);
        assert_eq!(p.tau_a, 5);
        assert_eq!(p.tau_s, Some(2.0));
    }

    #[test]
    fn optimistic_preset_keeps_filters() {
        let p = SquidParams::optimistic();
        assert!(p.rho > 0.5);
        assert_eq!(p.tau_a, 1);
        assert!(p.tau_s.is_none());
        assert_eq!(p.gamma, 0.0);
    }

    #[test]
    fn normalized_preset_enables_fractions() {
        assert!(SquidParams::normalized().normalize_association);
    }
}
