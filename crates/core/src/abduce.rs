//! Query abduction — Algorithm 1 of the paper.
//!
//! Thanks to the factorization of the query posterior (Equation 5), each
//! filter's inclusion can be decided independently: include φ iff
//!
//! ```text
//! Pr(φ) · Pr(x|φ)  >  Pr(φ̄) · Pr(x|φ̄)
//!     Pr(φ) · 1    >  (1 − Pr(φ)) · ψ(φ)^|E|
//! ```
//!
//! Ties drop the filter (Occam's razor). The result maximizes
//! Pr*(Qᵠ|E) (Theorem 1; property-tested in this module).

use squid_relation::FxHashMap;

use crate::filter::CandidateFilter;
use crate::params::SquidParams;
use crate::prior::filter_prior;

/// One abduction decision with its diagnostics.
#[derive(Debug, Clone)]
pub struct ScoredFilter {
    /// The candidate filter.
    pub filter: CandidateFilter,
    /// Filter-event prior Pr(φ).
    pub prior: f64,
    /// Include score Pr(φ)·Pr(x|φ) = Pr(φ).
    pub include_score: f64,
    /// Exclude score (1−Pr(φ))·ψ(φ)^|E|.
    pub exclude_score: f64,
    /// Algorithm 1's decision.
    pub included: bool,
}

/// Association-strength families: derived candidates grouped by property
/// (Figure 8's "family of derived filters sharing the same attribute").
/// Keys borrow from `candidates` — this runs on every interactive session
/// update, so no per-call `String` clones.
pub fn strength_families(candidates: &[CandidateFilter]) -> FxHashMap<&str, Vec<f64>> {
    let mut families: FxHashMap<&str, Vec<f64>> = FxHashMap::default();
    for c in candidates {
        if let Some(s) = c.value.strength() {
            families.entry(c.prop_id.as_str()).or_default().push(s);
        }
    }
    families
}

/// Algorithm 1: decide inclusion for every candidate filter independently.
pub fn abduce(
    candidates: Vec<CandidateFilter>,
    example_count: usize,
    params: &SquidParams,
) -> Vec<ScoredFilter> {
    let families = strength_families(&candidates);
    let empty: Vec<f64> = Vec::new();
    let priors: Vec<f64> = candidates
        .iter()
        .map(|filter| {
            let family = families.get(filter.prop_id.as_str()).unwrap_or(&empty);
            filter_prior(filter, family, params)
        })
        .collect();
    drop(families);
    candidates
        .into_iter()
        .zip(priors)
        .map(|(filter, prior)| {
            let include_score = prior; // Pr(x|φ) = 1
            let psi = filter.selectivity.clamp(0.0, 1.0);
            let exclude_score = (1.0 - prior) * psi.powi(example_count as i32);
            let included = include_score > exclude_score;
            ScoredFilter {
                filter,
                prior,
                include_score,
                exclude_score,
                included,
            }
        })
        .collect()
}

/// The log-posterior (up to the constant K/ψ(Φ)) of a chosen subset,
/// used to verify Theorem 1: Σᵩ log(Pr(φ̃)·Pr(x|φ̃)).
pub fn log_posterior(scored: &[ScoredFilter], include: &[bool]) -> f64 {
    assert_eq!(scored.len(), include.len());
    scored
        .iter()
        .zip(include)
        .map(|(s, &inc)| {
            let term = if inc {
                s.include_score
            } else {
                s.exclude_score
            };
            term.max(1e-300).ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::FilterValue;
    use squid_relation::Value;

    fn cat(attr: &str, selectivity: f64, coverage: f64) -> CandidateFilter {
        CandidateFilter {
            prop_id: format!("person.{attr}").into(),
            attr_name: attr.into(),
            value: FilterValue::CatEq(Value::text("v")),
            selectivity,
            coverage,
        }
    }

    fn derived(attr: &str, value: &str, theta: u64, selectivity: f64) -> CandidateFilter {
        CandidateFilter {
            prop_id: format!("person~{attr}").into(),
            attr_name: attr.into(),
            value: FilterValue::DerivedEq {
                value: Value::text(value),
                theta,
            },
            selectivity,
            coverage: 0.03,
        }
    }

    #[test]
    fn rare_context_included_common_excluded() {
        // Example 2.1 shape: under ρ=0.1 a filter is included once
        // ψ^|E| < ρ/(1−ρ) ≈ 0.111. A selective filter (ψ=3/7) clears the
        // bar with 3 examples; a near-universal one (ψ=0.95) never does.
        let params = SquidParams::default();
        let scored = abduce(
            vec![cat("interest", 3.0 / 7.0, 0.2), cat("gender", 0.95, 0.5)],
            3,
            &params,
        );
        assert!(scored[0].included, "selective filter should be included");
        assert!(!scored[1].included, "common filter should be excluded");
        // With only 2 examples even the selective one stays out: the
        // observation is still plausibly coincidental.
        let scored2 = abduce(vec![cat("interest", 3.0 / 7.0, 0.2)], 2, &params);
        assert!(!scored2[0].included);
    }

    #[test]
    fn more_examples_flip_common_filters_in() {
        // ψ=0.75 (Male): with 2 examples the observation is unsurprising;
        // with 20 it is overwhelming evidence.
        let params = SquidParams::default();
        let f = || vec![cat("gender", 0.75, 0.5)];
        assert!(!abduce(f(), 2, &params)[0].included);
        assert!(abduce(f(), 20, &params)[0].included);
    }

    #[test]
    fn weak_derived_filters_never_included() {
        let params = SquidParams::default(); // τa = 5
        let scored = abduce(vec![derived("genre", "Drama", 2, 0.001)], 5, &params);
        assert_eq!(scored[0].prior, 0.0);
        assert!(!scored[0].included);
    }

    #[test]
    fn flat_families_are_dropped_by_lambda() {
        // Figure 8 Case B: similar strengths everywhere → λ = 0 → excluded,
        // no matter how selective.
        let params = SquidParams::default();
        let cands = vec![
            derived("genre", "Comedy", 12, 0.001),
            derived("genre", "SciFi", 10, 0.001),
            derived("genre", "Drama", 10, 0.001),
            derived("genre", "Action", 9, 0.001),
            derived("genre", "Thriller", 9, 0.001),
        ];
        let scored = abduce(cands, 5, &params);
        assert!(scored.iter().all(|s| !s.included));
    }

    #[test]
    fn skewed_family_keeps_only_outliers() {
        // Figure 8 Case A-like: one strength dominating a long flat tail.
        let params = SquidParams::default();
        let mut cands = vec![derived("genre", "Comedy", 60, 0.001)];
        for (i, g) in ["Drama", "Action", "Thriller", "SciFi", "Romance", "Crime"]
            .iter()
            .enumerate()
        {
            cands.push(derived("genre", g, 5 + (i as u64 % 2), 0.3));
        }
        let scored = abduce(cands, 5, &params);
        assert!(scored[0].included, "dominant comedy filter kept");
        assert!(
            scored[1..].iter().all(|s| !s.included),
            "tail filters dropped"
        );
    }

    #[test]
    fn ties_drop_the_filter() {
        // Exact tie: ρ=0.5 and ψ=1 give include = exclude = 0.5 in floats.
        let params = SquidParams {
            rho: 0.5,
            ..SquidParams::default()
        };
        let scored = abduce(vec![cat("a", 1.0, 0.1)], 3, &params);
        assert_eq!(scored[0].include_score, scored[0].exclude_score);
        assert!(!scored[0].included, "Occam's razor drops ties");
    }

    #[test]
    fn algorithm1_maximizes_posterior_exhaustively() {
        // Theorem 1 check: the greedy decisions beat every other subset.
        let params = SquidParams::default();
        let cands = vec![
            cat("a", 0.05, 0.1),
            cat("b", 0.6, 0.3),
            cat("c", 0.95, 0.8),
            derived("genre", "Comedy", 40, 0.01),
            derived("genre", "Drama", 6, 0.4),
        ];
        let scored = abduce(cands, 3, &params);
        let chosen: Vec<bool> = scored.iter().map(|s| s.included).collect();
        let best = log_posterior(&scored, &chosen);
        let n = scored.len();
        for mask in 0..(1u32 << n) {
            let subset: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            let lp = log_posterior(&scored, &subset);
            assert!(
                lp <= best + 1e-9,
                "subset {subset:?} beats Algorithm 1: {lp} > {best}"
            );
        }
    }

    #[test]
    fn families_group_by_property() {
        let cands = vec![
            derived("genre", "Comedy", 10, 0.1),
            derived("genre", "Drama", 3, 0.2),
            cat("gender", 0.5, 0.5),
        ];
        let fams = strength_families(&cands);
        assert_eq!(fams.len(), 1);
        assert_eq!(fams["person~genre"], vec![10.0, 3.0]);
    }
}
