//! Semantic context discovery (paper Section 6.1.2): given the resolved
//! example entities, derive all *minimal valid* candidate filters Φ from the
//! αDB's precomputed properties.
//!
//! Discovery is **incremental**: [`ContextState`] keeps, per property, the
//! running intersection state over the examples seen so far (shared
//! categorical values, numeric min/max with endpoint multiplicities, derived
//! θ/fraction minima, per-cutpoint suffix minima). Adding example *k+1*
//! intersects only the new row's properties against the cached state —
//! O(properties) instead of O(k · properties) — which is what makes the
//! interactive [`crate::SquidSession`] loop cheap. The classic one-shot
//! [`discover_contexts`] folds the rows through the same state, so the two
//! paths agree by construction.

use squid_adb::{EntityProps, PropStats};
use squid_relation::{RowId, Value};

use crate::filter::{CandidateFilter, FilterValue};
use crate::params::SquidParams;

/// Incremental per-property intersection state for one property.
///
/// Each variant caches exactly what the corresponding snapshot needs; adding
/// a row refines the state in place, removing a row either adjusts it (the
/// numeric endpoint-count trick) or rebuilds that one property from the
/// remaining rows.
#[derive(Debug, Clone)]
enum PropState {
    /// Categorical: running shared-value intersection plus the single-valued
    /// union that feeds the disjunction fallback (footnote 7).
    Cat {
        /// Values shared by every example so far (sorted).
        shared: Vec<Value>,
        /// Union of values over examples, maintained while every example is
        /// single-valued (sorted).
        union: Vec<Value>,
        /// Every example so far carried exactly one value.
        all_single: bool,
    },
    /// Direct numeric: tightest range with endpoint multiplicities so that
    /// removing an interior example is O(1).
    Num {
        lo: f64,
        hi: f64,
        /// Examples attaining `lo` / `hi` (for removal without rebuild).
        lo_count: usize,
        hi_count: usize,
        /// Examples with a NULL (or NaN — which no range filter can
        /// satisfy) value; any > 0 kills the filter.
        null_count: usize,
    },
    /// Derived counted: shared values with running θ and fraction minima,
    /// sorted by value.
    Derived { shared: Vec<(Value, u64, f64)> },
    /// Derived numeric: per-cutpoint minimum suffix counts.
    DerivedNum { thetas: Vec<u64> },
}

/// Incremental semantic-context discovery state over one entity's examples.
///
/// ```
/// use squid_adb::{test_fixtures, ADb};
/// use squid_core::{discover_contexts, ContextState, SquidParams};
///
/// let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
/// let entity = adb.entity("person").unwrap();
/// let params = SquidParams::default();
///
/// let mut state = ContextState::new(entity);
/// state.add_row(entity, 0);
/// state.add_row(entity, 1);
/// assert_eq!(
///     state
///         .candidates(entity, &params)
///         .iter()
///         .map(|f| f.describe())
///         .collect::<Vec<_>>(),
///     discover_contexts(entity, &[0, 1], &params)
///         .iter()
///         .map(|f| f.describe())
///         .collect::<Vec<_>>(),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct ContextState {
    /// Per-property states, parallel to `entity.props`.
    states: Vec<PropState>,
    /// Per-property snapshot cache: `Some` holds the filters the state
    /// currently emits; mutations that may change a property's output
    /// clear its slot, so [`ContextState::candidates`] recomputes only
    /// dirty properties. Valid for a fixed `(entity, params)` pair.
    cached: Vec<Option<Vec<CandidateFilter>>>,
    /// Distinct example rows currently folded in (sorted).
    rows: Vec<RowId>,
    /// Scratch buffer for suffix-count walks.
    buf: Vec<u64>,
    /// Bumped whenever any property's emitted filters may have changed —
    /// the staleness signal for downstream memoization (a session caches
    /// its scored filters against this).
    generation: u64,
}

impl ContextState {
    /// Fresh state with no examples.
    pub fn new(entity: &EntityProps) -> ContextState {
        let states: Vec<PropState> = entity.props.iter().map(|p| fresh_state(&p.stats)).collect();
        let cached = vec![None; states.len()];
        ContextState {
            states,
            cached,
            rows: Vec::new(),
            buf: Vec::new(),
            generation: 0,
        }
    }

    /// Example rows currently folded in (sorted, distinct).
    pub fn rows(&self) -> &[RowId] {
        &self.rows
    }

    /// Monotonic staleness counter: unchanged between two calls means the
    /// candidate set [`ContextState::candidates`] emits is unchanged too.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Fold one example row into every property state — O(properties), the
    /// per-example incremental step. Duplicate rows are ignored.
    pub fn add_row(&mut self, entity: &EntityProps, row: RowId) {
        match self.rows.binary_search(&row) {
            Ok(_) => return,
            Err(pos) => self.rows.insert(pos, row),
        }
        let first = self.rows.len() == 1;
        let mut changed = false;
        for (i, (state, prop)) in self.states.iter_mut().zip(&entity.props).enumerate() {
            if add_row_to_state(state, &prop.stats, row, first, &mut self.buf) {
                self.cached[i] = None;
                changed = true;
            }
        }
        self.generation += changed as u64;
    }

    /// Remove one example row, rebuilding only the affected property states:
    /// numeric states adjust in place when the removed value is interior to
    /// the current range; intersection/minimum states (categorical, derived)
    /// are rebuilt for the remaining rows since removal can relax them.
    pub fn remove_row(&mut self, entity: &EntityProps, row: RowId) {
        let Ok(pos) = self.rows.binary_search(&row) else {
            return;
        };
        self.rows.remove(pos);
        let mut changed = false;
        for (i, (state, prop)) in self.states.iter_mut().zip(&entity.props).enumerate() {
            // `adjusted`: the state is still exact without a rebuild;
            // `unchanged`: additionally, its emitted filters are identical.
            let (adjusted, unchanged) = match (&mut *state, &prop.stats) {
                (
                    PropState::Num {
                        lo,
                        hi,
                        lo_count,
                        hi_count,
                        null_count,
                    },
                    PropStats::Numeric(s),
                ) => match s.value_of(row).filter(|x| !x.is_nan()) {
                    None => {
                        *null_count -= 1;
                        // Output changes if the last null example left.
                        (true, *null_count > 0)
                    }
                    Some(x) => {
                        // Interior removal leaves the tightest range as is.
                        let at_lo = x == *lo;
                        let at_hi = x == *hi;
                        if at_lo {
                            *lo_count -= 1;
                        }
                        if at_hi {
                            *hi_count -= 1;
                        }
                        let ok = (!at_lo || *lo_count > 0) && (!at_hi || *hi_count > 0);
                        (ok, ok)
                    }
                },
                _ => (false, false),
            };
            if !adjusted {
                *state = fresh_state(&prop.stats);
                for (k, &r) in self.rows.iter().enumerate() {
                    add_row_to_state(state, &prop.stats, r, k == 0, &mut self.buf);
                }
            }
            if !unchanged {
                self.cached[i] = None;
                changed = true;
            }
        }
        self.generation += changed as u64;
    }

    /// Snapshot the candidate filter set Φ for the current examples.
    ///
    /// Filters are emitted in property order with values in a canonical
    /// (sorted) order, so the output is independent of the order examples
    /// were added in. Properties whose state did not change since the last
    /// snapshot are served from the per-property cache (pass the same
    /// `entity` and `params` across calls on one state).
    pub fn candidates(
        &mut self,
        entity: &EntityProps,
        params: &SquidParams,
    ) -> Vec<CandidateFilter> {
        let mut out = Vec::new();
        if self.rows.is_empty() {
            return out;
        }
        for i in 0..self.states.len() {
            if let Some(cached) = &self.cached[i] {
                out.extend_from_slice(cached);
                continue;
            }
            let start = out.len();
            emit_prop(
                &self.states[i],
                &entity.props[i],
                entity.n,
                params,
                &mut out,
            );
            self.cached[i] = Some(out[start..].to_vec());
        }
        out
    }
}

/// Emit the candidate filters one property's state currently implies.
fn emit_prop(
    state: &PropState,
    prop: &squid_adb::Property,
    n: usize,
    params: &SquidParams,
    out: &mut Vec<CandidateFilter>,
) {
    // Interned at αDB build time: emission runs per dirty property per
    // turn, and the emitted filters clone without allocating.
    let prop_id = prop.id_sym;
    let attr_name = prop.attr_sym;
    match (state, &prop.stats) {
        (
            PropState::Cat {
                shared,
                union,
                all_single,
            },
            PropStats::Categorical(s),
        ) => {
            if !shared.is_empty() {
                for v in shared {
                    out.push(CandidateFilter {
                        prop_id,
                        attr_name,
                        selectivity: s.selectivity_eq(v, n),
                        coverage: s.coverage_eq(),
                        value: FilterValue::CatEq(*v),
                    });
                }
            } else if params.allow_disjunction
                && *all_single
                && union.len() >= 2
                && union.len() <= params.disjunction_limit
            {
                // Footnote 7: single-valued categorical attributes
                // may form a small disjunction covering all examples.
                out.push(CandidateFilter {
                    prop_id,
                    attr_name,
                    selectivity: s.selectivity_in(union, n),
                    coverage: s.coverage_in(union.len()),
                    value: FilterValue::CatIn(union.clone()),
                });
            }
        }
        (
            PropState::Num {
                lo, hi, null_count, ..
            },
            PropStats::Numeric(s),
        ) => {
            // Tightest range [lo, hi]; requires every example to
            // have a value (validity).
            if *null_count == 0 && lo.is_finite() {
                out.push(CandidateFilter {
                    prop_id,
                    attr_name,
                    selectivity: s.selectivity_range(*lo, *hi, n),
                    coverage: s.coverage_range(*lo, *hi),
                    value: FilterValue::NumRange(*lo, *hi),
                });
            }
        }
        (PropState::Derived { shared }, PropStats::Derived(s)) => {
            for &(v, theta, frac) in shared {
                let (value, selectivity) = if params.normalize_association {
                    (
                        FilterValue::DerivedFrac {
                            value: v,
                            frac,
                            raw_theta: theta,
                        },
                        s.selectivity_frac(&v, frac, n),
                    )
                } else {
                    (
                        FilterValue::DerivedEq { value: v, theta },
                        s.selectivity(&v, theta, n),
                    )
                };
                out.push(CandidateFilter {
                    prop_id,
                    attr_name,
                    selectivity,
                    coverage: s.coverage_eq(),
                    value,
                });
            }
        }
        (PropState::DerivedNum { thetas }, PropStats::DerivedNumeric(s)) => {
            // Every cutpoint yields a valid filter; pick the most
            // surprising (minimum selectivity) point on the
            // (c, θ(c)) frontier — abduction favors exactly that one.
            let mut best: Option<(f64, u64, f64)> = None; // (cut, θ, ψ)
            for (ci, &cut) in s.cutpoints.iter().enumerate() {
                let theta = thetas[ci];
                if theta == 0 || theta == u64::MAX {
                    continue;
                }
                let psi = s.selectivity_at(ci, theta, n);
                let better = match best {
                    None => true,
                    Some((_, _, best_psi)) => psi < best_psi,
                };
                if better {
                    best = Some((cut, theta, psi));
                }
            }
            if let Some((cut, theta, psi)) = best {
                out.push(CandidateFilter {
                    prop_id,
                    attr_name,
                    selectivity: psi,
                    coverage: s.coverage_ge(cut),
                    value: FilterValue::DerivedGe { cut, theta },
                });
            }
        }
        _ => unreachable!("state/stats kinds are built in lockstep"),
    }
}

fn fresh_state(stats: &PropStats) -> PropState {
    match stats {
        PropStats::Categorical(_) => PropState::Cat {
            shared: Vec::new(),
            union: Vec::new(),
            all_single: true,
        },
        PropStats::Numeric(_) => PropState::Num {
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
            lo_count: 0,
            hi_count: 0,
            null_count: 0,
        },
        PropStats::Derived(_) => PropState::Derived { shared: Vec::new() },
        PropStats::DerivedNumeric(s) => PropState::DerivedNum {
            thetas: vec![u64::MAX; s.cutpoints.len()],
        },
    }
}

/// Fold one row into a property state, returning whether the state's
/// emitted filters may have changed (the snapshot-cache invalidation
/// signal; conservative — `true` never misses a real change).
fn add_row_to_state(
    state: &mut PropState,
    stats: &PropStats,
    row: RowId,
    first: bool,
    buf: &mut Vec<u64>,
) -> bool {
    if first {
        // The first row constrains everything: fold it in and report dirty.
        fold_first_row(state, stats, row, buf);
        return true;
    }
    match (state, stats) {
        (
            PropState::Cat {
                shared,
                union,
                all_single,
            },
            PropStats::Categorical(s),
        ) => {
            let vals = s.values_of(row);
            let before = shared.len();
            shared.retain(|v| vals.contains(v));
            let mut changed = shared.len() != before;
            if *all_single {
                if vals.len() == 1 {
                    if let Err(pos) = union.binary_search(&vals[0]) {
                        union.insert(pos, vals[0]);
                        changed = true;
                    }
                } else {
                    *all_single = false;
                    union.clear();
                    changed = true;
                }
            }
            changed
        }
        (
            PropState::Num {
                lo,
                hi,
                lo_count,
                hi_count,
                null_count,
            },
            PropStats::Numeric(s),
        ) => match s.value_of(row).filter(|x| !x.is_nan()) {
            None => {
                *null_count += 1;
                *null_count == 1 // only the first null flips validity
            }
            Some(x) => {
                let mut changed = false;
                if x < *lo {
                    *lo = x;
                    *lo_count = 0;
                    changed = true;
                }
                if x == *lo {
                    *lo_count += 1;
                }
                if x > *hi {
                    *hi = x;
                    *hi_count = 0;
                    changed = true;
                }
                if x == *hi {
                    *hi_count += 1;
                }
                changed
            }
        },
        (PropState::Derived { shared }, PropStats::Derived(s)) => {
            let before = shared.len();
            let mut changed = false;
            shared.retain_mut(|(v, theta, frac)| {
                let c = s.count_of(row, v);
                if c == 0 {
                    return false;
                }
                if c < *theta {
                    *theta = c;
                    changed = true;
                }
                let f = s.frac_of(row, v);
                if f < *frac {
                    *frac = f;
                    changed = true;
                }
                true
            });
            changed || shared.len() != before
        }
        (PropState::DerivedNum { thetas }, PropStats::DerivedNumeric(s)) => {
            // One descending walk per example (O(C + K)), not a binary
            // search per (example, cutpoint) pair.
            s.suffix_counts_into(row, buf);
            let mut changed = false;
            for (t, &c) in thetas.iter_mut().zip(buf.iter()) {
                if c < *t {
                    *t = c;
                    changed = true;
                }
            }
            changed
        }
        _ => unreachable!("state/stats kinds are built in lockstep"),
    }
}

/// Fold the first row into a fresh property state.
fn fold_first_row(state: &mut PropState, stats: &PropStats, row: RowId, buf: &mut Vec<u64>) {
    match (state, stats) {
        (
            PropState::Cat {
                shared,
                union,
                all_single,
            },
            PropStats::Categorical(s),
        ) => {
            let vals = s.values_of(row);
            shared.extend_from_slice(vals);
            shared.sort();
            if vals.len() == 1 {
                union.push(vals[0]);
            } else {
                *all_single = false;
            }
        }
        (
            PropState::Num {
                lo,
                hi,
                lo_count,
                hi_count,
                null_count,
            },
            PropStats::Numeric(s),
        ) => match s.value_of(row).filter(|x| !x.is_nan()) {
            None => *null_count += 1,
            Some(x) => {
                *lo = x;
                *hi = x;
                *lo_count = 1;
                *hi_count = 1;
            }
        },
        (PropState::Derived { shared }, PropStats::Derived(s)) => {
            // Entity runs are stored in the arena's cheap symbol-id order,
            // which depends on interner history; re-sort by `Value`'s total
            // order so emission stays canonical across processes.
            *shared = s
                .counts_of(row)
                .iter()
                .map(|&(v, c)| (v, c, s.frac_of(row, &v)))
                .collect();
            shared.sort_by_key(|e| e.0);
        }
        (PropState::DerivedNum { thetas }, PropStats::DerivedNumeric(s)) => {
            s.suffix_counts_into(row, buf);
            for (t, &c) in thetas.iter_mut().zip(buf.iter()) {
                *t = (*t).min(c);
            }
        }
        _ => unreachable!("state/stats kinds are built in lockstep"),
    }
}

/// Derive the candidate filter set Φ for `examples` (entity row ids).
///
/// Each returned filter is valid (every example satisfies it) and minimal
/// (tightest bounds / maximal θ), per Definitions 3.1–3.2. This is the
/// one-shot form: it folds the rows through a fresh [`ContextState`], so it
/// agrees with the incremental session path by construction.
pub fn discover_contexts(
    entity: &EntityProps,
    examples: &[RowId],
    params: &SquidParams,
) -> Vec<CandidateFilter> {
    if examples.is_empty() {
        return Vec::new();
    }
    let mut state = ContextState::new(entity);
    for &row in examples {
        state.add_row(entity, row);
    }
    state.candidates(entity, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use squid_adb::{test_fixtures, ADb};

    fn setup() -> (ADb, Vec<RowId>) {
        let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
        // Examples: Jim Carrey (id 1) and Eddie Murphy (id 2).
        let rows = {
            let e = adb.entity("person").unwrap();
            vec![e.pk_to_row[&1], e.pk_to_row[&2]]
        };
        (adb, rows)
    }

    fn find<'a>(filters: &'a [CandidateFilter], attr: &str) -> Option<&'a CandidateFilter> {
        filters.iter().find(|f| f.attr_name == attr)
    }

    #[test]
    fn discovers_shared_basic_categorical() {
        let (adb, rows) = setup();
        let e = adb.entity("person").unwrap();
        let filters = discover_contexts(e, &rows, &SquidParams::default());
        let gender = find(&filters, "gender").expect("gender context");
        assert_eq!(gender.value, FilterValue::CatEq(Value::text("Male")));
        assert_eq!(gender.selectivity, 0.75); // 6 of 8 persons are Male
        let country = find(&filters, "country").expect("country context");
        assert_eq!(country.value, FilterValue::CatEq(Value::text("USA")));
    }

    #[test]
    fn discovers_numeric_range() {
        let (adb, rows) = setup();
        let e = adb.entity("person").unwrap();
        let filters = discover_contexts(e, &rows, &SquidParams::default());
        let by = find(&filters, "birth_year").expect("birth_year context");
        assert_eq!(by.value, FilterValue::NumRange(1961.0, 1962.0));
        assert_eq!(by.selectivity, 0.25); // Jim + Eddie only
    }

    #[test]
    fn discovers_derived_genre_counts_with_min_theta() {
        let (adb, rows) = setup();
        let e = adb.entity("person").unwrap();
        let filters = discover_contexts(e, &rows, &SquidParams::default());
        let comedy = filters
            .iter()
            .find(|f| {
                f.attr_name == "genre.name"
                    && matches!(&f.value, FilterValue::DerivedEq { value, .. } if value == &Value::text("Comedy"))
            })
            .expect("comedy derived context");
        // Jim has 5 comedies, Eddie 4 → θ = min = 4.
        assert_eq!(
            comedy.value,
            FilterValue::DerivedEq {
                value: Value::text("Comedy"),
                theta: 4
            }
        );
    }

    #[test]
    fn no_context_for_unshared_property() {
        let (adb, _) = setup();
        let e = adb.entity("person").unwrap();
        // Jim Carrey (USA) + Arnold (Austria): country not shared.
        let rows = vec![e.pk_to_row[&1], e.pk_to_row[&5]];
        let filters = discover_contexts(e, &rows, &SquidParams::default());
        assert!(find(&filters, "country").is_none());
    }

    #[test]
    fn disjunction_when_enabled() {
        let (adb, _) = setup();
        let e = adb.entity("person").unwrap();
        let rows = vec![e.pk_to_row[&1], e.pk_to_row[&5]];
        let params = SquidParams {
            allow_disjunction: true,
            ..SquidParams::default()
        };
        let filters = discover_contexts(e, &rows, &params);
        let country = find(&filters, "country").expect("IN filter");
        assert!(matches!(&country.value, FilterValue::CatIn(vs) if vs.len() == 2));
    }

    #[test]
    fn normalized_mode_emits_fractions() {
        let (adb, rows) = setup();
        let e = adb.entity("person").unwrap();
        let filters = discover_contexts(e, &rows, &SquidParams::normalized());
        let comedy = filters
            .iter()
            .find(|f| {
                f.attr_name == "genre.name"
                    && matches!(&f.value, FilterValue::DerivedFrac { value, .. } if value == &Value::text("Comedy"))
            })
            .expect("normalized comedy context");
        let FilterValue::DerivedFrac {
            frac, raw_theta, ..
        } = &comedy.value
        else {
            unreachable!()
        };
        assert!(*frac > 0.9); // both are pure comedy actors here
        assert_eq!(*raw_theta, 4);
    }

    #[test]
    fn derived_numeric_picks_most_selective_cut() {
        let (adb, rows) = setup();
        let e = adb.entity("person").unwrap();
        let filters = discover_contexts(e, &rows, &SquidParams::default());
        let year = find(&filters, "movie.year").expect("year suffix context");
        let FilterValue::DerivedGe { theta, .. } = &year.value else {
            panic!("expected DerivedGe, got {:?}", year.value)
        };
        assert!(*theta >= 1);
        assert!(year.selectivity > 0.0 && year.selectivity <= 1.0);
    }

    #[test]
    fn all_candidates_are_valid_on_examples() {
        let (adb, rows) = setup();
        let e = adb.entity("person").unwrap();
        let filters = discover_contexts(e, &rows, &SquidParams::default());
        assert!(!filters.is_empty());
        for f in &filters {
            let prop = e.property(f.prop_id).unwrap();
            for &r in &rows {
                assert!(
                    f.matches_row(prop, r),
                    "filter {} must match example row {r}",
                    f.describe()
                );
            }
        }
    }

    #[test]
    fn empty_examples_yield_no_filters() {
        let (adb, _) = setup();
        let e = adb.entity("person").unwrap();
        assert!(discover_contexts(e, &[], &SquidParams::default()).is_empty());
    }

    /// Incremental adds must match the one-shot fold for every prefix, and
    /// additions must be order-independent.
    #[test]
    fn incremental_adds_match_one_shot() {
        let (adb, _) = setup();
        let e = adb.entity("person").unwrap();
        let params = SquidParams {
            allow_disjunction: true,
            ..SquidParams::default()
        };
        let rows: Vec<RowId> = (0..e.n).collect();
        let mut state = ContextState::new(e);
        for k in 0..rows.len() {
            state.add_row(e, rows[k]);
            let inc: Vec<String> = state
                .candidates(e, &params)
                .iter()
                .map(|f| format!("{} {:.6}", f.describe(), f.selectivity))
                .collect();
            let one: Vec<String> = discover_contexts(e, &rows[..=k], &params)
                .iter()
                .map(|f| format!("{} {:.6}", f.describe(), f.selectivity))
                .collect();
            assert_eq!(inc, one, "prefix of {} rows", k + 1);
        }
        // Reverse insertion order: same snapshot.
        let mut rev = ContextState::new(e);
        for &r in rows.iter().rev() {
            rev.add_row(e, r);
        }
        let a: Vec<String> = state
            .candidates(e, &params)
            .iter()
            .map(|f| f.describe())
            .collect();
        let b: Vec<String> = rev
            .candidates(e, &params)
            .iter()
            .map(|f| f.describe())
            .collect();
        assert_eq!(a, b);
    }

    /// remove_row must restore exactly the state of a fresh fold over the
    /// remaining rows, for every removal target (endpoint, interior, null).
    #[test]
    fn removal_matches_fresh_fold() {
        let (adb, _) = setup();
        let e = adb.entity("person").unwrap();
        let params = SquidParams::default();
        let rows: Vec<RowId> = (0..e.n).collect();
        for &gone in &rows {
            let mut state = ContextState::new(e);
            for &r in &rows {
                state.add_row(e, r);
            }
            state.remove_row(e, gone);
            let remaining: Vec<RowId> = rows.iter().copied().filter(|&r| r != gone).collect();
            let direct: Vec<String> = discover_contexts(e, &remaining, &params)
                .iter()
                .map(|f| format!("{} {:.6}", f.describe(), f.selectivity))
                .collect();
            let incremental: Vec<String> = state
                .candidates(e, &params)
                .iter()
                .map(|f| format!("{} {:.6}", f.describe(), f.selectivity))
                .collect();
            assert_eq!(incremental, direct, "after removing row {gone}");
            assert_eq!(state.rows(), remaining.as_slice());
        }
    }

    #[test]
    fn duplicate_adds_are_ignored() {
        let (adb, rows) = setup();
        let e = adb.entity("person").unwrap();
        let mut state = ContextState::new(e);
        state.add_row(e, rows[0]);
        state.add_row(e, rows[0]);
        assert_eq!(state.rows().len(), 1);
        state.add_row(e, rows[1]);
        let params = SquidParams::default();
        let a: Vec<String> = state
            .candidates(e, &params)
            .iter()
            .map(|f| f.describe())
            .collect();
        let b: Vec<String> = discover_contexts(e, &rows, &params)
            .iter()
            .map(|f| f.describe())
            .collect();
        assert_eq!(a, b);
    }
}
