//! Semantic context discovery (paper Section 6.1.2): given the resolved
//! example entities, derive all *minimal valid* candidate filters Φ from the
//! αDB's precomputed properties.

use squid_adb::{EntityProps, PropStats};
use squid_relation::{RowId, Value};

use crate::filter::{CandidateFilter, FilterValue};
use crate::params::SquidParams;

/// Derive the candidate filter set Φ for `examples` (entity row ids).
///
/// Each returned filter is valid (every example satisfies it) and minimal
/// (tightest bounds / maximal θ), per Definitions 3.1–3.2.
pub fn discover_contexts(
    entity: &EntityProps,
    examples: &[RowId],
    params: &SquidParams,
) -> Vec<CandidateFilter> {
    let mut out = Vec::new();
    if examples.is_empty() {
        return out;
    }
    let n = entity.n;
    for prop in &entity.props {
        match &prop.stats {
            PropStats::Categorical(s) => {
                // Values shared by every example.
                let mut shared: Vec<Value> = s.values_of(examples[0]).to_vec();
                for &row in &examples[1..] {
                    let vals = s.values_of(row);
                    shared.retain(|v| vals.contains(v));
                    if shared.is_empty() {
                        break;
                    }
                }
                if !shared.is_empty() {
                    for v in shared {
                        out.push(CandidateFilter {
                            prop_id: prop.def.id.clone(),
                            attr_name: prop.def.attr_name.clone(),
                            selectivity: s.selectivity_eq(&v, n),
                            coverage: s.coverage_eq(),
                            value: FilterValue::CatEq(v),
                        });
                    }
                } else if params.allow_disjunction {
                    // Footnote 7: single-valued categorical attributes may
                    // form a small disjunction covering all examples.
                    let mut union: Vec<Value> = Vec::new();
                    let mut ok = true;
                    for &row in examples {
                        let vals = s.values_of(row);
                        if vals.len() != 1 {
                            ok = false;
                            break;
                        }
                        if !union.contains(&vals[0]) {
                            union.push(vals[0]);
                        }
                    }
                    if ok && union.len() >= 2 && union.len() <= params.disjunction_limit {
                        union.sort();
                        out.push(CandidateFilter {
                            prop_id: prop.def.id.clone(),
                            attr_name: prop.def.attr_name.clone(),
                            selectivity: s.selectivity_in(&union, n),
                            coverage: s.coverage_in(union.len()),
                            value: FilterValue::CatIn(union),
                        });
                    }
                }
            }
            PropStats::Numeric(s) => {
                // Tightest range [vmin, vmax]; requires every example to
                // have a value (validity).
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                let mut all = true;
                for &row in examples {
                    match s.value_of(row) {
                        Some(x) => {
                            lo = lo.min(x);
                            hi = hi.max(x);
                        }
                        None => {
                            all = false;
                            break;
                        }
                    }
                }
                if all && lo.is_finite() {
                    out.push(CandidateFilter {
                        prop_id: prop.def.id.clone(),
                        attr_name: prop.def.attr_name.clone(),
                        selectivity: s.selectivity_range(lo, hi, n),
                        coverage: s.coverage_range(lo, hi),
                        value: FilterValue::NumRange(lo, hi),
                    });
                }
            }
            PropStats::Derived(s) => {
                // Values every example is associated with (count > 0);
                // θ = minimum association strength (Section 6.1.2).
                let Some(first) = s.counts_of(examples[0]) else {
                    continue;
                };
                let mut shared: Vec<(Value, u64, f64)> = first
                    .iter()
                    .map(|(v, &c)| (*v, c, s.frac_of(examples[0], v)))
                    .collect();
                for &row in &examples[1..] {
                    shared.retain_mut(|(v, theta, frac)| {
                        let c = s.count_of(row, v);
                        if c == 0 {
                            return false;
                        }
                        *theta = (*theta).min(c);
                        *frac = frac.min(s.frac_of(row, v));
                        true
                    });
                    if shared.is_empty() {
                        break;
                    }
                }
                shared.sort_by_key(|a| a.0);
                for (v, theta, frac) in shared {
                    let (value, selectivity) = if params.normalize_association {
                        (
                            FilterValue::DerivedFrac {
                                value: v,
                                frac,
                                raw_theta: theta,
                            },
                            s.selectivity_frac(&v, frac, n),
                        )
                    } else {
                        (
                            FilterValue::DerivedEq { value: v, theta },
                            s.selectivity(&v, theta, n),
                        )
                    };
                    out.push(CandidateFilter {
                        prop_id: prop.def.id.clone(),
                        attr_name: prop.def.attr_name.clone(),
                        selectivity,
                        coverage: s.coverage_eq(),
                        value,
                    });
                }
            }
            PropStats::DerivedNumeric(s) => {
                // Range filter `attr ≥ c` with θ = min suffix count. Every
                // cutpoint yields a valid filter; pick the most surprising
                // (minimum selectivity) point on the (c, θ(c)) frontier —
                // abduction favors exactly that one. Suffix counts come
                // from one descending walk per example (O(C + K)), not a
                // binary search per (example, cutpoint) pair.
                let mut thetas: Vec<u64> = vec![u64::MAX; s.cutpoints.len()];
                let mut buf: Vec<u64> = Vec::new();
                for &r in examples {
                    s.suffix_counts_into(r, &mut buf);
                    for (t, &c) in thetas.iter_mut().zip(&buf) {
                        *t = (*t).min(c);
                    }
                }
                let mut best: Option<(f64, u64, f64)> = None; // (cut, θ, ψ)
                for (ci, &cut) in s.cutpoints.iter().enumerate() {
                    let theta = thetas[ci];
                    if theta == 0 || theta == u64::MAX {
                        continue;
                    }
                    let psi = s.selectivity_ge(cut, theta, n);
                    let better = match best {
                        None => true,
                        Some((_, _, best_psi)) => psi < best_psi,
                    };
                    if better {
                        best = Some((cut, theta, psi));
                    }
                }
                if let Some((cut, theta, psi)) = best {
                    out.push(CandidateFilter {
                        prop_id: prop.def.id.clone(),
                        attr_name: prop.def.attr_name.clone(),
                        selectivity: psi,
                        coverage: s.coverage_ge(cut),
                        value: FilterValue::DerivedGe { cut, theta },
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use squid_adb::{test_fixtures, ADb};

    fn setup() -> (ADb, Vec<RowId>) {
        let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
        // Examples: Jim Carrey (id 1) and Eddie Murphy (id 2).
        let rows = {
            let e = adb.entity("person").unwrap();
            vec![e.pk_to_row[&1], e.pk_to_row[&2]]
        };
        (adb, rows)
    }

    fn find<'a>(filters: &'a [CandidateFilter], attr: &str) -> Option<&'a CandidateFilter> {
        filters.iter().find(|f| f.attr_name == attr)
    }

    #[test]
    fn discovers_shared_basic_categorical() {
        let (adb, rows) = setup();
        let e = adb.entity("person").unwrap();
        let filters = discover_contexts(e, &rows, &SquidParams::default());
        let gender = find(&filters, "gender").expect("gender context");
        assert_eq!(gender.value, FilterValue::CatEq(Value::text("Male")));
        assert_eq!(gender.selectivity, 0.75); // 6 of 8 persons are Male
        let country = find(&filters, "country").expect("country context");
        assert_eq!(country.value, FilterValue::CatEq(Value::text("USA")));
    }

    #[test]
    fn discovers_numeric_range() {
        let (adb, rows) = setup();
        let e = adb.entity("person").unwrap();
        let filters = discover_contexts(e, &rows, &SquidParams::default());
        let by = find(&filters, "birth_year").expect("birth_year context");
        assert_eq!(by.value, FilterValue::NumRange(1961.0, 1962.0));
        assert_eq!(by.selectivity, 0.25); // Jim + Eddie only
    }

    #[test]
    fn discovers_derived_genre_counts_with_min_theta() {
        let (adb, rows) = setup();
        let e = adb.entity("person").unwrap();
        let filters = discover_contexts(e, &rows, &SquidParams::default());
        let comedy = filters
            .iter()
            .find(|f| {
                f.attr_name == "genre.name"
                    && matches!(&f.value, FilterValue::DerivedEq { value, .. } if value == &Value::text("Comedy"))
            })
            .expect("comedy derived context");
        // Jim has 5 comedies, Eddie 4 → θ = min = 4.
        assert_eq!(
            comedy.value,
            FilterValue::DerivedEq {
                value: Value::text("Comedy"),
                theta: 4
            }
        );
    }

    #[test]
    fn no_context_for_unshared_property() {
        let (adb, _) = setup();
        let e = adb.entity("person").unwrap();
        // Jim Carrey (USA) + Arnold (Austria): country not shared.
        let rows = vec![e.pk_to_row[&1], e.pk_to_row[&5]];
        let filters = discover_contexts(e, &rows, &SquidParams::default());
        assert!(find(&filters, "country").is_none());
    }

    #[test]
    fn disjunction_when_enabled() {
        let (adb, _) = setup();
        let e = adb.entity("person").unwrap();
        let rows = vec![e.pk_to_row[&1], e.pk_to_row[&5]];
        let params = SquidParams {
            allow_disjunction: true,
            ..SquidParams::default()
        };
        let filters = discover_contexts(e, &rows, &params);
        let country = find(&filters, "country").expect("IN filter");
        assert!(matches!(&country.value, FilterValue::CatIn(vs) if vs.len() == 2));
    }

    #[test]
    fn normalized_mode_emits_fractions() {
        let (adb, rows) = setup();
        let e = adb.entity("person").unwrap();
        let filters = discover_contexts(e, &rows, &SquidParams::normalized());
        let comedy = filters
            .iter()
            .find(|f| {
                f.attr_name == "genre.name"
                    && matches!(&f.value, FilterValue::DerivedFrac { value, .. } if value == &Value::text("Comedy"))
            })
            .expect("normalized comedy context");
        let FilterValue::DerivedFrac {
            frac, raw_theta, ..
        } = &comedy.value
        else {
            unreachable!()
        };
        assert!(*frac > 0.9); // both are pure comedy actors here
        assert_eq!(*raw_theta, 4);
    }

    #[test]
    fn derived_numeric_picks_most_selective_cut() {
        let (adb, rows) = setup();
        let e = adb.entity("person").unwrap();
        let filters = discover_contexts(e, &rows, &SquidParams::default());
        let year = find(&filters, "movie.year").expect("year suffix context");
        let FilterValue::DerivedGe { theta, .. } = &year.value else {
            panic!("expected DerivedGe, got {:?}", year.value)
        };
        assert!(*theta >= 1);
        assert!(year.selectivity > 0.0 && year.selectivity <= 1.0);
    }

    #[test]
    fn all_candidates_are_valid_on_examples() {
        let (adb, rows) = setup();
        let e = adb.entity("person").unwrap();
        let filters = discover_contexts(e, &rows, &SquidParams::default());
        assert!(!filters.is_empty());
        for f in &filters {
            let prop = e.property(&f.prop_id).unwrap();
            for &r in &rows {
                assert!(
                    f.matches_row(prop, r),
                    "filter {} must match example row {r}",
                    f.describe()
                );
            }
        }
    }

    #[test]
    fn empty_examples_yield_no_filters() {
        let (adb, _) = setup();
        let e = adb.entity("person").unwrap();
        assert!(discover_contexts(e, &[], &SquidParams::default()).is_empty());
    }
}
