//! Concurrent session hosting: many interactive [`SquidSession`]s over one
//! shared, immutable αDB.
//!
//! The [`SessionManager`] is the serving seam for RPC/HTTP frontends: the
//! αDB lives in a single [`Arc`] that every session reads without any
//! synchronization (it is immutable after build), the session registry is
//! sharded 16 ways so unrelated sessions never contend on the same lock,
//! and idle sessions are evicted after a configurable TTL. Within a shard,
//! operating on a session holds only a brief read lock to clone the entry
//! handle — long-running discovery work happens outside the registry locks,
//! under the session's own mutex.
//!
//! ```
//! use std::sync::Arc;
//! use squid_adb::{test_fixtures, ADb};
//! use squid_core::SessionManager;
//!
//! let adb = Arc::new(ADb::build(&test_fixtures::mini_imdb()).unwrap());
//! let manager = SessionManager::new(adb);
//! let id = manager.create_session();
//! let rows = manager
//!     .with_session(id, |s| {
//!         s.add_example("Jim Carrey")?;
//!         s.add_example("Eddie Murphy")?;
//!         Ok(s.discovery().unwrap().rows.len())
//!     })
//!     .unwrap();
//! assert!(rows >= 2);
//! manager.end_session(id);
//! ```

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

use squid_adb::{ADb, SharedCacheStats, SharedFilterSetCache};
use squid_relation::FxHashMap;

use crate::error::SquidError;
use crate::journal::{self, CompactStats, FsyncPolicy, Journal, SessionOp};
use crate::params::SquidParams;
use crate::session::{DiscoveryDelta, SquidSession};

/// Opaque session identifier handed out by [`SessionManager::create_session`].
pub type SessionId = u64;

const SHARDS: usize = 16;

/// Default fleet-wide resident-byte bound of the manager's
/// [`SharedFilterSetCache`] (64 MiB — generous for bitmap row sets, which
/// cost one bit per entity row per cached filter).
pub const DEFAULT_SHARED_CACHE_BYTES: usize = 64 << 20;

struct Entry {
    session: Mutex<SquidSession<'static>>,
    /// Milliseconds since the manager's epoch at last use (atomic so
    /// touching a session never takes a write lock).
    last_used_ms: AtomicU64,
}

/// What a journal recovery actually did (see [`SessionManager::recover`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverStats {
    /// Sessions created during replay (`Create` records).
    pub sessions_replayed: usize,
    /// Records applied successfully.
    pub records_applied: u64,
    /// CRC-valid records whose replay failed (e.g. they referenced a
    /// session evicted by an `End` later in real time); skipped.
    pub records_failed: u64,
    /// Records skipped because their sequence number was already covered
    /// by the session's cursor (duplicates from the compaction/append
    /// race; replay is idempotent, so these are expected, not damage).
    pub records_skipped: u64,
    /// Torn/corrupt tail bytes truncated from the journal.
    pub bytes_truncated: u64,
    /// Sessions live after replay (created and never ended).
    pub live_sessions: usize,
}

/// What one [`SessionManager::apply_replicated`] batch did — the standby
/// side's ledger of a replication stream segment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicatedStats {
    /// Records applied (and locally re-journaled).
    pub records_applied: u64,
    /// Records already covered by a session cursor or a skipped snapshot
    /// section — the idempotent-overlap case, expected, not damage.
    pub records_skipped: u64,
    /// Records whose apply failed; skipped, mirroring recovery.
    pub records_failed: u64,
    /// Sessions newly installed from `Create` records.
    pub sessions_installed: u64,
    /// Stale sessions rebuilt from a re-snapshot's section (this replica
    /// lagged across a primary compaction).
    pub sessions_reinstalled: u64,
    /// Sessions removed by `End` records.
    pub sessions_ended: u64,
}

/// The attached journal plus its replay-debt bookkeeping (one mutex: the
/// appender and the counters must move together).
struct JournalState {
    journal: Journal,
    /// Records the current file began with (recovery replay prefix or the
    /// last compaction snapshot) — an estimate of live-state size.
    base_records: u64,
    /// Records appended since open/recover/compaction: the replay tail
    /// that full recovery would have to re-execute.
    tail_records: u64,
    /// Compactions performed over this journal's lifetime.
    compactions: u64,
    /// What the most recent compaction did.
    last_compaction: Option<CompactStats>,
    /// File-generation counter: bumped every time compaction swaps a
    /// rewritten file under the journal path. A reader streaming the file
    /// by byte offset ([`crate::journal::JournalTail`]) samples this
    /// around each read — if it moved, the bytes may belong to the new
    /// generation and the stream must re-snapshot from offset 0.
    epoch: u64,
}

/// Point-in-time journal health for the `stats` surfaces (REPL and the
/// serving `stats`/`health` verbs): how much replay debt has accumulated
/// and what the last compaction bought.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JournalStats {
    /// The journal file's path.
    pub path: String,
    /// Journal file size in bytes.
    pub bytes: u64,
    /// Records the file began with (snapshot/replay prefix).
    pub base_records: u64,
    /// Records appended since (the replay tail).
    pub tail_records: u64,
    /// Compactions performed so far.
    pub compactions: u64,
    /// What the most recent compaction did, if any.
    pub last_compaction: Option<CompactStats>,
    /// File-generation counter (bumps on every compaction swap); byte
    /// offsets into the journal are only comparable within one epoch.
    pub epoch: u64,
}

/// Outcome of a sequenced mutation ([`SessionManager::apply_op_at`]).
#[derive(Debug)]
pub enum SeqOutcome {
    /// The operation was applied and journaled; carries the delta.
    Applied(Option<DiscoveryDelta>),
    /// The sequence number was at or below the session's cursor: the
    /// operation was already applied (a retried turn) and was not re-run.
    Duplicate,
}

/// Hosts many concurrent [`SquidSession`]s over one shared αDB (see the
/// module docs for the locking story).
pub struct SessionManager {
    adb: Arc<ADb>,
    params: SquidParams,
    ttl: Option<Duration>,
    epoch: Instant,
    next_id: AtomicU64,
    shards: Vec<RwLock<FxHashMap<SessionId, Arc<Entry>>>>,
    /// Fleet-wide evaluation cache every hosted session consults after its
    /// local cache misses (`None` when disabled).
    shared_cache: Option<Arc<SharedFilterSetCache>>,
    /// Per-session local evaluation-cache byte bound (`None` = unbounded).
    session_cache_bytes: Option<usize>,
    /// Append-only durability journal plus its replay-debt counters
    /// (`None` until attached/recovered).
    journal: Mutex<Option<JournalState>>,
    /// Auto-compaction floor: compact once the appended tail reaches
    /// `max(this, base_records)` records (`None` = manual only).
    auto_compact: Option<u64>,
    /// Serializes [`SessionManager::compact_journal`] runs: two racing
    /// compactions could otherwise rewrite the file from the staler of
    /// two session snapshots, dropping the fresher one's records.
    compact_lock: Mutex<()>,
    /// What the last [`SessionManager::recover`] call did.
    recover_stats: Mutex<Option<RecoverStats>>,
    /// Journal appends that failed: best-effort create/end records, plus
    /// turn appends that fail-stopped their session (see
    /// [`SessionManager::apply_op`]).
    journal_write_errors: AtomicU64,
}

/// Recover a lock guard from a poisoned registry lock: no user code ever
/// runs while a *registry* lock is held (shards map ids to `Arc<Entry>`
/// handles; session turns run under the entry's own mutex), so poisoning
/// here only means some unrelated thread panicked — the map itself is
/// structurally intact and siblings must keep working.
fn recover_guard<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl SessionManager {
    /// New manager with default parameters and no TTL eviction. The
    /// fleet-wide shared evaluation cache is on, bounded by
    /// [`DEFAULT_SHARED_CACHE_BYTES`].
    pub fn new(adb: Arc<ADb>) -> SessionManager {
        Self::with_params(adb, SquidParams::default())
    }

    /// New manager whose sessions start from `params`.
    pub fn with_params(adb: Arc<ADb>, params: SquidParams) -> SessionManager {
        let shared_cache = Some(Arc::new(SharedFilterSetCache::new(
            adb.generation,
            DEFAULT_SHARED_CACHE_BYTES,
        )));
        SessionManager {
            adb,
            params,
            ttl: None,
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            shards: (0..SHARDS)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            shared_cache,
            session_cache_bytes: None,
            journal: Mutex::new(None),
            auto_compact: None,
            compact_lock: Mutex::new(()),
            recover_stats: Mutex::new(None),
            journal_write_errors: AtomicU64::new(0),
        }
    }

    /// Evict sessions idle longer than `ttl` (checked lazily on access and
    /// by [`evict_expired`](Self::evict_expired)).
    pub fn with_ttl(mut self, ttl: Duration) -> SessionManager {
        self.ttl = Some(ttl);
        self
    }

    /// Auto-compact the journal once the appended tail reaches
    /// `max(min_tail, base_records)` records — i.e. when replaying the
    /// tail would cost at least as much as replaying the last snapshot,
    /// and at least `min_tail` either way. Doubling-style trigger, so
    /// compaction work is amortized O(1) per append.
    pub fn with_auto_compact(mut self, min_tail: u64) -> SessionManager {
        self.auto_compact = Some(min_tail.max(1));
        self
    }

    /// Replace the fleet-wide shared evaluation cache with one bounded by
    /// `max_resident_bytes` (applies to sessions created afterwards).
    pub fn with_shared_cache_bytes(mut self, max_resident_bytes: usize) -> SessionManager {
        self.shared_cache = Some(Arc::new(SharedFilterSetCache::new(
            self.adb.generation,
            max_resident_bytes,
        )));
        self
    }

    /// Disable the fleet-wide shared evaluation cache: sessions created
    /// afterwards keep only their local caches (the pre-shared behavior,
    /// and the A/B baseline in the `multi_session` bench).
    pub fn without_shared_cache(mut self) -> SessionManager {
        self.shared_cache = None;
        self
    }

    /// Bound each hosted session's *local* evaluation cache to
    /// `max_resident_bytes` (applies to sessions created afterwards).
    pub fn with_session_cache_bytes(mut self, max_resident_bytes: usize) -> SessionManager {
        self.session_cache_bytes = Some(max_resident_bytes);
        self
    }

    /// The shared αDB.
    pub fn adb(&self) -> &Arc<ADb> {
        &self.adb
    }

    /// Parameters new sessions start from.
    pub fn params(&self) -> &SquidParams {
        &self.params
    }

    /// The fleet-wide shared evaluation cache, when enabled (hand this to
    /// standalone sessions or one-shot [`Squid`](crate::Squid) fleets that
    /// should share bitmaps with the hosted sessions).
    pub fn shared_cache(&self) -> Option<&Arc<SharedFilterSetCache>> {
        self.shared_cache.as_ref()
    }

    /// Aggregate counters of the shared evaluation cache (`None` when the
    /// shared cache is disabled): hits/misses, evictions, and total plus
    /// per-shard resident bytes.
    pub fn shared_cache_stats(&self) -> Option<SharedCacheStats> {
        self.shared_cache.as_ref().map(|c| c.stats())
    }

    fn shard(&self, id: SessionId) -> &RwLock<FxHashMap<SessionId, Arc<Entry>>> {
        &self.shards[(id as usize) % SHARDS]
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Open a new session with the manager's default parameters.
    pub fn create_session(&self) -> SessionId {
        self.create_session_with_params(self.params.clone())
    }

    /// Open a new session with explicit parameters.
    pub fn create_session_with_params(&self, params: SquidParams) -> SessionId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.install_session(id, params);
        // Best-effort journaling on the infallible create path; failures
        // are counted (surfaced via `journal_write_errors`) and the next
        // fallible `apply_op` on this journal will report the condition.
        if self.journal_append(id, 0, &SessionOp::Create).is_err() {
            self.journal_write_errors.fetch_add(1, Ordering::Relaxed);
        }
        id
    }

    /// Install a session under a fixed id (the create path minus id
    /// allocation and journaling — also the journal-replay path).
    fn install_session(&self, id: SessionId, params: SquidParams) {
        let mut session = SquidSession::shared_with_params(Arc::clone(&self.adb), params);
        if let Some(shared) = &self.shared_cache {
            session.attach_shared_cache(Arc::clone(shared));
        }
        if let Some(bytes) = self.session_cache_bytes {
            session.set_cache_budget(bytes);
        }
        let entry = Arc::new(Entry {
            session: Mutex::new(session),
            last_used_ms: AtomicU64::new(self.now_ms()),
        });
        recover_guard(self.shard(id).write()).insert(id, entry);
    }

    /// Run `f` against session `id`. The registry lock is held only long
    /// enough to clone the entry handle; `f` runs under the session's own
    /// mutex. Expired sessions are evicted and reported as unknown.
    pub fn with_session<T>(
        &self,
        id: SessionId,
        f: impl FnOnce(&mut SquidSession<'static>) -> Result<T, SquidError>,
    ) -> Result<T, SquidError> {
        let entry = {
            let shard = recover_guard(self.shard(id).read());
            shard.get(&id).cloned()
        };
        let Some(entry) = entry else {
            return Err(SquidError::UnknownSession { id });
        };
        let now = self.now_ms();
        if let Some(ttl) = self.ttl {
            let cutoff = ttl.as_millis() as u64;
            if now.saturating_sub(entry.last_used_ms.load(Ordering::Relaxed)) > cutoff {
                // Re-check under the write lock: a concurrent caller may
                // have renewed the session between our read and now, and
                // evicting a just-renewed session would drop live state.
                let mut shard = recover_guard(self.shard(id).write());
                let still_stale = shard.get(&id).is_some_and(|e| {
                    now.saturating_sub(e.last_used_ms.load(Ordering::Relaxed)) > cutoff
                });
                if still_stale {
                    shard.remove(&id);
                }
                if still_stale || !shard.contains_key(&id) {
                    return Err(SquidError::UnknownSession { id });
                }
            }
        }
        entry.last_used_ms.store(now, Ordering::Relaxed);
        let result = {
            let mut session = match entry.session.lock() {
                Ok(guard) => guard,
                // This session's own mutex is poisoned: a previous turn
                // panicked mid-mutation, so its state may be half-applied
                // (unlike the registry shards, real work runs under this
                // lock). Evict it — siblings are untouched, and the caller
                // sees the same error as for an expired session.
                Err(_) => {
                    recover_guard(self.shard(id).write()).remove(&id);
                    return Err(SquidError::UnknownSession { id });
                }
            };
            f(&mut session)
        };
        // Stamp again after `f`: a long-running operation must not leave
        // the session looking idle for its whole duration (a sweep could
        // otherwise evict a session that is actively in use).
        entry.last_used_ms.store(self.now_ms(), Ordering::Relaxed);
        result
    }

    /// Close a session. Returns whether it existed. Journal write failures
    /// are swallowed into [`SessionManager::journal_write_errors`]; callers
    /// that must surface them (the serving frontend) use
    /// [`SessionManager::close_session`] instead.
    pub fn end_session(&self, id: SessionId) -> bool {
        match self.close_session(id) {
            Ok(()) => true,
            Err(SquidError::UnknownSession { .. }) => false,
            // The session is already gone; only the journal record failed.
            Err(_) => {
                self.journal_write_errors.fetch_add(1, Ordering::Relaxed);
                true
            }
        }
    }

    /// Close a session and journal the close, surfacing failures: an
    /// unknown id is [`SquidError::UnknownSession`], and a failed journal
    /// append (the session itself is still removed) propagates so the
    /// caller can report that durability was not achieved.
    pub fn close_session(&self, id: SessionId) -> Result<(), SquidError> {
        let existed = recover_guard(self.shard(id).write()).remove(&id).is_some();
        if !existed {
            return Err(SquidError::UnknownSession { id });
        }
        self.journal_append(id, 0, &SessionOp::End).map(|_| ())
    }

    /// Sweep every shard, removing sessions idle past the TTL. Returns the
    /// number evicted. No-op without a TTL.
    ///
    /// When sessions were evicted, the shared evaluation cache is aged one
    /// round ([`SharedFilterSetCache::decay`]): shared-cache LRU priority
    /// is touch-on-use only, so bitmaps a dead session published but
    /// nobody ever looked up lose their residency protection instead of
    /// staying pinned fleet-wide.
    pub fn evict_expired(&self) -> usize {
        let Some(ttl) = self.ttl else {
            return 0;
        };
        let cutoff_ms = ttl.as_millis() as u64;
        let now = self.now_ms();
        let mut evicted = 0;
        for shard in &self.shards {
            let mut shard = recover_guard(shard.write());
            let before = shard.len();
            shard.retain(|_, e| {
                now.saturating_sub(e.last_used_ms.load(Ordering::Relaxed)) <= cutoff_ms
            });
            evicted += before - shard.len();
        }
        if evicted > 0 {
            if let Some(shared) = &self.shared_cache {
                shared.decay();
            }
        }
        evicted
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| recover_guard(s.read()).len())
            .sum()
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of live sessions — [`SessionManager::len`] under the name
    /// the serving frontend's admission control reads it by.
    pub fn session_count(&self) -> usize {
        self.len()
    }

    /// Whether `id` is currently hosted (registry membership only; does
    /// not touch the idle clock or run TTL checks). Frontends use this to
    /// validate an id before allocating per-session serving state.
    pub fn contains_session(&self, id: SessionId) -> bool {
        recover_guard(self.shard(id).read()).contains_key(&id)
    }

    /// Ids of every live session, ascending — [`SessionManager::session_ids`]
    /// under the name the serving `stats` verb reports it by.
    pub fn active_ids(&self) -> Vec<SessionId> {
        self.session_ids()
    }

    /// Ids of every live session, ascending. Operator tooling uses this
    /// after [`SessionManager::recover`] to resume the newest session.
    pub fn session_ids(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self
            .shards
            .iter()
            .flat_map(|s| recover_guard(s.read()).keys().copied().collect::<Vec<_>>())
            .collect();
        ids.sort_unstable();
        ids
    }

    // -- durability ---------------------------------------------------------

    /// Attach an append-only journal: from now on `create_session`,
    /// `end_session`, and every [`SessionManager::apply_op`] mutation is
    /// recorded so a crashed fleet can be resurrected with
    /// [`SessionManager::recover`].
    pub fn attach_journal(&self, journal: Journal) {
        self.attach_journal_with_base(journal, 0);
    }

    /// Attach with a known base-record count (the recovery replay prefix
    /// or a compaction snapshot) so the auto-compaction trigger sees how
    /// much live state the file already encodes.
    fn attach_journal_with_base(&self, journal: Journal, base_records: u64) {
        *recover_guard(self.journal.lock()) = Some(JournalState {
            journal,
            base_records,
            tail_records: 0,
            compactions: 0,
            last_compaction: None,
            epoch: 0,
        });
    }

    /// Whether a journal is attached.
    pub fn has_journal(&self) -> bool {
        recover_guard(self.journal.lock()).is_some()
    }

    /// Flush (and under [`FsyncPolicy::Always`], sync) the journal.
    pub fn journal_sync(&self) -> Result<(), SquidError> {
        match recover_guard(self.journal.lock()).as_mut() {
            Some(state) => state.journal.sync(),
            None => Ok(()),
        }
    }

    /// Journal appends that failed: the infallible create/end paths plus
    /// turn appends that fail-stopped their session.
    pub fn journal_write_errors(&self) -> u64 {
        self.journal_write_errors.load(Ordering::Relaxed)
    }

    /// Journal health for the `stats`/`health` surfaces: file size, base
    /// vs tail record counts (replay debt), and compaction history.
    /// `None` when no journal is attached.
    pub fn journal_stats(&self) -> Option<JournalStats> {
        recover_guard(self.journal.lock())
            .as_ref()
            .map(|state| JournalStats {
                path: state.journal.path().display().to_string(),
                bytes: state.journal.bytes(),
                base_records: state.base_records,
                tail_records: state.tail_records,
                compactions: state.compactions,
                last_compaction: state.last_compaction,
                epoch: state.epoch,
            })
    }

    /// Append one record; returns whether the auto-compaction threshold
    /// was crossed by this append.
    fn journal_append(&self, id: SessionId, seq: u64, op: &SessionOp) -> Result<bool, SquidError> {
        match recover_guard(self.journal.lock()).as_mut() {
            Some(state) => {
                state.journal.append(id, seq, op)?;
                state.tail_records += 1;
                Ok(self
                    .auto_compact
                    .is_some_and(|min| state.tail_records >= min.max(state.base_records)))
            }
            None => Ok(false),
        }
    }

    /// Run the auto-compaction a threshold-crossing append asked for. The
    /// triggering turn already succeeded and is durable, so a compaction
    /// failure must not fail it — the old journal is intact (compaction is
    /// temp+rename), and the error is counted like other best-effort
    /// journal maintenance failures.
    fn autocompact(&self) {
        if self.compact_journal().is_err() {
            self.journal_write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Apply one session-mutating operation *and* journal it. The
    /// operation, the journal append, and the sequence-cursor advance all
    /// happen under the session's mutex, so journal append order always
    /// matches sequence order even when several connections drive the
    /// same session (sessions are not connection-bound) — the invariant
    /// that makes [`SessionManager::recover`]'s cursor-based dedupe safe.
    /// The record is appended only after the operation succeeds (mutators
    /// are rollback-on-error), so the journal always holds exactly the
    /// successful history — replaying it is deterministic.
    ///
    /// If the operation succeeds but the append fails, the turn is *not*
    /// acknowledged: the cursor stays put, the error propagates, and the
    /// session is fail-stopped (evicted) — its in-memory state now holds
    /// a mutation the journal does not, and serving it would let live
    /// state silently diverge from what recovery can rebuild. Later turns
    /// see [`SquidError::UnknownSession`].
    ///
    /// Lifecycle ops are not applicable here: use
    /// [`SessionManager::create_session`] / [`SessionManager::end_session`],
    /// which journal themselves.
    pub fn apply_op(
        &self,
        id: SessionId,
        op: &SessionOp,
    ) -> Result<Option<DiscoveryDelta>, SquidError> {
        match self.sequenced_apply(id, None, op)? {
            SeqOutcome::Applied(delta) => Ok(delta),
            SeqOutcome::Duplicate => unreachable!("unsequenced ops are never duplicates"),
        }
    }

    /// Apply a client-sequenced mutation exactly once. `seq` is the
    /// client's per-session turn number (1-based, contiguous): at or below
    /// the session's cursor the turn was already applied — a retry of an
    /// acknowledged request — and is reported as
    /// [`SeqOutcome::Duplicate`] without re-running anything; exactly
    /// `cursor + 1` applies and journals like
    /// [`SessionManager::apply_op`] (same atomicity and append-failure
    /// semantics); anything further ahead is a
    /// [`SquidError::SequenceGap`] (the client claims turns the server
    /// never saw).
    pub fn apply_op_at(
        &self,
        id: SessionId,
        seq: u64,
        op: &SessionOp,
    ) -> Result<SeqOutcome, SquidError> {
        self.sequenced_apply(id, Some(seq), op)
    }

    /// The shared apply path: run the op, journal it, and advance the
    /// cursor atomically under the session mutex (see
    /// [`SessionManager::apply_op`]). Lock order is session → journal,
    /// everywhere — [`SessionManager::compact_journal`] is built around
    /// the same rule.
    fn sequenced_apply(
        &self,
        id: SessionId,
        seq: Option<u64>,
        op: &SessionOp,
    ) -> Result<SeqOutcome, SquidError> {
        enum Step {
            Applied(Option<DiscoveryDelta>, bool),
            Duplicate,
        }
        let mut durability_lost = false;
        let step = self.with_session(id, |s| {
            let cur = s.op_seq();
            let next = match seq {
                None => cur + 1,
                Some(seq) if seq <= cur => return Ok(Step::Duplicate),
                Some(seq) if seq != cur + 1 => {
                    return Err(SquidError::SequenceGap {
                        id,
                        expected: cur + 1,
                        got: seq,
                    })
                }
                Some(seq) => seq,
            };
            let delta = op.apply(s)?;
            match self.journal_append(id, next, op) {
                Ok(compact) => {
                    // Advance only once the record is durable: a failed
                    // append must leave the cursor where the journal is,
                    // or a client reusing this turn number would be
                    // absorbed as a duplicate of a turn that never
                    // happened.
                    s.advance_op_seq(next);
                    Ok(Step::Applied(delta, compact))
                }
                Err(e) => {
                    durability_lost = true;
                    Err(e)
                }
            }
        });
        if durability_lost {
            // The op mutated in-memory state the journal never saw;
            // fail-stop the session rather than serve state recovery
            // cannot rebuild.
            recover_guard(self.shard(id).write()).remove(&id);
            self.journal_write_errors.fetch_add(1, Ordering::Relaxed);
        }
        match step? {
            Step::Duplicate => Ok(SeqOutcome::Duplicate),
            Step::Applied(delta, compact) => {
                if compact {
                    self.autocompact();
                }
                Ok(SeqOutcome::Applied(delta))
            }
        }
    }

    /// Rewrite the journal as a snapshot of the live sessions, discarding
    /// replayed-over history (removed examples, ended sessions, superseded
    /// targets) so recovery time is bounded by live state, not by session
    /// age. Crash-safe: the snapshot is written to a temp file, fsynced,
    /// and renamed over the old journal — a crash mid-compaction recovers
    /// from whichever complete file the rename left behind.
    ///
    /// Concurrency: lock order everywhere is session → journal (appends
    /// run under the session mutex), so the snapshot is collected *before*
    /// taking the journal lock — taking session locks under it would
    /// deadlock against in-flight turns. Anything a session journals
    /// after its snapshot but before the rewrite sits only in the old
    /// file; the rewrite rescans that file and carries forward every
    /// record the snapshot does not cover (sequence numbers above the
    /// snapshotted cursor, plus lifecycle records of sessions born or
    /// ended since), so a racing mutation is never dropped. Replay's
    /// cursor dedupe makes any overlap harmless — see the journal module
    /// docs.
    ///
    /// Returns `None` when no journal is attached.
    pub fn compact_journal(&self) -> Result<Option<CompactStats>, SquidError> {
        // One compaction at a time: two racing compactors could otherwise
        // rewrite the file from the staler of two snapshots, and the
        // carry-forward scan below would judge records against cursors
        // that undercount the other snapshot's state.
        let _compacting = recover_guard(self.compact_lock.lock());
        if !self.has_journal() {
            return Ok(None);
        }
        // Phase 1 — snapshot live sessions, journal lock not held.
        let mut live: Vec<(SessionId, u64, Vec<SessionOp>)> = Vec::new();
        for id in self.session_ids() {
            // A session closed/evicted between the listing and the lock is
            // simply not live anymore; skip it.
            if let Ok(snap) = self.with_session(id, |s| Ok((s.op_seq(), s.state_ops()))) {
                live.push((id, snap.0, snap.1));
            }
        }
        // Phase 2 — rewrite under the journal lock (appends block until
        // the swap completes, then land in the new file).
        let mut guard = recover_guard(self.journal.lock());
        let Some(state) = guard.as_mut() else {
            return Ok(None);
        };
        // Buffered records must be visible to the carry-forward scan.
        state.journal.sync()?;
        let path = state.journal.path().to_path_buf();
        let policy = state.journal.policy();
        let cursors: FxHashMap<SessionId, u64> =
            live.iter().map(|(id, cur, _)| (*id, *cur)).collect();
        let mut tail: Vec<(SessionId, u64, SessionOp)> = Vec::new();
        for (sid, seq, op) in journal::read_journal(&path)?.records {
            let keep = match cursors.get(&sid) {
                // Snapshotted session: its Create and everything at or
                // below the snapshot cursor is subsumed by the snapshot
                // (seq-0 records are a previous compaction's state ops);
                // an End means it died after its snapshot was taken and
                // must still die on replay.
                Some(&cursor) => match op {
                    SessionOp::Create => false,
                    SessionOp::End => true,
                    _ => seq != 0 && seq > cursor,
                },
                // Not snapshotted: either created after phase 1 (still
                // hosted — keep its whole history) or dead (drop its
                // history entirely; that is what compaction is for).
                None => recover_guard(self.shard(sid).read()).contains_key(&sid),
            };
            if keep {
                tail.push((sid, seq, op));
            }
        }
        let (journal, stats) = Journal::compact(&path, &live, &tail, policy)?;
        state.journal = journal;
        state.base_records = stats.records_written;
        state.tail_records = 0;
        state.compactions += 1;
        state.last_compaction = Some(stats);
        // The rename above and this bump happen under the same journal
        // lock, so a reader that samples the epoch (under the lock, via
        // `journal_stats`) before and after an offset-based file read can
        // tell whether the file could have been swapped mid-read.
        state.epoch += 1;
        Ok(Some(stats))
    }

    /// Rebuild session state by replaying the journal at `path`, then
    /// truncate any torn/corrupt tail and attach the journal for further
    /// appends. Call on a freshly-constructed manager (existing sessions
    /// are kept; replayed ids that collide would be overwritten).
    ///
    /// Replay semantics: `Create`/`End` records drive session lifecycle
    /// under their original ids; every other record re-executes the
    /// operation against the (immutable) αDB, which reproduces the exact
    /// pre-crash state because mutators are deterministic and only
    /// successful operations were journaled. A record that fails to apply
    /// (e.g. the αDB changed under the journal) is counted in
    /// [`RecoverStats::records_failed`] and skipped — recovery salvages
    /// everything salvageable instead of failing outright.
    pub fn recover(
        &self,
        path: impl AsRef<Path>,
        policy: FsyncPolicy,
    ) -> Result<RecoverStats, SquidError> {
        let path = path.as_ref();
        let replay = journal::read_journal(path)?;
        let mut stats = RecoverStats {
            bytes_truncated: replay.bytes_truncated,
            ..RecoverStats::default()
        };
        let mut max_id = 0;
        for (sid, seq, op) in &replay.records {
            max_id = max_id.max(*sid);
            match op {
                SessionOp::Create => {
                    // A duplicate Create (the session was live across a
                    // compaction that raced its create-append) must not
                    // reinstall — that would wipe the replayed state.
                    if recover_guard(self.shard(*sid).read()).contains_key(sid) {
                        stats.records_skipped += 1;
                    } else {
                        self.install_session(*sid, self.params.clone());
                        // A compacted Create carries the session's
                        // pre-compaction cursor (live-append Creates
                        // carry 0); restore it so retried client turns
                        // keep deduping across compaction + crash.
                        let _ = self.with_session(*sid, |s| {
                            s.advance_op_seq(*seq);
                            Ok(())
                        });
                        stats.sessions_replayed += 1;
                        stats.records_applied += 1;
                    }
                }
                SessionOp::End => {
                    recover_guard(self.shard(*sid).write()).remove(sid);
                    stats.records_applied += 1;
                }
                _ => match self.with_session(*sid, |s| {
                    // The cursor makes replay idempotent: a record whose
                    // sequence the session has already absorbed (the
                    // compaction/append race) is skipped, not re-applied.
                    if *seq != 0 && *seq <= s.op_seq() {
                        return Ok(false);
                    }
                    op.apply(s)?;
                    s.advance_op_seq(*seq);
                    Ok(true)
                }) {
                    Ok(true) => stats.records_applied += 1,
                    Ok(false) => stats.records_skipped += 1,
                    Err(_) => stats.records_failed += 1,
                },
            }
        }
        // Fresh ids must never collide with replayed ones.
        self.next_id.fetch_max(max_id + 1, Ordering::Relaxed);
        // Drop the damaged tail on disk before appending after it, so the
        // journal never contains valid records behind a corrupt region.
        journal::truncate_to_valid(path, replay.bytes_valid)?;
        self.attach_journal_with_base(Journal::open(path, policy)?, replay.records.len() as u64);
        stats.live_sessions = self.len();
        *recover_guard(self.recover_stats.lock()) = Some(stats);
        Ok(stats)
    }

    /// What the last [`SessionManager::recover`] call on this manager did,
    /// if any — surfaced by operator tooling (the REPL `stats` command).
    pub fn recover_stats(&self) -> Option<RecoverStats> {
        *recover_guard(self.recover_stats.lock())
    }

    /// Replay records shipped off another node's journal onto this *live*
    /// manager — the replication standby's apply path. Same idempotent
    /// skip/cursor rules as [`SessionManager::recover`], with one
    /// extension for mid-stream re-snapshots: when the primary compacts,
    /// the stream restarts with the full compacted journal, whose
    /// snapshot sections (a `Create` carrying the session cursor followed
    /// by seq-0 state ops) describe sessions this manager may already
    /// host. A snapshot section for a session whose cursor we have
    /// already reached is skipped wholesale (re-applying its seq-0 state
    /// ops would double state); a section *ahead* of us (we lagged across
    /// the compaction, so the ops between our cursor and the snapshot's
    /// were compacted away) replaces our stale copy by reinstalling the
    /// session from the snapshot.
    ///
    /// Applied records are appended to this manager's own journal (when
    /// one is attached) under the usual cursor discipline, so a promoted
    /// standby is durably journaled from its first turn as primary.
    pub fn apply_replicated(&self, records: &[(SessionId, u64, SessionOp)]) -> ReplicatedStats {
        let mut stats = ReplicatedStats::default();
        let mut snapshot_skip: std::collections::HashSet<SessionId> =
            std::collections::HashSet::new();
        let mut max_id = 0;
        let mut compact = false;
        let mut journal_applied = |mgr: &SessionManager, sid, seq, op: &SessionOp| match mgr
            .journal_append(sid, seq, op)
        {
            Ok(hit) => compact |= hit,
            Err(_) => {
                mgr.journal_write_errors.fetch_add(1, Ordering::Relaxed);
            }
        };
        for (sid, seq, op) in records {
            max_id = max_id.max(*sid);
            match op {
                SessionOp::Create => {
                    let have = self.with_session(*sid, |s| Ok(s.op_seq())).ok();
                    match have {
                        // Our replica already covers this snapshot (or it
                        // is a duplicate live create): keep our state and
                        // ignore the section's seq-0 state ops.
                        Some(cursor) if cursor >= *seq => {
                            snapshot_skip.insert(*sid);
                            stats.records_skipped += 1;
                        }
                        // We fell behind across a compaction: the ops
                        // between our cursor and the snapshot's are gone
                        // from the stream, so rebuild from the snapshot.
                        Some(_) => {
                            recover_guard(self.shard(*sid).write()).remove(sid);
                            self.install_session(*sid, self.params.clone());
                            let _ = self.with_session(*sid, |s| {
                                s.advance_op_seq(*seq);
                                Ok(())
                            });
                            snapshot_skip.remove(sid);
                            journal_applied(self, *sid, *seq, op);
                            stats.sessions_reinstalled += 1;
                            stats.records_applied += 1;
                        }
                        None => {
                            self.install_session(*sid, self.params.clone());
                            let _ = self.with_session(*sid, |s| {
                                s.advance_op_seq(*seq);
                                Ok(())
                            });
                            snapshot_skip.remove(sid);
                            journal_applied(self, *sid, *seq, op);
                            stats.sessions_installed += 1;
                            stats.records_applied += 1;
                        }
                    }
                }
                SessionOp::End => {
                    recover_guard(self.shard(*sid).write()).remove(sid);
                    journal_applied(self, *sid, 0, op);
                    stats.sessions_ended += 1;
                    stats.records_applied += 1;
                }
                _ if *seq == 0 && snapshot_skip.contains(sid) => {
                    stats.records_skipped += 1;
                }
                _ => match self.with_session(*sid, |s| {
                    if *seq != 0 && *seq <= s.op_seq() {
                        return Ok(false);
                    }
                    op.apply(s)?;
                    s.advance_op_seq(*seq);
                    Ok(true)
                }) {
                    Ok(true) => {
                        journal_applied(self, *sid, *seq, op);
                        stats.records_applied += 1;
                    }
                    Ok(false) => stats.records_skipped += 1,
                    Err(_) => stats.records_failed += 1,
                },
            }
        }
        // A promoted standby must hand out ids the old primary never used.
        self.next_id.fetch_max(max_id + 1, Ordering::Relaxed);
        if compact {
            self.autocompact();
        }
        stats
    }

    /// Drop every hosted session whose id is not in `keep` — the standby's
    /// zombie sweep when a re-snapshot arrives: a session absent from the
    /// primary's full journal no longer exists there (its `End` raced a
    /// compaction that erased its history), so a replica holding it would
    /// serve stale reads forever. Returns how many sessions were dropped.
    pub fn retain_sessions(&self, keep: &std::collections::HashSet<SessionId>) -> usize {
        let mut dropped = 0;
        for shard in &self.shards {
            let mut shard = recover_guard(shard.write());
            let before = shard.len();
            shard.retain(|id, _| keep.contains(id));
            dropped += before - shard.len();
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::squid::Squid;
    use squid_adb::test_fixtures::mini_imdb;

    fn manager() -> SessionManager {
        SessionManager::new(Arc::new(ADb::build(&mini_imdb()).unwrap()))
    }

    #[test]
    fn sessions_are_isolated() {
        let m = manager();
        let a = m.create_session();
        let b = m.create_session();
        m.with_session(a, |s| s.add_example("Jim Carrey")).unwrap();
        m.with_session(b, |s| s.add_example("Julia Roberts"))
            .unwrap();
        let ea = m.with_session(a, |s| Ok(s.examples().join(","))).unwrap();
        let eb = m.with_session(b, |s| Ok(s.examples().join(","))).unwrap();
        assert_eq!(ea, "Jim Carrey");
        assert_eq!(eb, "Julia Roberts");
        assert_eq!(m.len(), 2);
        assert!(m.end_session(a));
        assert!(!m.end_session(a));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn unknown_session_errors() {
        let m = manager();
        let err = m.with_session(42, |_| Ok(())).unwrap_err();
        assert!(matches!(err, SquidError::UnknownSession { id: 42 }));
    }

    #[test]
    fn session_count_and_active_ids_track_the_fleet() {
        let m = manager();
        assert_eq!(m.session_count(), 0);
        assert!(m.active_ids().is_empty());
        let a = m.create_session();
        let b = m.create_session();
        let c = m.create_session();
        assert_eq!(m.session_count(), 3);
        assert_eq!(m.active_ids(), vec![a, b, c]);
        m.close_session(b).unwrap();
        assert_eq!(m.session_count(), 2);
        assert_eq!(m.active_ids(), vec![a, c]);
    }

    #[test]
    fn close_session_journals_the_close() {
        let dir = std::env::temp_dir().join(format!(
            "squid-close-journal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.journal");
        let _ = std::fs::remove_file(&path);

        let adb = Arc::new(ADb::build(&mini_imdb()).unwrap());
        let m = SessionManager::new(Arc::clone(&adb));
        m.attach_journal(Journal::open(&path, FsyncPolicy::Always).unwrap());
        let a = m.create_session();
        let b = m.create_session();
        m.apply_op(a, &SessionOp::AddExample("Jim Carrey".into()))
            .unwrap();
        m.close_session(a).unwrap();
        let err = m.close_session(a).unwrap_err();
        assert!(matches!(err, SquidError::UnknownSession { .. }));
        m.journal_sync().unwrap();

        // A recovered fleet must see the close: only `b` comes back.
        let m2 = SessionManager::new(adb);
        let st = m2.recover(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(st.live_sessions, 1);
        assert_eq!(m2.active_ids(), vec![b]);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn ttl_evicts_idle_sessions() {
        let m = manager().with_ttl(Duration::from_millis(0));
        let id = m.create_session();
        assert_eq!(m.len(), 1);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(m.evict_expired(), 1);
        assert!(m.is_empty());
        let id2 = m.create_session();
        std::thread::sleep(Duration::from_millis(5));
        // Lazy eviction on access reports the session as unknown.
        let err = m.with_session(id2, |_| Ok(())).unwrap_err();
        assert!(matches!(err, SquidError::UnknownSession { .. }));
        assert!(m.is_empty());
        let _ = id;
    }

    #[test]
    fn shared_cache_warms_across_sessions() {
        let m = manager();
        let slate = ["Jim Carrey", "Eddie Murphy"];
        let a = m.create_session();
        m.with_session(a, |s| {
            for e in slate {
                s.add_example(e)?;
            }
            Ok(())
        })
        .unwrap();
        m.end_session(a);
        let published = m.shared_cache_stats().expect("shared cache on");
        assert!(published.entries > 0, "session A published bitmaps");

        // A brand-new session replaying the same turns is served from the
        // shared cache: its local cache starts empty, yet it computes
        // nothing the fleet already knows.
        let b = m.create_session();
        let stats = m
            .with_session(b, |s| {
                for e in slate {
                    s.add_example(e)?;
                }
                Ok(s.cache_stats())
            })
            .unwrap();
        assert!(
            stats.shared_hits > 0,
            "cross-session turns must hit the shared cache: {stats:?}"
        );
        let shared = m.shared_cache_stats().unwrap();
        assert!(shared.hits >= stats.shared_hits);
        assert!(shared.resident_bytes <= shared.max_resident_bytes);
    }

    #[test]
    fn disabled_shared_cache_keeps_sessions_local() {
        let m = manager().without_shared_cache();
        assert!(m.shared_cache().is_none());
        assert!(m.shared_cache_stats().is_none());
        let id = m.create_session();
        let stats = m
            .with_session(id, |s| {
                s.add_example("Jim Carrey")?;
                s.add_example("Eddie Murphy")?;
                Ok(s.cache_stats())
            })
            .unwrap();
        assert_eq!(stats.shared_hits, 0);
        assert_eq!(stats.shared_misses, 0);
    }

    #[test]
    fn ttl_sweep_decays_but_keeps_shared_entries() {
        let m = manager().with_ttl(Duration::from_millis(0));
        let id = m.create_session();
        m.with_session(id, |s| {
            s.add_example("Jim Carrey")?;
            s.add_example("Eddie Murphy")?;
            Ok(())
        })
        .unwrap();
        let before = m.shared_cache_stats().unwrap();
        assert!(before.entries > 0);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(m.evict_expired(), 1);
        // Decay drops LRU priority, not residency: entries stay resident
        // (they evict first only once the byte budget tightens).
        let after = m.shared_cache_stats().unwrap();
        assert_eq!(after.entries, before.entries);
    }

    #[test]
    fn panicked_session_is_evicted_and_siblings_survive() {
        let m = manager();
        let doomed = m.create_session();
        let sibling = m.create_session();
        m.with_session(sibling, |s| s.add_example("Jim Carrey"))
            .unwrap();
        // A turn that panics mid-operation poisons only its own session.
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Result<(), _> = m.with_session(doomed, |s| {
                s.add_example("Eddie Murphy")?;
                panic!("injected turn panic");
            });
        }));
        assert!(panicked.is_err());
        // The sibling keeps working, through the same shard registry.
        let examples = m
            .with_session(sibling, |s| Ok(s.examples().join(",")))
            .unwrap();
        assert_eq!(examples, "Jim Carrey");
        // The poisoned session is evicted on next touch, like an expired one.
        let err = m.with_session(doomed, |_| Ok(())).unwrap_err();
        assert!(matches!(err, SquidError::UnknownSession { .. }));
        // And new sessions can still be created afterwards.
        let fresh = m.create_session();
        m.with_session(fresh, |s| s.add_example("Julia Roberts"))
            .unwrap();
    }

    fn journal_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("squid_manager_unit");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn recover_replays_journaled_sessions_bit_identical() {
        let adb = Arc::new(ADb::build(&mini_imdb()).unwrap());
        let path = journal_path("recover.journal");
        std::fs::remove_file(&path).ok();

        // Fleet A: journaling on, two sessions, one ended.
        let a = SessionManager::new(Arc::clone(&adb));
        a.attach_journal(Journal::open(&path, FsyncPolicy::Flush).unwrap());
        let s1 = a.create_session();
        let s2 = a.create_session();
        a.apply_op(s1, &SessionOp::AddExample("Jim Carrey".into()))
            .unwrap();
        a.apply_op(s1, &SessionOp::AddExample("Eddie Murphy".into()))
            .unwrap();
        a.apply_op(s1, &SessionOp::PinFilter("person:gender".into()))
            .ok();
        a.apply_op(s2, &SessionOp::AddExample("Julia Roberts".into()))
            .unwrap();
        a.end_session(s2);
        let sql_before = a
            .with_session(s1, |s| Ok(s.discovery().unwrap().sql()))
            .unwrap();
        let examples_before = a.with_session(s1, |s| Ok(s.examples().join("|"))).unwrap();
        drop(a); // "crash": the manager is gone, only the journal survives

        // Fleet B: fresh manager over the same αDB, recovered from disk.
        let b = SessionManager::new(Arc::clone(&adb));
        let stats = b.recover(&path, FsyncPolicy::Flush).unwrap();
        assert_eq!(stats.sessions_replayed, 2);
        assert_eq!(stats.live_sessions, 1, "s2 was ended before the crash");
        assert_eq!(stats.bytes_truncated, 0);
        assert_eq!(b.recover_stats(), Some(stats));
        let sql_after = b
            .with_session(s1, |s| Ok(s.discovery().unwrap().sql()))
            .unwrap();
        let examples_after = b.with_session(s1, |s| Ok(s.examples().join("|"))).unwrap();
        assert_eq!(
            sql_before, sql_after,
            "recovered discovery is bit-identical"
        );
        assert_eq!(examples_before, examples_after);
        assert!(matches!(
            b.with_session(s2, |_| Ok(())),
            Err(SquidError::UnknownSession { .. })
        ));
        // New ids never collide with replayed ones.
        let s3 = b.create_session();
        assert!(s3 > s2.max(s1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recover_truncates_torn_tail_and_continues() {
        let adb = Arc::new(ADb::build(&mini_imdb()).unwrap());
        let path = journal_path("torn_recover.journal");
        std::fs::remove_file(&path).ok();
        let a = SessionManager::new(Arc::clone(&adb));
        a.attach_journal(Journal::open(&path, FsyncPolicy::Flush).unwrap());
        let s1 = a.create_session();
        a.apply_op(s1, &SessionOp::AddExample("Jim Carrey".into()))
            .unwrap();
        a.apply_op(s1, &SessionOp::AddExample("Eddie Murphy".into()))
            .unwrap();
        drop(a);
        // Tear the file mid-record: drop the last 5 bytes.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let b = SessionManager::new(Arc::clone(&adb));
        let stats = b.recover(&path, FsyncPolicy::Flush).unwrap();
        assert!(stats.bytes_truncated > 0);
        // The prefix state: session exists with the first example only.
        let examples = b.with_session(s1, |s| Ok(s.examples().join("|"))).unwrap();
        assert_eq!(examples, "Jim Carrey");
        // The tail is gone on disk, and appends continue cleanly.
        b.apply_op(s1, &SessionOp::AddExample("Eddie Murphy".into()))
            .unwrap();
        drop(b);
        let replay = crate::journal::read_journal(&path).unwrap();
        assert_eq!(replay.bytes_truncated, 0, "tail truncated before reopen");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_preserves_state_and_shrinks_the_journal() {
        let adb = Arc::new(ADb::build(&mini_imdb()).unwrap());
        let path = journal_path("compact.journal");
        std::fs::remove_file(&path).ok();

        let a = SessionManager::new(Arc::clone(&adb));
        a.attach_journal(Journal::open(&path, FsyncPolicy::Flush).unwrap());
        let s1 = a.create_session();
        // Churn: adds and removes whose history dwarfs the live state.
        for _ in 0..10 {
            a.apply_op(s1, &SessionOp::AddExample("Julia Roberts".into()))
                .unwrap();
            a.apply_op(s1, &SessionOp::RemoveExample("Julia Roberts".into()))
                .unwrap();
        }
        a.apply_op(s1, &SessionOp::AddExample("Jim Carrey".into()))
            .unwrap();
        a.apply_op(s1, &SessionOp::AddExample("Eddie Murphy".into()))
            .unwrap();
        let dead = a.create_session();
        a.end_session(dead);
        let sql_before = a
            .with_session(s1, |s| Ok(s.discovery().unwrap().sql()))
            .unwrap();
        let cursor_before = a.with_session(s1, |s| Ok(s.op_seq())).unwrap();

        let stats = a.compact_journal().unwrap().expect("journal attached");
        assert_eq!(stats.sessions, 1, "only the live session is snapshotted");
        assert!(
            stats.bytes_after < stats.bytes_before,
            "churn history must be discarded: {stats:?}"
        );
        let jstats = a.journal_stats().unwrap();
        assert_eq!(jstats.compactions, 1);
        assert_eq!(jstats.tail_records, 0);
        assert_eq!(jstats.last_compaction, Some(stats));

        // The cursor survives compaction, so client retries of
        // pre-compaction turns still dedupe.
        assert_eq!(
            a.with_session(s1, |s| Ok(s.op_seq())).unwrap(),
            cursor_before
        );

        // Appends continue into the compacted journal...
        let pinned = a
            .apply_op(s1, &SessionOp::PinFilter("person:gender".into()))
            .is_ok();
        let sql_live = a
            .with_session(s1, |s| Ok(s.discovery().unwrap().sql()))
            .unwrap();
        a.journal_sync().unwrap();
        drop(a);

        // ...and recovery from the compacted journal is diff-identical.
        let b = SessionManager::new(Arc::clone(&adb));
        let rstats = b.recover(&path, FsyncPolicy::Flush).unwrap();
        assert_eq!(rstats.live_sessions, 1);
        assert_eq!(rstats.records_failed, 0);
        let sql_after = b
            .with_session(s1, |s| Ok(s.discovery().unwrap().sql()))
            .unwrap();
        assert_eq!(sql_after, sql_live);
        assert_eq!(
            b.with_session(s1, |s| Ok(s.op_seq())).unwrap(),
            cursor_before + u64::from(pinned)
        );
        let _ = sql_before;
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sequenced_ops_dedupe_retries_and_reject_gaps() {
        let m = manager();
        let id = m.create_session();
        let op = SessionOp::AddExample("Jim Carrey".into());
        assert!(matches!(
            m.apply_op_at(id, 1, &op).unwrap(),
            SeqOutcome::Applied(_)
        ));
        // A retry of an acknowledged turn is absorbed, not re-applied.
        assert!(matches!(
            m.apply_op_at(id, 1, &op).unwrap(),
            SeqOutcome::Duplicate
        ));
        let examples = m.with_session(id, |s| Ok(s.examples().len())).unwrap();
        assert_eq!(examples, 1, "duplicate must not add the example twice");
        // Skipping ahead claims turns the server never saw.
        let err = m
            .apply_op_at(id, 5, &SessionOp::AddExample("Eddie Murphy".into()))
            .unwrap_err();
        assert!(matches!(
            err,
            SquidError::SequenceGap {
                expected: 2,
                got: 5,
                ..
            }
        ));
        // Unsequenced and sequenced ops share one cursor.
        m.apply_op(id, &SessionOp::AddExample("Eddie Murphy".into()))
            .unwrap();
        assert!(matches!(
            m.apply_op_at(id, 3, &SessionOp::AddExample("Robin Williams".into()))
                .unwrap(),
            SeqOutcome::Applied(_)
        ));
        assert_eq!(m.with_session(id, |s| Ok(s.op_seq())).unwrap(), 3);
    }

    #[test]
    fn concurrent_turns_on_one_session_journal_in_seq_order() {
        let adb = Arc::new(ADb::build(&mini_imdb()).unwrap());
        let path = journal_path("seq_order.journal");
        std::fs::remove_file(&path).ok();
        let m = SessionManager::new(adb);
        m.attach_journal(Journal::open(&path, FsyncPolicy::Flush).unwrap());
        let id = m.create_session();
        // Four connections drive the same session (sessions are not
        // connection-bound); each thread churns its own example so every
        // op succeeds regardless of interleaving.
        let names = [
            "Jim Carrey",
            "Eddie Murphy",
            "Julia Roberts",
            "Robin Williams",
        ];
        std::thread::scope(|scope| {
            for name in names {
                let m = &m;
                scope.spawn(move || {
                    for _ in 0..10 {
                        m.apply_op(id, &SessionOp::AddExample(name.into())).unwrap();
                        m.apply_op(id, &SessionOp::RemoveExample(name.into()))
                            .unwrap();
                    }
                });
            }
        });
        m.journal_sync().unwrap();
        // The journal must hold the session's turns in exactly cursor
        // order: recovery replays in append order and skips any seq at or
        // below the cursor, so an out-of-order append would silently drop
        // an acknowledged, fsynced turn.
        let seqs: Vec<u64> = crate::journal::read_journal(&path)
            .unwrap()
            .records
            .into_iter()
            .filter(|(sid, seq, _)| *sid == id && *seq != 0)
            .map(|(_, seq, _)| seq)
            .collect();
        let expected: Vec<u64> = (1..=seqs.len() as u64).collect();
        assert_eq!(seqs, expected, "journal order must match seq order");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_racing_appends_loses_nothing() {
        let adb = Arc::new(ADb::build(&mini_imdb()).unwrap());
        let path = journal_path("compact_race.journal");
        std::fs::remove_file(&path).ok();
        let m = SessionManager::new(Arc::clone(&adb));
        m.attach_journal(Journal::open(&path, FsyncPolicy::Flush).unwrap());
        let names = ["Jim Carrey", "Eddie Murphy", "Julia Roberts"];
        let ids: Vec<SessionId> = names.iter().map(|_| m.create_session()).collect();
        std::thread::scope(|scope| {
            for (idx, name) in names.iter().enumerate() {
                let m = &m;
                let id = ids[idx];
                scope.spawn(move || {
                    for k in 0..30 {
                        let op = if k % 2 == 0 {
                            SessionOp::AddExample((*name).into())
                        } else {
                            SessionOp::RemoveExample((*name).into())
                        };
                        m.apply_op(id, &op).unwrap();
                    }
                });
            }
            // Compact repeatedly while the turns are in flight: records
            // appended between a session's snapshot and the rewrite must
            // be carried forward, never dropped.
            let m = &m;
            scope.spawn(move || {
                for _ in 0..10 {
                    m.compact_journal().unwrap();
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        });
        m.journal_sync().unwrap();
        let live: Vec<(u64, String, Option<String>)> = ids
            .iter()
            .map(|&id| {
                m.with_session(id, |s| {
                    Ok((
                        s.op_seq(),
                        s.examples().join("|"),
                        s.discovery().map(|d| d.sql()),
                    ))
                })
                .unwrap()
            })
            .collect();
        drop(m);
        let recovered = SessionManager::new(adb);
        recovered.recover(&path, FsyncPolicy::Flush).unwrap();
        let after: Vec<(u64, String, Option<String>)> = ids
            .iter()
            .map(|&id| {
                recovered
                    .with_session(id, |s| {
                        Ok((
                            s.op_seq(),
                            s.examples().join("|"),
                            s.discovery().map(|d| d.sql()),
                        ))
                    })
                    .unwrap()
            })
            .collect();
        assert_eq!(live, after, "recovery diverged from the live fleet");
        std::fs::remove_file(&path).ok();
    }

    /// `/dev/full` makes every flush fail with ENOSPC: the turn must be
    /// refused (not acknowledged) and the session fail-stopped, so its
    /// unjournaled in-memory mutation can never be served.
    #[cfg(target_os = "linux")]
    #[test]
    fn journal_append_failure_fail_stops_the_session() {
        let m = manager();
        let id = m.create_session();
        m.attach_journal(Journal::open("/dev/full", FsyncPolicy::Flush).unwrap());
        let err = m
            .apply_op(id, &SessionOp::AddExample("Jim Carrey".into()))
            .unwrap_err();
        assert!(matches!(err, SquidError::Io(_)), "unexpected: {err}");
        assert!(m.journal_write_errors() >= 1);
        assert!(
            matches!(
                m.with_session(id, |_| Ok(())),
                Err(SquidError::UnknownSession { .. })
            ),
            "a session whose durability failed must be evicted"
        );
    }

    #[test]
    fn auto_compaction_triggers_when_the_tail_dwarfs_live_state() {
        let adb = Arc::new(ADb::build(&mini_imdb()).unwrap());
        let path = journal_path("autocompact.journal");
        std::fs::remove_file(&path).ok();
        let m = SessionManager::new(adb).with_auto_compact(8);
        m.attach_journal(Journal::open(&path, FsyncPolicy::Flush).unwrap());
        let id = m.create_session();
        for _ in 0..6 {
            m.apply_op(id, &SessionOp::AddExample("Jim Carrey".into()))
                .unwrap();
            m.apply_op(id, &SessionOp::RemoveExample("Jim Carrey".into()))
                .unwrap();
        }
        let stats = m.journal_stats().unwrap();
        assert!(
            stats.compactions >= 1,
            "12 churn appends past a floor of 8 must have compacted: {stats:?}"
        );
        assert_eq!(m.journal_write_errors(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_sessions_match_one_shot() {
        let adb = Arc::new(ADb::build(&mini_imdb()).unwrap());
        let m = SessionManager::new(Arc::clone(&adb));
        let slates: Vec<Vec<&str>> = vec![
            vec!["Jim Carrey", "Eddie Murphy"],
            vec!["Sylvester Stallone", "Arnold Schwarzenegger"],
            vec!["Julia Roberts", "Emma Stone"],
        ];
        let results: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = slates
                .iter()
                .map(|slate| {
                    let m = &m;
                    scope.spawn(move || {
                        let id = m.create_session();
                        let sql = m
                            .with_session(id, |s| {
                                for e in slate {
                                    s.add_example(e)?;
                                }
                                Ok(s.discovery().unwrap().sql())
                            })
                            .unwrap();
                        m.end_session(id);
                        sql
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let squid = Squid::new(&adb);
        for (slate, sql) in slates.iter().zip(&results) {
            assert_eq!(&squid.discover(slate).unwrap().sql(), sql);
        }
        assert!(m.is_empty());
    }

    /// Stream every record of `path` onto `standby` the way the
    /// replication link does: full-journal read + apply.
    fn ship_full(standby: &SessionManager, path: &std::path::Path) -> ReplicatedStats {
        let replay = crate::journal::read_journal(path).unwrap();
        standby.apply_replicated(&replay.records)
    }

    #[test]
    fn apply_replicated_mirrors_a_stream_and_survives_resnapshots() {
        let adb = Arc::new(ADb::build(&mini_imdb()).unwrap());
        let path = journal_path("replicate_primary.journal");
        std::fs::remove_file(&path).ok();

        let primary = SessionManager::new(Arc::clone(&adb));
        primary.attach_journal(Journal::open(&path, FsyncPolicy::Flush).unwrap());
        let standby = SessionManager::new(Arc::clone(&adb));

        let s1 = primary.create_session();
        primary
            .apply_op(s1, &SessionOp::AddExample("Jim Carrey".into()))
            .unwrap();
        primary
            .apply_op(s1, &SessionOp::AddExample("Eddie Murphy".into()))
            .unwrap();
        let stats = ship_full(&standby, &path);
        assert_eq!(stats.sessions_installed, 1);
        assert_eq!(stats.records_failed, 0);
        let sql_at = |m: &SessionManager, id| {
            m.with_session(id, |s| Ok(s.discovery().unwrap().sql()))
                .unwrap()
        };
        assert_eq!(sql_at(&primary, s1), sql_at(&standby, s1));

        // The primary compacts: the stream re-snapshots from the rewritten
        // file. A standby already at the snapshot cursor must absorb the
        // whole section as skips — no doubled examples, identical SQL.
        let before = primary.journal_stats().unwrap().epoch;
        primary.compact_journal().unwrap().unwrap();
        assert_eq!(primary.journal_stats().unwrap().epoch, before + 1);
        let stats = ship_full(&standby, &path);
        assert_eq!(stats.records_applied, 0, "resnapshot overlap is all skips");
        assert_eq!(
            standby
                .with_session(s1, |s| Ok(s.examples().join("|")))
                .unwrap(),
            "Jim Carrey|Eddie Murphy"
        );
        assert_eq!(sql_at(&primary, s1), sql_at(&standby, s1));

        // Lag across a compaction: ops the standby never saw get compacted
        // into the snapshot section, so the re-snapshot must *reinstall*
        // the stale replica at the snapshot state.
        primary
            .apply_op(s1, &SessionOp::PinFilter("person:gender".into()))
            .ok();
        primary
            .apply_op(s1, &SessionOp::AddExample("Robin Williams".into()))
            .unwrap();
        primary.compact_journal().unwrap().unwrap();
        let stats = ship_full(&standby, &path);
        assert_eq!(stats.sessions_reinstalled, 1);
        assert_eq!(sql_at(&primary, s1), sql_at(&standby, s1));
        let cursor = |m: &SessionManager, id| m.with_session(id, |s| Ok(s.op_seq())).unwrap();
        assert_eq!(cursor(&primary, s1), cursor(&standby, s1));

        // End flows through; the zombie sweep drops sessions the stream no
        // longer mentions at all.
        let zombie = standby.create_session();
        primary.end_session(s1);
        ship_full(&standby, &path);
        assert!(!standby.contains_session(s1));
        let replay = crate::journal::read_journal(&path).unwrap();
        let keep: std::collections::HashSet<SessionId> =
            replay.records.iter().map(|(sid, _, _)| *sid).collect();
        assert_eq!(standby.retain_sessions(&keep), 1);
        assert!(!standby.contains_session(zombie));

        // A promoted standby hands out ids the old primary never used.
        let fresh = standby.create_session();
        assert!(fresh > s1);
        std::fs::remove_file(&path).ok();
    }
}
