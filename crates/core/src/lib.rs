//! # squid-core
//!
//! The SQuID system of Fariha & Meliou (VLDB 2019): semantic
//! similarity-aware query intent discovery by abductive reasoning.
//!
//! Given a handful of example values and an abduction-ready database
//! ([`squid_adb::ADb`]), [`Squid`] resolves the examples to entities
//! (disambiguating multi-matches), discovers the semantic contexts they
//! share (basic attributes, fact-hop properties, and derived aggregate
//! associations), and abduces the filter set that maximizes the query
//! posterior — producing an executable SPJAI query plus its result tuples.
//!
//! ```
//! use squid_adb::{test_fixtures, ADb};
//! use squid_core::{Squid, SquidParams};
//!
//! let db = test_fixtures::mini_imdb();
//! let adb = ADb::build(&db).unwrap();
//! let mut params = SquidParams::default();
//! params.tau_a = 3;
//! let squid = Squid::with_params(&adb, params);
//! let d = squid.discover(&["Jim Carrey", "Eddie Murphy"]).unwrap();
//! println!("{}", d.sql());
//! ```

#![warn(missing_docs)]

pub mod abduce;
pub mod alternatives;
pub mod context;
pub mod disambiguate;
pub mod error;
pub mod filter;
pub mod metrics;
pub mod params;
pub mod prior;
pub mod query_gen;
pub mod recommend;
pub mod squid;

pub use abduce::{abduce as abduce_filters, log_posterior, ScoredFilter};
pub use alternatives::{top_k_queries, AlternativeQuery};
pub use context::discover_contexts;
pub use disambiguate::{disambiguate, similarity_score};
pub use error::SquidError;
pub use filter::{CandidateFilter, FilterValue};
pub use metrics::Accuracy;
pub use params::SquidParams;
pub use query_gen::{adb_query, evaluate, original_query};
pub use recommend::{recommend_examples, uncertainty, Recommendation};
pub use squid::{Discovery, Squid};
