//! # squid-core
//!
//! The SQuID system of Fariha & Meliou (VLDB 2019): semantic
//! similarity-aware query intent discovery by abductive reasoning.
//!
//! Given example values and an abduction-ready database
//! ([`squid_adb::ADb`]), SQuID resolves the examples to entities
//! (disambiguating multi-matches), discovers the semantic contexts they
//! share (basic attributes, fact-hop properties, and derived aggregate
//! associations), and abduces the filter set that maximizes the query
//! posterior — producing an executable SPJAI query plus its result tuples.
//!
//! The primary API is the stateful [`SquidSession`], mirroring the paper's
//! Figure 1 interaction: drop examples in one at a time and the abduced
//! query refines after each, with per-example resolutions and per-property
//! intersection state cached so each update is O(properties). Sessions also
//! accept feedback: [`SquidSession::pin_filter`] /
//! [`SquidSession::ban_filter`] override abduction decisions, and
//! [`SquidSession::choose_entity`] overrides disambiguation. Many
//! concurrent sessions share one immutable αDB through a
//! [`SessionManager`]. The classic one-shot [`Squid`] API is kept as a thin
//! wrapper over a throwaway session.
//!
//! ```
//! use squid_adb::{test_fixtures, ADb};
//! use squid_core::{SquidParams, SquidSession};
//!
//! let db = test_fixtures::mini_imdb();
//! let adb = ADb::build(&db).unwrap();
//! let mut params = SquidParams::default();
//! params.tau_a = 3;
//! let mut session = SquidSession::with_params(&adb, params);
//! session.add_example("Jim Carrey").unwrap();
//! let delta = session.add_example("Eddie Murphy").unwrap();
//! println!("{}", delta.discovery.unwrap().sql());
//! ```

#![warn(missing_docs)]

pub mod abduce;
pub mod alternatives;
pub mod context;
pub mod disambiguate;
pub mod error;
pub mod filter;
pub mod journal;
pub mod manager;
pub mod metrics;
pub mod params;
pub mod prior;
pub mod query_gen;
pub mod recommend;
pub mod session;
pub mod squid;

pub use abduce::{abduce as abduce_filters, log_posterior, ScoredFilter};
pub use alternatives::{top_k_queries, AlternativeQuery};
pub use context::{discover_contexts, ContextState};
pub use disambiguate::{disambiguate, similarity_score};
pub use error::SquidError;
pub use filter::{CandidateFilter, FilterValue};
pub use journal::{
    read_journal, scan_records, CompactStats, FsyncPolicy, Journal, JournalReplay, JournalTail,
    SessionOp, TailBatch, TailPoll,
};
pub use manager::{
    JournalStats, RecoverStats, ReplicatedStats, SeqOutcome, SessionId, SessionManager,
    DEFAULT_SHARED_CACHE_BYTES,
};
pub use metrics::Accuracy;
pub use params::SquidParams;
pub use query_gen::{
    adb_query, evaluate, evaluate_cached, filter_fingerprint, filter_row_set, original_query,
};
pub use recommend::{recommend_examples, uncertainty, Recommendation, DEFAULT_MIN_UNCERTAINTY};
pub use session::{DiscoveryDelta, EvalCacheStats, SquidSession};
pub use squid::{Discovery, Squid};

// The fleet-wide evaluation-cache types live in `squid-adb` (next to the
// per-session `FilterSetCache`); re-export them so serving code that only
// depends on squid-core can configure and inspect the shared cache.
pub use squid_adb::{SharedCacheStats, SharedFilterSetCache};
