//! Entity disambiguation (paper Section 6.1.1).
//!
//! User examples are single-column strings that may match several entities
//! ("Titanic" matches four films). The key insight: the provided examples
//! are likely to be alike, so pick the mapping combination that maximizes
//! the semantic similarity across the resolved entities. Small candidate
//! products are searched exhaustively; larger ones greedily.

use squid_adb::{EntityProps, PropStats};
use squid_relation::RowId;

use crate::params::SquidParams;

/// Similarity score of a set of resolved entities: rare shared contexts
/// score higher. Categorical properties contribute their shared-value
/// count, numeric properties the tightness of the spanned range, derived
/// properties the (log-damped) minimum association strength of shared
/// values — "SQUID aims to increase the association strength".
pub fn similarity_score(entity: &EntityProps, rows: &[RowId]) -> f64 {
    if rows.len() < 2 {
        return 0.0;
    }
    let mut score = 0.0;
    for prop in &entity.props {
        match &prop.stats {
            PropStats::Categorical(s) => {
                let mut shared = s.values_of(rows[0]).to_vec();
                for &r in &rows[1..] {
                    let vals = s.values_of(r);
                    shared.retain(|v| vals.contains(v));
                    if shared.is_empty() {
                        break;
                    }
                }
                score += shared.len() as f64;
            }
            PropStats::Numeric(s) => {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                let mut all = true;
                for &r in rows {
                    match s.value_of(r) {
                        Some(x) => {
                            lo = lo.min(x);
                            hi = hi.max(x);
                        }
                        None => {
                            all = false;
                            break;
                        }
                    }
                }
                if all && lo.is_finite() {
                    score += 1.0 - s.coverage_range(lo, hi);
                }
            }
            PropStats::Derived(s) => {
                for &(v, c0) in s.counts_of(rows[0]) {
                    let mut theta = c0;
                    let mut shared = true;
                    for &r in &rows[1..] {
                        let c = s.count_of(r, &v);
                        if c == 0 {
                            shared = false;
                            break;
                        }
                        theta = theta.min(c);
                    }
                    if shared {
                        score += (1.0 + theta as f64).ln();
                    }
                }
            }
            PropStats::DerivedNumeric(_) => {} // skipped for cost
        }
    }
    score
}

/// Resolve each example's candidate rows to a single row per example.
///
/// `candidates[i]` holds the possible entity rows for example `i` (all
/// non-empty). Returns one chosen row per example.
pub fn disambiguate(
    entity: &EntityProps,
    candidates: &[Vec<RowId>],
    params: &SquidParams,
) -> Vec<RowId> {
    debug_assert!(candidates.iter().all(|c| !c.is_empty()));
    let combinations: usize = candidates
        .iter()
        .map(|c| c.len())
        .try_fold(1usize, |acc, k| acc.checked_mul(k))
        .unwrap_or(usize::MAX);
    if combinations == 1 {
        return candidates.iter().map(|c| c[0]).collect();
    }
    if combinations <= params.max_disambiguation_combinations {
        exhaustive(entity, candidates)
    } else {
        greedy(entity, candidates)
    }
}

fn exhaustive(entity: &EntityProps, candidates: &[Vec<RowId>]) -> Vec<RowId> {
    let mut best: Option<(f64, Vec<RowId>)> = None;
    let mut idx = vec![0usize; candidates.len()];
    loop {
        let assignment: Vec<RowId> = idx
            .iter()
            .enumerate()
            .map(|(i, &j)| candidates[i][j])
            .collect();
        let score = similarity_score(entity, &assignment);
        if best.as_ref().is_none_or(|(b, _)| score > *b) {
            best = Some((score, assignment));
        }
        // Advance the mixed-radix counter.
        let mut k = 0;
        loop {
            if k == candidates.len() {
                return best.unwrap().1;
            }
            idx[k] += 1;
            if idx[k] < candidates[k].len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

fn greedy(entity: &EntityProps, candidates: &[Vec<RowId>]) -> Vec<RowId> {
    // Anchor on the unambiguous examples, then resolve the ambiguous ones
    // in order of fewest candidates, each against the current partial set.
    let mut resolved: Vec<Option<RowId>> = candidates
        .iter()
        .map(|c| if c.len() == 1 { Some(c[0]) } else { None })
        .collect();
    let mut order: Vec<usize> = (0..candidates.len())
        .filter(|&i| resolved[i].is_none())
        .collect();
    order.sort_by_key(|&i| candidates[i].len());
    for i in order {
        let mut best: Option<(f64, RowId)> = None;
        for &cand in &candidates[i] {
            let mut rows: Vec<RowId> = resolved.iter().flatten().copied().collect();
            rows.push(cand);
            let score = if rows.len() >= 2 {
                similarity_score(entity, &rows)
            } else {
                0.0
            };
            if best.is_none_or(|(b, _)| score > b) {
                best = Some((score, cand));
            }
        }
        resolved[i] = Some(best.expect("non-empty candidates").1);
    }
    resolved.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use squid_adb::{test_fixtures, ADb};

    /// Jim Carrey (1) and Eddie Murphy (2) are similar (comedy actors);
    /// Stallone (4) is not like them.
    #[test]
    fn similar_entities_score_higher() {
        let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
        let e = adb.entity("person").unwrap();
        let jim = e.pk_to_row[&1];
        let eddie = e.pk_to_row[&2];
        let sly = e.pk_to_row[&4];
        let s_alike = similarity_score(e, &[jim, eddie]);
        let s_unalike = similarity_score(e, &[jim, sly]);
        assert!(s_alike > s_unalike, "{s_alike} vs {s_unalike}");
    }

    #[test]
    fn exhaustive_picks_the_coherent_mapping() {
        let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
        let e = adb.entity("person").unwrap();
        let jim = e.pk_to_row[&1];
        let eddie = e.pk_to_row[&2];
        let robin = e.pk_to_row[&3];
        let sly = e.pk_to_row[&4];
        // Example 0 is unambiguous (Jim); example 1 could be Eddie or
        // Stallone; example 2 is Robin. The comedy context favors Eddie.
        let chosen = disambiguate(
            e,
            &[vec![jim], vec![sly, eddie], vec![robin]],
            &SquidParams::default(),
        );
        assert_eq!(chosen, vec![jim, eddie, robin]);
    }

    #[test]
    fn unambiguous_input_short_circuits() {
        let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
        let e = adb.entity("person").unwrap();
        let rows = vec![vec![0], vec![1]];
        assert_eq!(disambiguate(e, &rows, &SquidParams::default()), vec![0, 1]);
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_input() {
        let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
        let e = adb.entity("person").unwrap();
        let jim = e.pk_to_row[&1];
        let eddie = e.pk_to_row[&2];
        let robin = e.pk_to_row[&3];
        let sly = e.pk_to_row[&4];
        let candidates = vec![vec![jim], vec![sly, eddie], vec![robin]];
        let ex = exhaustive(e, &candidates);
        let gr = greedy(e, &candidates);
        assert_eq!(ex, gr);
    }

    #[test]
    fn greedy_is_used_beyond_the_combination_budget() {
        let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
        let e = adb.entity("person").unwrap();
        let params = SquidParams {
            max_disambiguation_combinations: 1, // force greedy
            ..SquidParams::default()
        };
        let jim = e.pk_to_row[&1];
        let eddie = e.pk_to_row[&2];
        let sly = e.pk_to_row[&4];
        let chosen = disambiguate(e, &[vec![jim], vec![sly, eddie]], &params);
        assert_eq!(chosen.len(), 2);
        assert_eq!(chosen[0], jim);
    }
}
