//! Top-k alternative queries — ranking candidate filter subsets by query
//! posterior (an extension in the spirit of Section 2.1's "ranks the valid
//! queries based on a probabilistic abduction model").
//!
//! Algorithm 1 returns *the* maximum-posterior subset, but exposing the
//! runner-up queries lets an interface show "did you mean...?"
//! alternatives. Because decisions factorize, the k best subsets are
//! obtained by flipping decisions in order of their (log) confidence
//! margins — a classic k-best-over-independent-choices enumeration.

use crate::abduce::{log_posterior, ScoredFilter};

/// One alternative query: a subset of filters and its (relative) log
/// posterior.
#[derive(Debug, Clone, PartialEq)]
pub struct AlternativeQuery {
    /// Inclusion mask aligned with the `scored` slice.
    pub include: Vec<bool>,
    /// Log posterior (up to the shared constant).
    pub log_posterior: f64,
}

impl AlternativeQuery {
    /// Indices of the included filters.
    pub fn included_indices(&self) -> Vec<usize> {
        self.include
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Enumerate the `k` highest-posterior filter subsets, best first. The
/// first entry is always Algorithm 1's optimum.
///
/// The search frontier flips decisions in ascending margin order; with
/// independent decisions this enumerates subsets in exact posterior order
/// (standard k-best for independent binary choices).
pub fn top_k_queries(scored: &[ScoredFilter], k: usize) -> Vec<AlternativeQuery> {
    let n = scored.len();
    let best: Vec<bool> = scored.iter().map(|s| s.included).collect();
    if k == 0 {
        return Vec::new();
    }
    // Cost of flipping decision i away from the optimum (≥ 0).
    let mut costs: Vec<(f64, usize)> = scored
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let hi = s.include_score.max(s.exclude_score).max(1e-300);
            let lo = s.include_score.min(s.exclude_score).max(1e-300);
            (hi.ln() - lo.ln(), i)
        })
        .collect();
    costs.sort_by(|a, b| a.0.total_cmp(&b.0));

    // Best-first search over flip sets: a state is a sorted index list into
    // `costs`; successors extend or advance the last flip (Lawler-style).
    #[derive(PartialEq)]
    struct State {
        cost: f64,
        flips: Vec<usize>, // indices into `costs`, strictly increasing
    }
    impl Eq for State {}
    impl Ord for State {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other
                .cost
                .total_cmp(&self.cost)
                .then_with(|| other.flips.cmp(&self.flips))
        }
    }
    impl PartialOrd for State {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap = std::collections::BinaryHeap::new();
    heap.push(State {
        cost: 0.0,
        flips: Vec::new(),
    });
    let mut out = Vec::with_capacity(k.min(1 << n.min(20)));
    while let Some(state) = heap.pop() {
        // Materialize this subset.
        let mut include = best.clone();
        for &ci in &state.flips {
            let idx = costs[ci].1;
            include[idx] = !include[idx];
        }
        out.push(AlternativeQuery {
            log_posterior: log_posterior(scored, &include),
            include,
        });
        if out.len() >= k {
            break;
        }
        // Successors: extend with the next unused flip, or advance the last.
        let start = state.flips.last().map(|&l| l + 1).unwrap_or(0);
        if start < costs.len() {
            let mut extended = state.flips.clone();
            extended.push(start);
            heap.push(State {
                cost: state.cost + costs[start].0,
                flips: extended,
            });
        }
        if let Some(&last) = state.flips.last() {
            if last + 1 < costs.len() {
                let mut advanced = state.flips.clone();
                *advanced.last_mut().unwrap() = last + 1;
                heap.push(State {
                    cost: state.cost - costs[last].0 + costs[last + 1].0,
                    flips: advanced,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abduce::abduce;
    use crate::filter::{CandidateFilter, FilterValue};
    use crate::params::SquidParams;
    use squid_relation::Value;

    fn cat(attr: &str, selectivity: f64) -> CandidateFilter {
        CandidateFilter {
            prop_id: format!("p.{attr}").into(),
            attr_name: attr.into(),
            value: FilterValue::CatEq(Value::text("v")),
            selectivity,
            coverage: 0.1,
        }
    }

    fn scored() -> Vec<crate::abduce::ScoredFilter> {
        abduce(
            vec![cat("a", 0.05), cat("b", 0.4), cat("c", 0.9), cat("d", 0.3)],
            4,
            &SquidParams::default(),
        )
    }

    #[test]
    fn first_alternative_is_the_optimum() {
        let s = scored();
        let alts = top_k_queries(&s, 3);
        let algo1: Vec<bool> = s.iter().map(|x| x.included).collect();
        assert_eq!(alts[0].include, algo1);
    }

    #[test]
    fn posteriors_are_non_increasing() {
        let s = scored();
        let alts = top_k_queries(&s, 8);
        for w in alts.windows(2) {
            assert!(
                w[0].log_posterior >= w[1].log_posterior - 1e-9,
                "{} then {}",
                w[0].log_posterior,
                w[1].log_posterior
            );
        }
    }

    #[test]
    fn enumeration_is_exhaustive_and_exact_for_small_n() {
        let s = scored();
        let alts = top_k_queries(&s, 16);
        assert_eq!(alts.len(), 16);
        // Compare against brute force: every subset, sorted by posterior.
        let mut brute: Vec<f64> = (0..16u32)
            .map(|mask| {
                let include: Vec<bool> = (0..4).map(|i| mask & (1 << i) != 0).collect();
                log_posterior(&s, &include)
            })
            .collect();
        brute.sort_by(|a, b| b.total_cmp(a));
        for (alt, expected) in alts.iter().zip(&brute) {
            assert!(
                (alt.log_posterior - expected).abs() < 1e-9,
                "{} vs {}",
                alt.log_posterior,
                expected
            );
        }
    }

    #[test]
    fn k_zero_and_distinct_masks() {
        let s = scored();
        assert!(top_k_queries(&s, 0).is_empty());
        let alts = top_k_queries(&s, 10);
        let mut masks: Vec<&Vec<bool>> = alts.iter().map(|a| &a.include).collect();
        let n = masks.len();
        masks.sort();
        masks.dedup();
        assert_eq!(masks.len(), n, "subsets must be distinct");
    }

    #[test]
    fn included_indices_helper() {
        let alt = AlternativeQuery {
            include: vec![true, false, true],
            log_posterior: 0.0,
        };
        assert_eq!(alt.included_indices(), vec![0, 2]);
    }
}
