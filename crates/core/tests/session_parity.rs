//! Property tests pinning session/one-shot parity: adding examples
//! one-at-a-time through `SquidSession` — in any order, including an
//! add→remove→re-add round trip — must yield a `Discovery` identical to
//! `Squid::discover` on the full set.

use proptest::prelude::*;
use squid_adb::{test_fixtures, ADb};
use squid_core::{Discovery, Squid, SquidParams, SquidSession};

const IMDB_NAMES: &[&str] = &[
    "Jim Carrey",
    "Eddie Murphy",
    "Robin Williams",
    "Sylvester Stallone",
    "Arnold Schwarzenegger",
    "Ewan McGregor",
    "Julia Roberts",
    "Emma Stone",
];

const FIGURE6_NAMES: &[&str] = &[
    "Tom Cruise",
    "Clint Eastwood",
    "Tom Hanks",
    "Julia Roberts",
    "Emma Stone",
    "Julianne Moore",
];

/// Render every observable field of a discovery (scores included) so that
/// equality failures show exactly what drifted.
fn render(d: &Discovery) -> String {
    let scored: Vec<String> = d
        .scored
        .iter()
        .map(|s| {
            format!(
                "{} psi={:.12} prior={:.12} inc={} exc={:.12}",
                s.filter.describe(),
                s.filter.selectivity,
                s.prior,
                s.included,
                s.exclude_score
            )
        })
        .collect();
    let rows: Vec<usize> = d.rows.iter().collect();
    format!(
        "{}.{} examples={:?} scored={:?} sql={:?} adb={:?} rows={:?}",
        d.entity_table,
        d.projection_column,
        d.example_rows,
        scored,
        d.sql(),
        d.adb_query.as_ref().map(squid_engine::to_sql),
        rows
    )
}

/// Select a non-empty subset of `names` in a mask-and-rotation order.
fn pick(names: &'static [&'static str], mask: u8, rot: usize) -> Vec<&'static str> {
    let mut chosen: Vec<&'static str> = names
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1u8 << (i % 8)) != 0)
        .map(|(_, n)| *n)
        .collect();
    if chosen.is_empty() {
        chosen.push(names[rot % names.len()]);
    }
    let r = rot % chosen.len();
    chosen.rotate_left(r);
    chosen
}

fn check_parity(adb: &ADb, params: &SquidParams, examples: &[&str], round_trip_idx: usize) {
    let squid = Squid::with_params(adb, params.clone());
    let one_shot = squid.discover(examples).expect("one-shot discovery");

    // One-at-a-time adds.
    let mut session = SquidSession::with_params(adb, params.clone());
    for e in examples {
        session.add_example(e).expect("session add");
    }
    assert_eq!(
        render(session.discovery().expect("session discovery")),
        render(&one_shot),
        "incremental adds diverged from one-shot on {examples:?}"
    );

    // add → remove → re-add round trip of one example.
    let victim = examples[round_trip_idx % examples.len()];
    session.remove_example(victim).expect("session remove");
    if examples.len() > 1 {
        // The intermediate state equals one-shot discovery on the rest.
        let rest: Vec<&str> = {
            let mut rest = examples.to_vec();
            rest.remove(
                examples
                    .iter()
                    .position(|e| e == &victim)
                    .expect("victim present"),
            );
            rest
        };
        let partial = squid.discover(&rest).expect("one-shot on the rest");
        assert_eq!(
            render(session.discovery().expect("post-removal discovery")),
            render(&partial),
            "removal diverged from one-shot on {rest:?}"
        );
    }
    session.add_example(victim).expect("session re-add");
    assert_eq!(
        render(session.discovery().expect("post-round-trip discovery")),
        render(&one_shot),
        "add→remove→re-add diverged from one-shot on {examples:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mini-IMDb: random example subsets in random rotation order, default
    /// and low-τa parameter sets.
    #[test]
    fn imdb_session_matches_one_shot(mask in 1u8..=255, rot in 0usize..8, low_tau in any::<bool>()) {
        let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
        let params = if low_tau {
            SquidParams { tau_a: 3, ..SquidParams::default() }
        } else {
            SquidParams::default()
        };
        let examples = pick(IMDB_NAMES, mask, rot);
        check_parity(&adb, &params, &examples, rot);
    }

    /// Figure 6: the basic-filter fixture, with disjunctions enabled half
    /// the time (exercises the CatIn fallback path).
    #[test]
    fn figure6_session_matches_one_shot(mask in 1u8..=63, rot in 0usize..6, disj in any::<bool>()) {
        let adb = ADb::build(&test_fixtures::figure6_db()).unwrap();
        let params = SquidParams {
            allow_disjunction: disj,
            ..SquidParams::default()
        };
        let examples = pick(FIGURE6_NAMES, mask, rot);
        check_parity(&adb, &params, &examples, rot.wrapping_add(1));
    }
}
