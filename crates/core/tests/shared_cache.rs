//! Correctness of the fleet-wide shared evaluation cache: concurrent
//! sessions routing through one `SharedFilterSetCache` must be
//! *indistinguishable* from uncached postings enumeration — including
//! while byte-bound eviction churns entries mid-run and while αDB
//! generation bumps invalidate shards under the readers' feet.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use squid_adb::{test_fixtures, ADb, FilterSetCache, SharedFilterSetCache};
use squid_core::{
    discover_contexts, evaluate, evaluate_cached, CandidateFilter, FilterValue, SessionManager,
    Squid, SquidParams,
};
use squid_relation::{RowSet, Value};

fn adb() -> &'static ADb {
    static A: OnceLock<ADb> = OnceLock::new();
    A.get_or_init(|| ADb::build(&test_fixtures::mini_imdb()).unwrap())
}

/// ONE deliberately tiny shared cache for every proptest case and thread:
/// a stale entry (wrong generation, wrong fingerprint, or a set corrupted
/// by eviction bookkeeping) would surface as a parity failure in a later
/// case. ~2 KiB total across 16 shards keeps eviction churning constantly.
fn shared() -> &'static Arc<SharedFilterSetCache> {
    static C: OnceLock<Arc<SharedFilterSetCache>> = OnceLock::new();
    C.get_or_init(|| Arc::new(SharedFilterSetCache::new(adb().generation, 16 * 128)))
}

/// Random-but-deterministic filter set: contexts of an example-row subset,
/// perturbed (θ bumps, shifted bounds, absent values) by `tweak`.
fn filter_set(rows_mask: u8, subset: u16, tweak: u32) -> Vec<CandidateFilter> {
    let entity = adb().entity("person").unwrap();
    let rows: Vec<usize> = (0..8).filter(|i| rows_mask & (1 << i) != 0).collect();
    let params = SquidParams {
        allow_disjunction: true,
        ..SquidParams::default()
    };
    let mut filters: Vec<CandidateFilter> = discover_contexts(entity, &rows, &params)
        .into_iter()
        .enumerate()
        .filter(|(i, _)| subset & (1 << (i % 16)) != 0)
        .map(|(_, f)| f)
        .collect();
    for (i, f) in filters.iter_mut().enumerate() {
        let bit = |k: usize| tweak >> ((i + k) % 32) & 1 == 1;
        match &mut f.value {
            FilterValue::DerivedEq { theta, .. } if bit(0) => *theta += 1,
            FilterValue::NumRange(l, h) => {
                if bit(1) {
                    *l += 1.0;
                }
                if bit(2) {
                    *h -= 1.0;
                }
            }
            FilterValue::CatEq(v) if bit(3) => *v = Value::text("NoSuchValue"),
            _ => {}
        }
    }
    filters
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Three threads, three workloads, one shared cache under constant
    /// eviction pressure, with a mid-run αDB generation bump per thread:
    /// every cached evaluation must equal the uncached one.
    #[test]
    fn concurrent_shared_evaluation_matches_uncached(
        m0 in 1u8..=255u8,
        m1 in 1u8..=255u8,
        m2 in 1u8..=255u8,
        subset in any::<u16>(),
        tweak in any::<u32>(),
    ) {
        let adb = adb();
        let entity = adb.entity("person").unwrap();
        let shared = shared();
        let masks = [m0, m1, m2];
        let mismatches: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = masks
                .iter()
                .enumerate()
                .map(|(t, &mask)| {
                    scope.spawn(move || -> Option<String> {
                        // Overlap: each thread perturbs with a nearby tweak,
                        // so some fingerprints collide across threads (the
                        // sharing case) and some are thread-private.
                        let filters = filter_set(mask, subset, tweak ^ (t as u32 & 1));
                        let uncached = evaluate(entity, &filters);
                        let mut cache = FilterSetCache::new(adb.generation);
                        cache.attach_shared(Arc::clone(shared));
                        // Local level under pressure too.
                        cache.set_max_resident_bytes(512);
                        let check = |got: RowSet, phase: &str| -> Option<String> {
                            (got != uncached).then(|| {
                                format!("thread {t} {phase}: {got:?} != {uncached:?}")
                            })
                        };
                        for phase in ["cold", "warm"] {
                            let got = evaluate_cached(entity, &filters, &mut cache);
                            if let Some(m) = check(got, phase) {
                                return Some(m);
                            }
                        }
                        // Generation bump mid-run: the local cache clears,
                        // shared shards invalidate lazily on access, and
                        // parity must survive both directions.
                        cache.revalidate(adb.generation + 1 + t as u64);
                        let got = evaluate_cached(entity, &filters, &mut cache);
                        if let Some(m) = check(got, "bumped generation") {
                            return Some(m);
                        }
                        cache.revalidate(adb.generation);
                        let got = evaluate_cached(entity, &filters, &mut cache);
                        check(got, "restored generation")
                    })
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|h| h.join().expect("worker thread"))
                .collect()
        });
        prop_assert!(mismatches.is_empty(), "{mismatches:?}");
        let stats = shared.stats();
        prop_assert!(
            stats.resident_bytes <= stats.max_resident_bytes,
            "shared residency {} exceeds bound {}",
            stats.resident_bytes,
            stats.max_resident_bytes
        );
    }
}

/// A manager fleet with adversarially tiny cache bounds (both levels)
/// still answers every slate exactly like the uncached one-shot path,
/// from concurrent threads, with residency pinned under the caps.
#[test]
fn tiny_bounded_fleet_matches_one_shot() {
    let adb = Arc::new(ADb::build(&test_fixtures::mini_imdb()).unwrap());
    let m = SessionManager::new(Arc::clone(&adb))
        .with_shared_cache_bytes(16 * 160)
        .with_session_cache_bytes(512);
    let slates: Vec<Vec<&str>> = vec![
        vec!["Jim Carrey", "Eddie Murphy"],
        vec!["Sylvester Stallone", "Arnold Schwarzenegger"],
        vec!["Julia Roberts", "Emma Stone"],
        vec!["Jim Carrey", "Robin Williams"],
    ];
    // Several rounds so later sessions run against a churned shared cache.
    for _ in 0..3 {
        let results: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = slates
                .iter()
                .map(|slate| {
                    let m = &m;
                    scope.spawn(move || {
                        let id = m.create_session();
                        let sql = m
                            .with_session(id, |s| {
                                for e in slate {
                                    s.add_example(e)?;
                                }
                                Ok(s.discovery().unwrap().sql())
                            })
                            .unwrap();
                        m.end_session(id);
                        sql
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let squid = Squid::new(&adb);
        for (slate, sql) in slates.iter().zip(&results) {
            assert_eq!(&squid.discover(slate).unwrap().sql(), sql);
        }
        let stats = m.shared_cache_stats().unwrap();
        assert!(stats.resident_bytes <= stats.max_resident_bytes);
    }
    let stats = m.shared_cache_stats().unwrap();
    assert!(
        stats.evictions > 0,
        "the tiny bound must have forced evictions: {stats:?}"
    );
}
