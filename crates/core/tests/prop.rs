//! Property-based tests for the abduction core: Theorem 1 optimality
//! against random subsets, prior monotonicity, and the validity invariant
//! (E ⊆ Qϕ(D)) on random example draws from the miniature IMDb.

use proptest::prelude::*;
use squid_adb::{test_fixtures, ADb};
use squid_core::{
    abduce_filters, discover_contexts, evaluate, log_posterior, Accuracy, CandidateFilter,
    FilterValue, SquidParams,
};
use squid_relation::Value;

fn arb_filter() -> impl Strategy<Value = CandidateFilter> {
    (
        0usize..6,
        0.0f64..=1.0,
        0.0f64..=1.0,
        prop_oneof![Just(None), (1u64..60).prop_map(Some),],
    )
        .prop_map(|(prop, selectivity, coverage, theta)| CandidateFilter {
            prop_id: format!("prop{prop}").into(),
            attr_name: format!("attr{prop}").into(),
            value: match theta {
                None => FilterValue::CatEq(Value::text("v")),
                Some(t) => FilterValue::DerivedEq {
                    value: Value::text("v"),
                    theta: t,
                },
            },
            selectivity,
            coverage,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1: Algorithm 1's subset maximizes the log posterior over
    /// random alternative subsets.
    #[test]
    fn abduction_beats_random_subsets(
        filters in prop::collection::vec(arb_filter(), 1..10),
        examples in 1usize..20,
        flips in prop::collection::vec(any::<bool>(), 10),
    ) {
        let params = SquidParams::default();
        let scored = abduce_filters(filters, examples, &params);
        let chosen: Vec<bool> = scored.iter().map(|s| s.included).collect();
        let best = log_posterior(&scored, &chosen);
        let alt: Vec<bool> = (0..scored.len()).map(|i| flips[i % flips.len()]).collect();
        let lp = log_posterior(&scored, &alt);
        prop_assert!(lp <= best + 1e-9, "{lp} > {best}");
    }

    /// More examples can only make inclusion easier (the exclude score
    /// shrinks), never flip an included filter out.
    #[test]
    fn inclusion_is_monotone_in_examples(
        filter in arb_filter(),
        examples in 1usize..30,
    ) {
        let params = SquidParams::default();
        let small = abduce_filters(vec![filter.clone()], examples, &params);
        let large = abduce_filters(vec![filter], examples + 5, &params);
        if small[0].included {
            prop_assert!(large[0].included);
        }
    }

    /// Selectivity 1 filters are never included (observing them carries no
    /// information).
    #[test]
    fn trivial_filters_are_never_included(
        mut filter in arb_filter(),
        examples in 1usize..30,
    ) {
        filter.selectivity = 1.0;
        let params = SquidParams::default();
        let scored = abduce_filters(vec![filter], examples, &params);
        prop_assert!(!scored[0].included);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On the miniature IMDb, any non-empty example subset yields filters
    /// that (a) all examples satisfy and (b) produce a result containing
    /// the examples — Definition 2.1's containment constraint.
    #[test]
    fn discovered_queries_contain_their_examples(mask in 1u8..=255) {
        let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
        let entity = adb.entity("person").unwrap();
        let rows: Vec<usize> = (0..8)
            .filter(|i| mask & (1 << i) != 0)
            .collect();
        let params = SquidParams::default();
        let candidates = discover_contexts(entity, &rows, &params);
        // Validity (Definition 3.1 / Lemma 3.1).
        for f in &candidates {
            let prop = entity.property(f.prop_id).unwrap();
            for &r in &rows {
                prop_assert!(f.matches_row(prop, r), "{} fails on {r}", f.describe());
            }
        }
        // Containment of the full abduced filter set.
        let scored = abduce_filters(candidates, rows.len(), &params);
        let chosen: Vec<_> = scored
            .iter()
            .filter(|s| s.included)
            .map(|s| s.filter.clone())
            .collect();
        let result = evaluate(entity, &chosen);
        for r in &rows {
            prop_assert!(result.contains(*r));
        }
    }

    /// Accuracy metrics stay within [0, 1] and f ≤ 2·min(p, r).
    #[test]
    fn accuracy_bounds(
        inferred in prop::collection::btree_set(0usize..50, 0..30),
        intended in prop::collection::btree_set(0usize..50, 0..30),
    ) {
        let inferred: squid_relation::RowSet = inferred.into_iter().collect();
        let intended: squid_relation::RowSet = intended.into_iter().collect();
        let a = Accuracy::of(&inferred, &intended);
        prop_assert!((0.0..=1.0).contains(&a.precision));
        prop_assert!((0.0..=1.0).contains(&a.recall));
        prop_assert!((0.0..=1.0).contains(&a.f_score));
        prop_assert!(a.f_score <= 2.0 * a.precision.min(a.recall) + 1e-12);
    }
}
