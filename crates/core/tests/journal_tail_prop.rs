//! Property: a [`JournalTail`] resumed from *any* byte offset — record
//! boundaries, mid-record, mid-header, past the end — snaps to a valid
//! boundary and yields a record stream whose replay (prefix records +
//! tailed records through `apply_replicated`) is fingerprint-identical
//! to a full journal recovery. With compaction racing the tail, the
//! epoch-guard discipline (re-read [`JournalStats::epoch`] around each
//! poll, restart the stream when it moves) converges to the same state.
//! This is the exact contract the replication sender stands on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use squid_adb::{test_fixtures, ADb};
use squid_core::{
    scan_records, FsyncPolicy, Journal, JournalTail, SessionManager, SessionOp, TailPoll,
};

const NAMES: &[&str] = &[
    "Jim Carrey",
    "Eddie Murphy",
    "Robin Williams",
    "Julia Roberts",
    "Emma Stone",
    "Sylvester Stallone",
    "Arnold Schwarzenegger",
];

const FILTERS: &[&str] = &["person:gender", "person:age_group", "movie:genre"];

#[derive(Debug, Clone)]
struct Step {
    session: usize,
    op: SessionOp,
}

fn arb_op() -> impl Strategy<Value = SessionOp> {
    prop_oneof![
        (0usize..NAMES.len()).prop_map(|i| SessionOp::AddExample(NAMES[i].into())),
        (0usize..NAMES.len()).prop_map(|i| SessionOp::RemoveExample(NAMES[i].into())),
        (0usize..FILTERS.len()).prop_map(|i| SessionOp::PinFilter(FILTERS[i].into())),
        (0usize..FILTERS.len()).prop_map(|i| SessionOp::BanFilter(FILTERS[i].into())),
        (0usize..FILTERS.len()).prop_map(|i| SessionOp::UnpinFilter(FILTERS[i].into())),
        (0usize..FILTERS.len()).prop_map(|i| SessionOp::UnbanFilter(FILTERS[i].into())),
    ]
}

fn arb_step() -> impl Strategy<Value = Step> {
    (0usize..2, arb_op()).prop_map(|(session, op)| Step { session, op })
}

fn adb() -> Arc<ADb> {
    Arc::new(ADb::build(&test_fixtures::mini_imdb()).unwrap())
}

fn temp(tag: &str, case: u32) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("squid_tail_prop");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}-{}-{:?}-{case}.journal",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Everything observable about a fleet, for equality checks.
fn fingerprint(m: &SessionManager) -> Vec<(u64, u64, String, Option<String>)> {
    let mut ids = m.active_ids();
    ids.sort_unstable();
    ids.iter()
        .map(|&id| {
            let (seq, examples, sql) = m
                .with_session(id, |s| {
                    Ok((
                        s.op_seq(),
                        s.examples().join("|"),
                        s.discovery().map(|d| d.sql()),
                    ))
                })
                .unwrap();
            (id, seq, examples, sql)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Quiescent file: every resume offset — chosen uniformly over the
    /// whole byte range, so usually mid-record — snaps down to a record
    /// boundary, and prefix + tail replays to the recovered state.
    #[test]
    fn any_resume_offset_replays_to_the_recovered_state(
        steps in prop::collection::vec(arb_step(), 1..40),
        offset_sel in any::<usize>(),
        case in any::<u32>(),
    ) {
        let adb = adb();
        let path = temp("resume", case);
        let _ = std::fs::remove_file(&path);

        let live = SessionManager::new(Arc::clone(&adb));
        live.attach_journal(Journal::open(&path, FsyncPolicy::Flush).unwrap());
        let s = [live.create_session(), live.create_session()];
        for step in &steps {
            let _ = live.apply_op(s[step.session], &step.op);
        }
        live.journal_sync().unwrap();
        drop(live);

        let bytes = std::fs::read(&path).unwrap();
        let (full_records, valid) = scan_records(&bytes);
        prop_assert_eq!(valid, bytes.len() as u64, "journal must be fully valid");

        // An arbitrary offset, record-aligned or not, even past the end.
        let offset = (offset_sel % (bytes.len() + 2)) as u64;
        let (mut tail, prefix_len) = JournalTail::resume(&path, offset).unwrap();
        let batch = match tail.poll().unwrap() {
            TailPoll::Records(b) => b,
            TailPoll::Truncated => panic!("quiescent file cannot truncate"),
        };

        // The snapped position is a real boundary at or below the ask...
        prop_assert!(batch.start_offset <= offset.min(valid));
        let (prefix_records, prefix_valid) = scan_records(&bytes[..batch.start_offset as usize]);
        prop_assert_eq!(prefix_valid, batch.start_offset, "snap must be a record boundary");
        prop_assert_eq!(prefix_records.len() as u64, prefix_len);

        // ...and prefix + tailed records is exactly the full stream.
        let mut combined = prefix_records.clone();
        combined.extend(batch.records.iter().cloned());
        prop_assert_eq!(&combined, &full_records);
        prop_assert_eq!(batch.end_offset, valid);

        // Replaying that stream the way a standby does lands on the same
        // fleet as a plain recovery.
        let replica = SessionManager::new(Arc::clone(&adb));
        replica.apply_replicated(&prefix_records);
        replica.apply_replicated(&batch.records);
        let recovered = SessionManager::new(Arc::clone(&adb));
        recovered.recover(&path, FsyncPolicy::Flush).unwrap();
        prop_assert_eq!(
            fingerprint(&replica),
            fingerprint(&recovered),
            "tailed replay diverged from recovery"
        );

        let _ = std::fs::remove_file(&path);
    }
}

proptest! {
    // Each case spawns a compaction thread; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Compaction racing the tail: a poller that restarts its stream
    /// whenever the journal epoch moves (or the tail reports truncation)
    /// still converges on the recovered state — offsets never lie within
    /// an epoch, and an epoch change is always observable.
    #[test]
    fn tailing_across_concurrent_compaction_converges(
        steps in prop::collection::vec(arb_step(), 8..60),
        start in 0u64..256,
        compact_every in 3usize..8,
        case in any::<u32>(),
    ) {
        let adb = adb();
        let path = temp("race", case);
        let _ = std::fs::remove_file(&path);

        let live = SessionManager::new(Arc::clone(&adb));
        live.attach_journal(Journal::open(&path, FsyncPolicy::Flush).unwrap());
        let s = [live.create_session(), live.create_session()];

        // Writer: random ops with periodic compactions, racing the tail.
        let done = AtomicBool::new(false);
        let mut acc: Vec<(u64, u64, SessionOp)> = Vec::new();
        std::thread::scope(|scope| {
            let live = &live;
            let done = &done;
            let steps = &steps;
            scope.spawn(move || {
                for (i, step) in steps.iter().enumerate() {
                    let _ = live.apply_op(s[step.session], &step.op);
                    if i % compact_every == compact_every - 1 {
                        let _ = live.compact_journal();
                    }
                }
                let _ = live.journal_sync();
                done.store(true, Ordering::Release);
            });

            // Tailer: the replication sender's epoch-guard discipline.
            let mut epoch = live.journal_stats().unwrap().epoch;
            let mut tail = JournalTail::resume(&path, start)
                .map(|(t, skipped)| {
                    // Records before the resume point count as consumed;
                    // reconstruct them from the file like a SNAP would.
                    let bytes = std::fs::read(&path).unwrap_or_default();
                    let (records, _) = scan_records(&bytes);
                    acc.extend(records.into_iter().take(skipped as usize));
                    t
                })
                .unwrap();
            loop {
                let writer_done = done.load(Ordering::Acquire);
                let before = live.journal_stats().unwrap().epoch;
                let poll = tail.poll().unwrap();
                let after = live.journal_stats().unwrap().epoch;
                let restart = before != epoch || after != before;
                match poll {
                    TailPoll::Records(batch) if !restart => {
                        acc.extend(batch.records);
                        if writer_done && before == after {
                            break;
                        }
                    }
                    // Epoch moved or the file shrank: everything streamed
                    // so far is superseded by the compacted file.
                    _ => {
                        acc.clear();
                        tail = JournalTail::new(&path);
                        epoch = after;
                    }
                }
            }
        });

        let replica = SessionManager::new(Arc::clone(&adb));
        replica.apply_replicated(&acc);
        let recovered = SessionManager::new(Arc::clone(&adb));
        recovered.recover(&path, FsyncPolicy::Flush).unwrap();
        prop_assert_eq!(
            fingerprint(&replica),
            fingerprint(&recovered),
            "epoch-guarded tail replay diverged from recovery"
        );

        let _ = std::fs::remove_file(&path);
    }
}
