//! Property: recovery from a compacted journal is indistinguishable from
//! recovery from the full journal it replaced — same live sessions, same
//! examples, same abduced SQL, same sequence cursors — on random session
//! op sequences (including ops that fail and are therefore never
//! journaled, removed examples, ended sessions, and feedback churn).

use std::sync::Arc;

use proptest::prelude::*;
use squid_adb::{test_fixtures, ADb};
use squid_core::{FsyncPolicy, Journal, SessionManager, SessionOp};

const NAMES: &[&str] = &[
    "Jim Carrey",
    "Eddie Murphy",
    "Robin Williams",
    "Julia Roberts",
    "Emma Stone",
    "Sylvester Stallone",
    "Arnold Schwarzenegger",
];

const FILTERS: &[&str] = &["person:gender", "person:age_group", "movie:genre"];

/// A script step: which session (0 or 1) does what.
#[derive(Debug, Clone)]
struct Step {
    session: usize,
    op: SessionOp,
}

fn arb_op() -> impl Strategy<Value = SessionOp> {
    prop_oneof![
        (0usize..NAMES.len()).prop_map(|i| SessionOp::AddExample(NAMES[i].into())),
        (0usize..NAMES.len()).prop_map(|i| SessionOp::RemoveExample(NAMES[i].into())),
        (0usize..FILTERS.len()).prop_map(|i| SessionOp::PinFilter(FILTERS[i].into())),
        (0usize..FILTERS.len()).prop_map(|i| SessionOp::BanFilter(FILTERS[i].into())),
        (0usize..FILTERS.len()).prop_map(|i| SessionOp::UnpinFilter(FILTERS[i].into())),
        (0usize..FILTERS.len()).prop_map(|i| SessionOp::UnbanFilter(FILTERS[i].into())),
        Just(SessionOp::SetTarget {
            table: "person".into(),
            column: "name".into(),
        }),
        Just(SessionOp::SetTargetAuto),
    ]
}

fn arb_step() -> impl Strategy<Value = Step> {
    (0usize..2, arb_op()).prop_map(|(session, op)| Step { session, op })
}

fn adb() -> Arc<ADb> {
    Arc::new(ADb::build(&test_fixtures::mini_imdb()).unwrap())
}

fn temp(tag: &str, case: u32) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("squid_compact_prop");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}-{}-{:?}-{case}.journal",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Everything observable about a recovered fleet, for equality checks.
fn fingerprint(m: &SessionManager, ids: &[u64]) -> Vec<(u64, u64, String, Option<String>)> {
    ids.iter()
        .map(|&id| {
            let (seq, examples, sql) = m
                .with_session(id, |s| {
                    Ok((
                        s.op_seq(),
                        s.examples().join("|"),
                        s.discovery().map(|d| d.sql()),
                    ))
                })
                .unwrap();
            (id, seq, examples, sql)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compacted_replay_equals_full_replay(
        steps in prop::collection::vec(arb_step(), 1..40),
        end_second in any::<bool>(),
        case in any::<u32>(),
    ) {
        let adb = adb();
        let full_path = temp("full", case);
        let compact_path = temp("compact", case);
        let _ = std::fs::remove_file(&full_path);
        let _ = std::fs::remove_file(&compact_path);

        // Live fleet: two sessions worked by a random script. Failed ops
        // are never journaled, so errors are simply skipped.
        let live = SessionManager::new(Arc::clone(&adb));
        live.attach_journal(Journal::open(&full_path, FsyncPolicy::Flush).unwrap());
        let s = [live.create_session(), live.create_session()];
        for step in &steps {
            let _ = live.apply_op(s[step.session], &step.op);
        }
        if end_second {
            live.end_session(s[1]);
        }
        live.journal_sync().unwrap();

        // Preserve the full journal, then compact the original in place.
        std::fs::copy(&full_path, &compact_path).unwrap();
        let stats = live.compact_journal().unwrap().expect("journal attached");
        prop_assert_eq!(stats.sessions, if end_second { 1 } else { 2 });
        drop(live);

        // Recover once from each journal; the fleets must be identical.
        let from_compact = SessionManager::new(Arc::clone(&adb));
        from_compact.recover(&full_path, FsyncPolicy::Flush).unwrap();
        let from_full = SessionManager::new(Arc::clone(&adb));
        from_full.recover(&compact_path, FsyncPolicy::Flush).unwrap();

        prop_assert_eq!(from_compact.active_ids(), from_full.active_ids());
        let ids = from_compact.active_ids();
        prop_assert_eq!(
            fingerprint(&from_compact, &ids),
            fingerprint(&from_full, &ids),
            "compacted-journal fleet diverged from full-journal fleet"
        );

        let _ = std::fs::remove_file(&full_path);
        let _ = std::fs::remove_file(&compact_path);
    }
}
