//! Correctness of the cross-turn evaluation cache: cached evaluation must
//! be *indistinguishable* from uncached postings enumeration for every
//! filter set — including perturbed θs, shifted (even inverted) numeric
//! bounds, and values absent from the active domain — and session turns
//! that repeat filters must serve them from resident bitmaps.

use std::sync::{Mutex, OnceLock};

use proptest::prelude::*;
use squid_adb::{test_fixtures, ADb, FilterSetCache};
use squid_core::{
    discover_contexts, evaluate, evaluate_cached, CandidateFilter, FilterValue, SquidParams,
    SquidSession,
};
use squid_relation::Value;

fn adb() -> &'static ADb {
    static A: OnceLock<ADb> = OnceLock::new();
    A.get_or_init(|| ADb::build(&test_fixtures::mini_imdb()).unwrap())
}

/// ONE cache shared by every proptest case: stale-entry bugs (a fingerprint
/// colliding across distinct filters, or a set surviving a perturbation it
/// shouldn't) would surface as a parity failure in a later case.
fn shared_cache() -> &'static Mutex<FilterSetCache> {
    static C: OnceLock<Mutex<FilterSetCache>> = OnceLock::new();
    C.get_or_init(|| Mutex::new(FilterSetCache::new(adb().generation)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Cached `evaluate` ≡ uncached postings enumeration, cold and warm,
    /// across random (and randomly perturbed) filter sets.
    #[test]
    fn cached_evaluate_matches_uncached(
        rows_mask in 1u8..=255,
        subset in any::<u16>(),
        tweak in any::<u32>(),
    ) {
        let adb = adb();
        let entity = adb.entity("person").unwrap();
        let rows: Vec<usize> = (0..8).filter(|i| rows_mask & (1 << i) != 0).collect();
        let params = SquidParams {
            allow_disjunction: true,
            ..SquidParams::default()
        };
        let mut filters: Vec<CandidateFilter> = discover_contexts(entity, &rows, &params)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| subset & (1 << (i % 16)) != 0)
            .map(|(_, f)| f)
            .collect();
        // Perturbations: raised θ, shifted/inverted bounds, absent values.
        for (i, f) in filters.iter_mut().enumerate() {
            let bit = |k: usize| tweak >> ((i + k) % 32) & 1 == 1;
            match &mut f.value {
                FilterValue::DerivedEq { theta, .. } if bit(0) => *theta += 1,
                FilterValue::NumRange(l, h) => {
                    if bit(1) {
                        *l += 1.0; // may inverted-range to emptiness
                    }
                    if bit(2) {
                        *h -= 1.0;
                    }
                }
                FilterValue::CatEq(v) if bit(3) => *v = Value::text("NoSuchValue"),
                _ => {}
            }
        }
        let uncached = evaluate(entity, &filters);
        let mut cache = shared_cache().lock().unwrap();
        let cold = evaluate_cached(entity, &filters, &mut cache);
        prop_assert_eq!(&cold, &uncached);
        // Warm repeat: same result, and nothing new is admitted.
        let misses_after_cold = cache.misses();
        let warm = evaluate_cached(entity, &filters, &mut cache);
        prop_assert_eq!(&warm, &uncached);
        prop_assert_eq!(cache.misses(), misses_after_cold);
    }
}

/// A remove → re-add round trip returns to the identical discovery with
/// the re-added turn's filters served from resident bitmaps.
#[test]
fn re_add_turn_is_served_from_the_cache() {
    let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
    let params = SquidParams {
        tau_a: 3,
        ..SquidParams::default()
    };
    let mut session = SquidSession::with_params(&adb, params);
    for e in ["Jim Carrey", "Eddie Murphy", "Robin Williams"] {
        session.add_example(e).unwrap();
    }
    let before = session.discovery().unwrap();
    let (rows_before, sql_before) = (before.rows.clone(), before.sql());
    session.remove_example("Robin Williams").unwrap();
    let delta = session.add_example("Robin Williams").unwrap();
    assert!(
        delta.cache_hits > 0,
        "re-added filters must hit the cache: {delta:?}"
    );
    let after = session.discovery().unwrap();
    assert_eq!(after.rows, rows_before);
    assert_eq!(after.sql(), sql_before);
}

/// A repeated pin (feedback toggle) is a pure cache hit: the second pin of
/// the same key computes nothing new and reproduces the first pin's rows.
#[test]
fn repeated_pin_toggle_hits_the_cache() {
    let adb = ADb::build(&test_fixtures::mini_imdb()).unwrap();
    let mut session = SquidSession::new(&adb);
    session.add_example("Jim Carrey").unwrap();
    session.add_example("Eddie Murphy").unwrap();
    let first = session.pin_filter("gender").unwrap();
    let pinned_rows = first.discovery.as_ref().unwrap().rows.clone();
    session.unpin_filter("gender").unwrap();
    let second = session.pin_filter("gender").unwrap();
    assert!(second.cache_hits > 0, "second pin must hit: {second:?}");
    assert_eq!(second.cache_misses, 0, "second pin admits nothing new");
    assert_eq!(second.discovery.unwrap().rows, pinned_rows);
    let stats = session.cache_stats();
    assert!(stats.entries > 0);
    assert!(stats.resident_bytes > 0);
    assert!(stats.hits >= second.cache_hits);
}

/// Sessions report truthful cache statistics, and a cache re-bound to a
/// different αDB generation drops its entries instead of serving them.
#[test]
fn cache_generation_invalidation() {
    let adb_a = ADb::build(&test_fixtures::mini_imdb()).unwrap();
    let adb_b = ADb::build(&test_fixtures::mini_imdb()).unwrap();
    assert_ne!(adb_a.generation, adb_b.generation);
    let entity = adb_a.entity("person").unwrap();
    let params = SquidParams::default();
    let filters = discover_contexts(entity, &[0, 1], &params);
    let mut cache = FilterSetCache::new(adb_a.generation);
    evaluate_cached(entity, &filters, &mut cache);
    assert!(cache.entries() > 0);
    cache.revalidate(adb_a.generation);
    assert!(cache.entries() > 0, "same generation keeps entries");
    cache.revalidate(adb_b.generation);
    assert_eq!(cache.entries(), 0, "new generation drops entries");
    assert_eq!(cache.generation(), adb_b.generation);
}
