//! Small hand-built databases used by tests across the workspace (a
//! miniature IMDb in the shape of the paper's Figure 2, and the Figure 6
//! sample table). Public so downstream crates' tests and examples can reuse
//! them; not part of the stable API.

use squid_relation::{Column, DataType, Database, TableRole, TableSchema, Value};

/// Miniature IMDb-shaped database:
///
/// * `person(id, name, gender, country, birth_year)` — entity
/// * `movie(id, title, year, country)` — entity
/// * `genre(id, name)` — property
/// * `castinfo(person_id, movie_id, role)` — fact
/// * `movietogenre(movie_id, genre_id)` — fact
///
/// Persons 1–3 are prolific Comedy actors; 4–5 are Action actors; 6 appears
/// in everything a little. Movies 0–5 are Comedy, 6–8 Action, 9 Drama.
pub fn mini_imdb() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "person",
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::new("gender", DataType::Text),
                Column::new("country", DataType::Text),
                Column::new("birth_year", DataType::Int),
            ],
        )
        .with_primary_key("id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "movie",
            vec![
                Column::new("id", DataType::Int),
                Column::new("title", DataType::Text),
                Column::new("year", DataType::Int),
                Column::new("country", DataType::Text),
            ],
        )
        .with_primary_key("id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "genre",
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
            ],
        )
        .with_primary_key("id")
        .with_role(TableRole::Property),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "castinfo",
            vec![
                Column::new("person_id", DataType::Int),
                Column::new("movie_id", DataType::Int),
                Column::new("role", DataType::Text),
            ],
        )
        .with_role(TableRole::Fact)
        .with_foreign_key("person_id", "person", 0)
        .with_foreign_key("movie_id", "movie", 0),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "movietogenre",
            vec![
                Column::new("movie_id", DataType::Int),
                Column::new("genre_id", DataType::Int),
            ],
        )
        .with_role(TableRole::Fact)
        .with_foreign_key("movie_id", "movie", 0)
        .with_foreign_key("genre_id", "genre", 0),
    )
    .unwrap();
    db.meta.exclude("person", "name");
    db.meta.exclude("movie", "title");

    let persons: &[(i64, &str, &str, &str, i64)] = &[
        (1, "Jim Carrey", "Male", "USA", 1962),
        (2, "Eddie Murphy", "Male", "USA", 1961),
        (3, "Robin Williams", "Male", "USA", 1951),
        (4, "Sylvester Stallone", "Male", "USA", 1946),
        (5, "Arnold Schwarzenegger", "Male", "Austria", 1947),
        (6, "Ewan McGregor", "Male", "UK", 1971),
        (7, "Julia Roberts", "Female", "USA", 1967),
        (8, "Emma Stone", "Female", "USA", 1988),
    ];
    for &(id, name, g, c, y) in persons {
        db.insert(
            "person",
            vec![
                Value::Int(id),
                Value::text(name),
                Value::text(g),
                Value::text(c),
                Value::Int(y),
            ],
        )
        .unwrap();
    }

    let movies: &[(i64, &str, i64, &str)] = &[
        (0, "Funny One", 1994, "USA"),
        (1, "Funny Two", 1996, "USA"),
        (2, "Funny Three", 1998, "USA"),
        (3, "Funny Four", 2000, "USA"),
        (4, "Funny Five", 2002, "USA"),
        (5, "Funny Six", 2004, "UK"),
        (6, "Boom One", 1988, "USA"),
        (7, "Boom Two", 1991, "USA"),
        (8, "Boom Three", 1993, "USA"),
        (9, "Sad One", 2005, "USA"),
    ];
    for &(id, t, y, c) in movies {
        db.insert(
            "movie",
            vec![
                Value::Int(id),
                Value::text(t),
                Value::Int(y),
                Value::text(c),
            ],
        )
        .unwrap();
    }

    for (id, name) in [(0, "Comedy"), (1, "Action"), (2, "Drama"), (3, "Fantasy")] {
        db.insert("genre", vec![Value::Int(id), Value::text(name)])
            .unwrap();
    }
    // Movie genres: 0-5 Comedy, 6-8 Action, 9 Drama; movie 5 also Fantasy.
    let m2g: &[(i64, i64)] = &[
        (0, 0),
        (1, 0),
        (2, 0),
        (3, 0),
        (4, 0),
        (5, 0),
        (5, 3),
        (6, 1),
        (7, 1),
        (8, 1),
        (9, 2),
    ];
    for &(m, g) in m2g {
        db.insert("movietogenre", vec![Value::Int(m), Value::Int(g)])
            .unwrap();
    }

    // Cast: comedy actors 1-3 appear in 4-5 comedies each; action actors 4-5
    // in the three action movies; 6 dabbles; 7-8 in the drama.
    let cast: &[(i64, i64, &str)] = &[
        (1, 0, "actor"),
        (1, 1, "actor"),
        (1, 2, "actor"),
        (1, 3, "actor"),
        (1, 4, "actor"),
        (2, 0, "actor"),
        (2, 1, "actor"),
        (2, 2, "actor"),
        (2, 4, "actor"),
        (3, 1, "actor"),
        (3, 2, "actor"),
        (3, 3, "actor"),
        (3, 5, "actor"),
        (4, 6, "actor"),
        (4, 7, "actor"),
        (4, 8, "actor"),
        (5, 6, "actor"),
        (5, 7, "actor"),
        (5, 8, "director"),
        (6, 5, "actor"),
        (6, 9, "actor"),
        (7, 9, "actress"),
        (8, 9, "actress"),
        (8, 4, "actress"),
    ];
    for &(p, m, r) in cast {
        db.insert(
            "castinfo",
            vec![Value::Int(p), Value::Int(m), Value::text(r)],
        )
        .unwrap();
    }
    db.validate().unwrap();
    db
}

/// The Figure 6 sample database: one `person` table with gender and age,
/// used for the basic-filter examples in the paper.
pub fn figure6_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "person",
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::new("gender", DataType::Text),
                Column::new("age", DataType::Int),
            ],
        )
        .with_primary_key("id"),
    )
    .unwrap();
    db.meta.exclude("person", "name");
    let rows: &[(i64, &str, &str, i64)] = &[
        (1, "Tom Cruise", "Male", 50),
        (2, "Clint Eastwood", "Male", 90),
        (3, "Tom Hanks", "Male", 60),
        (4, "Julia Roberts", "Female", 50),
        (5, "Emma Stone", "Female", 29),
        (6, "Julianne Moore", "Female", 60),
    ];
    for &(id, n, g, a) in rows {
        db.insert(
            "person",
            vec![
                Value::Int(id),
                Value::text(n),
                Value::text(g),
                Value::Int(a),
            ],
        )
        .unwrap();
    }
    db
}
