//! Semantic property definitions and their automatic discovery from the
//! schema graph (paper Section 5, "Semantic property discovery").
//!
//! SQuID looks for semantic properties in three places:
//!
//! 1. **within entity relations** — direct attributes (`person.gender`);
//! 2. **in other relations reachable through one fact table** — categorical
//!    values of property tables (`genre.name` for a movie via
//!    `movietogenre`), and attributes of the fact table itself
//!    (`castinfo.role`);
//! 3. **in other entities** — aggregates of an associated entity's basic
//!    properties, reached through two fact hops (`persontogenre`: how many
//!    Comedy movies a person appeared in) or one fact hop plus a direct
//!    attribute of the associated entity (how many USA movies).
//!
//! Discovery is restricted to a depth of two fact tables, as in the paper.

use squid_engine::{PathStep, Pred, SemiJoin};
use squid_relation::{DataType, Database, Sym, TableRole, Value};

/// How a semantic property is reached from its entity table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropKind {
    /// Categorical attribute of the entity table itself (`person.gender`).
    DirectCategorical {
        /// Attribute column name.
        column: String,
    },
    /// Numeric attribute of the entity table itself (`person.age`).
    DirectNumeric {
        /// Attribute column name.
        column: String,
    },
    /// Categorical value of a property table one fact hop away
    /// (`movie -> movietogenre -> genre.name`). Multi-valued; basic (θ=⊥).
    FactCategorical {
        /// Fact table realizing the association.
        fact: String,
        /// Fact column referencing the entity's primary key.
        fact_entity_col: String,
        /// Fact column referencing the property table's primary key.
        fact_prop_col: String,
        /// Property table.
        prop_table: String,
        /// Property table's value column.
        prop_column: String,
    },
    /// Categorical attribute stored inline in a *single-FK* fact table —
    /// the fact is then a multi-valued attribute of the entity, like
    /// Figure 1's `research(aid, interest)`. Basic (θ = ⊥).
    InlineCategorical {
        /// Fact table.
        fact: String,
        /// Fact column referencing the entity's primary key.
        fact_entity_col: String,
        /// Attribute column of the fact table.
        column: String,
    },
    /// Count of fact rows per (entity, value of a fact-table attribute),
    /// e.g. how many `castinfo` rows with `role = 'actress'` a person has.
    /// Derived (carries θ).
    FactAttrCount {
        /// Fact table.
        fact: String,
        /// Fact column referencing the entity's primary key.
        fact_entity_col: String,
        /// Attribute column of the fact table.
        column: String,
    },
    /// Count of associated mid-entities per attribute value, via one fact
    /// hop (`person -> castinfo -> movie.country`: number of USA movies).
    /// Derived (carries θ). Numeric mid attributes additionally support
    /// suffix-range filters (`year >= c`).
    MidAttrCount {
        /// Fact table from entity to mid entity.
        fact: String,
        /// Fact column referencing the entity.
        fact_entity_col: String,
        /// Fact column referencing the mid entity.
        fact_mid_col: String,
        /// Mid entity table.
        mid_table: String,
        /// Attribute column of the mid table.
        column: String,
        /// Whether the attribute is numeric (enables range filters).
        numeric: bool,
    },
    /// Count of associations to a property value reached through two fact
    /// hops (`person -> castinfo -> movie -> movietogenre -> genre.name`),
    /// the paper's flagship `persontogenre` derived relation.
    TwoHopCount {
        /// First fact table (entity to mid).
        fact1: String,
        /// Column of `fact1` referencing the entity.
        f1_entity_col: String,
        /// Column of `fact1` referencing the mid entity.
        f1_mid_col: String,
        /// Mid entity table.
        mid_table: String,
        /// Second fact table (mid to property).
        fact2: String,
        /// Column of `fact2` referencing the mid entity.
        f2_mid_col: String,
        /// Column of `fact2` referencing the property table.
        f2_prop_col: String,
        /// Property table.
        prop_table: String,
        /// Property table's value column.
        prop_column: String,
    },
}

impl PropKind {
    /// Is this a derived property (carries an association strength θ)?
    pub fn is_derived(&self) -> bool {
        matches!(
            self,
            PropKind::FactAttrCount { .. }
                | PropKind::MidAttrCount { .. }
                | PropKind::TwoHopCount { .. }
        )
    }
}

/// A discovered semantic property of one entity table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyDef {
    /// Stable, human-readable identifier (unique within the αDB).
    pub id: String,
    /// Entity table the property belongs to.
    pub entity: String,
    /// Display name of the attribute (`gender`, `genre`, `country`...).
    pub attr_name: String,
    /// Structure of the property.
    pub kind: PropKind,
}

impl PropertyDef {
    /// Build the [`SemiJoin`] that expresses "entity has this property with
    /// value `v` (and count ≥ `theta` for derived properties)" against the
    /// ORIGINAL database. Direct attributes return `None` (they are plain
    /// root predicates, see [`PropertyDef::root_pred`]).
    pub fn semi_join(&self, pk_column: &str, v: &Value, theta: u64) -> Option<SemiJoin> {
        match &self.kind {
            PropKind::DirectCategorical { .. } | PropKind::DirectNumeric { .. } => None,
            PropKind::FactCategorical {
                fact,
                fact_entity_col,
                fact_prop_col,
                prop_table,
                prop_column,
            } => Some(SemiJoin::exists(vec![
                PathStep::new(fact, pk_column, fact_entity_col),
                PathStep::new(prop_table, fact_prop_col, "id").filter(Pred::eq(prop_column, *v)),
            ])),
            PropKind::InlineCategorical {
                fact,
                fact_entity_col,
                column,
            } => Some(SemiJoin::exists(vec![PathStep::new(
                fact,
                pk_column,
                fact_entity_col,
            )
            .filter(Pred::eq(column, *v))])),
            PropKind::FactAttrCount {
                fact,
                fact_entity_col,
                column,
            } => Some(SemiJoin::at_least(
                theta,
                vec![PathStep::new(fact, pk_column, fact_entity_col).filter(Pred::eq(column, *v))],
            )),
            PropKind::MidAttrCount {
                fact,
                fact_entity_col,
                fact_mid_col,
                mid_table,
                column,
                ..
            } => Some(SemiJoin::at_least(
                theta,
                vec![
                    PathStep::new(fact, pk_column, fact_entity_col),
                    PathStep::new(mid_table, fact_mid_col, "id").filter(Pred::eq(column, *v)),
                ],
            )),
            PropKind::TwoHopCount {
                fact1,
                f1_entity_col,
                f1_mid_col,
                fact2,
                f2_mid_col,
                f2_prop_col,
                prop_table,
                prop_column,
                ..
            } => Some(SemiJoin::at_least(
                theta,
                vec![
                    PathStep::new(fact1, pk_column, f1_entity_col),
                    PathStep::new(fact2, f1_mid_col, f2_mid_col),
                    PathStep::new(prop_table, f2_prop_col, "id").filter(Pred::eq(prop_column, *v)),
                ],
            )),
        }
    }

    /// Same as [`PropertyDef::semi_join`] but for a numeric mid-attribute
    /// *range* filter (`attr >= cut`, count ≥ θ), e.g. "≥10 movies released
    /// after 2010".
    pub fn semi_join_ge(&self, pk_column: &str, cut: &Value, theta: u64) -> Option<SemiJoin> {
        match &self.kind {
            PropKind::MidAttrCount {
                fact,
                fact_entity_col,
                fact_mid_col,
                mid_table,
                column,
                numeric: true,
            } => Some(SemiJoin::at_least(
                theta,
                vec![
                    PathStep::new(fact, pk_column, fact_entity_col),
                    PathStep::new(mid_table, fact_mid_col, "id").filter(Pred::ge(column, *cut)),
                ],
            )),
            _ => None,
        }
    }

    /// For direct attributes: the root predicate expressing `value` /
    /// `[low, high]`.
    pub fn root_pred(&self, v: &Value) -> Option<Pred> {
        match &self.kind {
            PropKind::DirectCategorical { column } => Some(Pred::eq(column, *v)),
            PropKind::DirectNumeric { column } => Some(Pred::eq(column, *v)),
            _ => None,
        }
    }
}

/// Value-patchable query fragments prebuilt per property at αDB build
/// time. Abduced queries are regenerated on every interactive session
/// turn; with the fragments, generation clones a small interned template
/// and patches in the filter's value and θ instead of re-interning every
/// table and column name of every join path.
#[derive(Debug, Clone, Default)]
pub struct QueryFragments {
    /// Template for [`PropertyDef::semi_join`]; `None` for direct kinds.
    sj: Option<SjTemplate>,
    /// Template for [`PropertyDef::semi_join_ge`] (numeric mid attributes).
    sj_ge: Option<SjTemplate>,
    /// Semi-join over the materialized derived relation (the αDB query
    /// form), when one was materialized.
    adb_sj: Option<SemiJoin>,
    /// Interned attribute column for direct-kind root predicates.
    root_col: Option<Sym>,
}

/// A [`SemiJoin`] with the position of its value-carrying predicate.
#[derive(Debug, Clone)]
struct SjTemplate {
    sj: SemiJoin,
    /// `(path step, predicate)` holding the placeholder value.
    at: (usize, usize),
    /// Whether θ flows into `min_count` (derived kinds).
    theta_min_count: bool,
}

impl SjTemplate {
    /// Wrap a template emitted with `Value::Null` as the placeholder.
    fn of(sj: SemiJoin, theta_min_count: bool) -> Option<SjTemplate> {
        let at = sj.path.iter().enumerate().find_map(|(si, step)| {
            step.predicates
                .iter()
                .position(|p| p.value.is_null())
                .map(|pi| (si, pi))
        })?;
        Some(SjTemplate {
            sj,
            at,
            theta_min_count,
        })
    }

    fn instantiate(&self, v: &Value, theta: u64) -> SemiJoin {
        let mut sj = self.sj.clone();
        if self.theta_min_count {
            sj.min_count = theta;
        }
        sj.path[self.at.0].predicates[self.at.1].value = *v;
        sj
    }
}

impl QueryFragments {
    /// Prebuild the fragments for one property of an entity with primary
    /// key column `pk_column` (and, when materialized, the derived
    /// relation `derived_table`).
    pub fn build(def: &PropertyDef, pk_column: &str, derived_table: Option<&str>) -> Self {
        let derived = def.kind.is_derived();
        let sj = def
            .semi_join(pk_column, &Value::Null, 1)
            .and_then(|sj| SjTemplate::of(sj, derived));
        let sj_ge = def
            .semi_join_ge(pk_column, &Value::Null, 1)
            .and_then(|sj| SjTemplate::of(sj, true));
        let adb_sj = derived_table.map(|table| {
            SemiJoin::exists(vec![PathStep::new(table, pk_column, "entity_id")
                .filter(Pred::eq("value", Value::Null))
                .filter(Pred::ge("count", Value::Null))])
        });
        let root_col = match &def.kind {
            PropKind::DirectCategorical { column } | PropKind::DirectNumeric { column } => {
                Some(Sym::intern(column))
            }
            _ => None,
        };
        QueryFragments {
            sj,
            sj_ge,
            adb_sj,
            root_col,
        }
    }

    /// [`PropertyDef::semi_join`] from the prebuilt template.
    pub fn semi_join(&self, v: &Value, theta: u64) -> Option<SemiJoin> {
        Some(self.sj.as_ref()?.instantiate(v, theta))
    }

    /// [`PropertyDef::semi_join_ge`] from the prebuilt template.
    pub fn semi_join_ge(&self, cut: &Value, theta: u64) -> Option<SemiJoin> {
        Some(self.sj_ge.as_ref()?.instantiate(cut, theta))
    }

    /// Semi-join over the materialized derived relation expressing
    /// "associated with `value` at least `theta` times" (Example 2.2's SPJ
    /// form on the αDB). `None` when the relation was not materialized.
    pub fn adb_semi_join(&self, value: &Value, theta: u64) -> Option<SemiJoin> {
        let mut sj = self.adb_sj.clone()?;
        sj.path[0].predicates[0].value = *value;
        sj.path[0].predicates[1].value = Value::Int(theta as i64);
        Some(sj)
    }

    /// Interned attribute column for direct-kind root predicates.
    pub fn root_col(&self) -> Option<Sym> {
        self.root_col
    }
}

/// Discover all semantic properties of every entity table in `db`,
/// respecting the administrator's non-semantic exclusions.
pub fn discover_properties(db: &Database) -> Vec<PropertyDef> {
    let mut out = Vec::new();
    for entity in db.tables_with_role(TableRole::Entity) {
        discover_for_entity(db, entity, &mut out);
    }
    out
}

fn value_columns<'a>(
    db: &'a Database,
    table: &str,
) -> impl Iterator<Item = (usize, &'a squid_relation::Column)> + 'a {
    let t = db.table(table).expect("table exists");
    let schema = t.schema();
    let table_name = table.to_string();
    schema.columns.iter().enumerate().filter(move |(i, _)| {
        schema.primary_key != Some(*i)
            && schema.foreign_key_on(*i).is_none()
            && !db
                .meta
                .is_non_semantic(&table_name, &schema.columns[*i].name)
    })
}

fn discover_for_entity(db: &Database, entity: &str, out: &mut Vec<PropertyDef>) {
    // 1. Direct attributes.
    for (_, col) in value_columns(db, entity) {
        let kind = match col.dtype {
            DataType::Int | DataType::Float => PropKind::DirectNumeric {
                column: col.name.clone(),
            },
            DataType::Text | DataType::Bool => PropKind::DirectCategorical {
                column: col.name.clone(),
            },
        };
        out.push(PropertyDef {
            id: format!("{entity}.{}", col.name),
            entity: entity.to_string(),
            attr_name: col.name.clone(),
            kind,
        });
    }

    // 2a. Fact-table attributes (castinfo.role, research.interest). This
    // covers single-FK fact tables too — a fact with only an entity key
    // plus inline values is how Figure 1 stores research interests — and
    // deduplicates facts reachable through several associations.
    let mut seen_facts: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for fact_table in db.tables_with_role(TableRole::Fact) {
        let fact_schema = db.table(fact_table).expect("fact exists").schema();
        let Some(fk) = fact_schema
            .foreign_keys
            .iter()
            .find(|fk| fk.ref_table == entity)
        else {
            continue;
        };
        if !seen_facts.insert(fact_table) {
            continue;
        }
        let fact_entity_col = fact_schema.columns[fk.column].name.clone();
        let single_fk = fact_schema.foreign_keys.len() == 1;
        for (_, col) in value_columns(db, fact_table) {
            // In a single-FK fact the attribute IS a multi-valued basic
            // property of the entity (research.interest); in an
            // entity-to-entity fact it qualifies the association and is
            // counted (castinfo.role, which τa gates — the IQ3 story).
            let kind = if single_fk && matches!(col.dtype, DataType::Text | DataType::Bool) {
                PropKind::InlineCategorical {
                    fact: fact_table.to_string(),
                    fact_entity_col: fact_entity_col.clone(),
                    column: col.name.clone(),
                }
            } else {
                PropKind::FactAttrCount {
                    fact: fact_table.to_string(),
                    fact_entity_col: fact_entity_col.clone(),
                    column: col.name.clone(),
                }
            };
            out.push(PropertyDef {
                id: format!("{entity}~{fact_table}.{}", col.name),
                entity: entity.to_string(),
                attr_name: col.name.clone(),
                kind,
            });
        }
    }

    // 2b/3. One fact hop to another table (property or mid entity).
    for assoc in db.associations_of(entity) {
        let fact = assoc.fact_table;
        let fact_schema = db.table(fact).expect("fact exists").schema().clone();
        let fact_entity_col = fact_schema.columns[assoc.from_column].name.clone();
        let fact_target_col = fact_schema.columns[assoc.to_column].name.clone();
        let target = assoc.to_table;
        let target_role = db.table(target).expect("target exists").schema().role;

        match target_role {
            // 2b. Property table: basic categorical property.
            TableRole::Property => {
                for (_, col) in value_columns(db, target) {
                    out.push(PropertyDef {
                        id: format!("{entity}~{fact}~{target}.{}", col.name),
                        entity: entity.to_string(),
                        attr_name: format!("{target}.{}", col.name),
                        kind: PropKind::FactCategorical {
                            fact: fact.to_string(),
                            fact_entity_col: fact_entity_col.clone(),
                            fact_prop_col: fact_target_col.clone(),
                            prop_table: target.to_string(),
                            prop_column: col.name.clone(),
                        },
                    });
                }
            }
            // 3. Mid entity: identity + derived properties.
            TableRole::Entity => {
                if target == entity {
                    continue; // no self-associations (keeps the space sane)
                }
                // 3a'. Mid-entity *identity* properties: "associated with
                // the mid entity whose display value is X" (cast of Pulp
                // Fiction, movies featuring Tom Cruise). These are basic
                // (θ = ⊥): the display columns excluded from direct-attr
                // discovery serve as the identity value.
                let mid_schema = db.table(target).expect("mid exists").schema();
                for (ci, c) in mid_schema.columns.iter().enumerate() {
                    let is_display = mid_schema.primary_key != Some(ci)
                        && mid_schema.foreign_key_on(ci).is_none()
                        && c.dtype == DataType::Text
                        && db.meta.is_non_semantic(target, &c.name);
                    if !is_display {
                        continue;
                    }
                    out.push(PropertyDef {
                        id: format!("{entity}~{fact}~{target}!{}", c.name),
                        entity: entity.to_string(),
                        attr_name: format!("{target}.{}", c.name),
                        kind: PropKind::FactCategorical {
                            fact: fact.to_string(),
                            fact_entity_col: fact_entity_col.clone(),
                            fact_prop_col: fact_target_col.clone(),
                            prop_table: target.to_string(),
                            prop_column: c.name.clone(),
                        },
                    });
                }
                // 3a. Mid-entity attributes.
                for (_, col) in value_columns(db, target) {
                    let numeric = matches!(col.dtype, DataType::Int | DataType::Float);
                    out.push(PropertyDef {
                        id: format!("{entity}~{fact}~{target}.{}", col.name),
                        entity: entity.to_string(),
                        attr_name: format!("{target}.{}", col.name),
                        kind: PropKind::MidAttrCount {
                            fact: fact.to_string(),
                            fact_entity_col: fact_entity_col.clone(),
                            fact_mid_col: fact_target_col.clone(),
                            mid_table: target.to_string(),
                            column: col.name.clone(),
                            numeric,
                        },
                    });
                }
                // 3b. Mid entity's property tables (two fact hops).
                for assoc2 in db.associations_of(target) {
                    if db.table(assoc2.to_table).expect("exists").schema().role
                        != TableRole::Property
                    {
                        continue;
                    }
                    let f2_schema = db
                        .table(assoc2.fact_table)
                        .expect("fact2 exists")
                        .schema()
                        .clone();
                    let f2_mid_col = f2_schema.columns[assoc2.from_column].name.clone();
                    let f2_prop_col = f2_schema.columns[assoc2.to_column].name.clone();
                    for (_, col) in value_columns(db, assoc2.to_table) {
                        out.push(PropertyDef {
                            id: format!(
                                "{entity}~{fact}~{target}~{}~{}.{}",
                                assoc2.fact_table, assoc2.to_table, col.name
                            ),
                            entity: entity.to_string(),
                            attr_name: format!("{}.{}", assoc2.to_table, col.name),
                            kind: PropKind::TwoHopCount {
                                fact1: fact.to_string(),
                                f1_entity_col: fact_entity_col.clone(),
                                f1_mid_col: fact_target_col.clone(),
                                mid_table: target.to_string(),
                                fact2: assoc2.fact_table.to_string(),
                                f2_mid_col: f2_mid_col.clone(),
                                f2_prop_col: f2_prop_col.clone(),
                                prop_table: assoc2.to_table.to_string(),
                                prop_column: col.name.clone(),
                            },
                        });
                    }
                }
            }
            TableRole::Fact => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::mini_imdb;

    #[test]
    fn discovers_direct_attributes() {
        let db = mini_imdb();
        let props = discover_properties(&db);
        assert!(props.iter().any(|p| p.id == "person.gender"));
        assert!(props.iter().any(
            |p| p.id == "person.birth_year" && matches!(p.kind, PropKind::DirectNumeric { .. })
        ));
        // Primary keys and names are excluded.
        assert!(!props.iter().any(|p| p.id == "person.id"));
        assert!(!props.iter().any(|p| p.id == "person.name"));
    }

    #[test]
    fn discovers_fact_categorical_for_movie_genre() {
        let db = mini_imdb();
        let props = discover_properties(&db);
        let p = props
            .iter()
            .find(|p| p.entity == "movie" && p.attr_name == "genre.name")
            .expect("movie genre property");
        assert!(matches!(p.kind, PropKind::FactCategorical { .. }));
        assert!(!p.kind.is_derived());
    }

    #[test]
    fn discovers_two_hop_person_to_genre() {
        let db = mini_imdb();
        let props = discover_properties(&db);
        let p = props
            .iter()
            .find(|p| p.entity == "person" && matches!(&p.kind, PropKind::TwoHopCount { prop_table, .. } if prop_table == "genre"))
            .expect("persontogenre derived property");
        assert!(p.kind.is_derived());
        assert_eq!(p.attr_name, "genre.name");
    }

    #[test]
    fn discovers_mid_attr_counts_both_directions() {
        let db = mini_imdb();
        let props = discover_properties(&db);
        // person -> movie.country (number of USA movies an actor appears in)
        assert!(props.iter().any(|p| p.entity == "person"
            && p.attr_name == "movie.country"
            && matches!(p.kind, PropKind::MidAttrCount { numeric: false, .. })));
        // movie -> person.country (number of American cast members)
        assert!(props
            .iter()
            .any(|p| p.entity == "movie" && p.attr_name == "person.country"));
        // numeric mid attribute
        assert!(props.iter().any(|p| p.entity == "person"
            && p.attr_name == "movie.year"
            && matches!(p.kind, PropKind::MidAttrCount { numeric: true, .. })));
    }

    #[test]
    fn discovers_fact_attr_role() {
        let db = mini_imdb();
        let props = discover_properties(&db);
        assert!(props.iter().any(|p| p.entity == "person"
            && p.attr_name == "role"
            && matches!(p.kind, PropKind::FactAttrCount { .. })));
    }

    #[test]
    fn property_ids_are_unique() {
        let db = mini_imdb();
        let props = discover_properties(&db);
        let mut ids: Vec<_> = props.iter().map(|p| p.id.clone()).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn semi_join_emission_for_two_hop() {
        let db = mini_imdb();
        let props = discover_properties(&db);
        let p = props
            .iter()
            .find(|p| p.entity == "person" && matches!(&p.kind, PropKind::TwoHopCount { prop_table, .. } if prop_table == "genre"))
            .unwrap();
        let sj = p
            .semi_join("id", &Value::text("Comedy"), 40)
            .expect("derived semi-join");
        assert_eq!(sj.min_count, 40);
        assert_eq!(sj.path.len(), 3);
        assert_eq!(sj.path[0].table, "castinfo");
        assert_eq!(sj.path[2].table, "genre");
    }

    #[test]
    fn direct_props_emit_root_preds_not_semi_joins() {
        let db = mini_imdb();
        let props = discover_properties(&db);
        let p = props.iter().find(|p| p.id == "person.gender").unwrap();
        assert!(p.semi_join("id", &Value::text("Male"), 1).is_none());
        let pred = p.root_pred(&Value::text("Male")).unwrap();
        assert_eq!(pred.column, "gender");
    }

    #[test]
    fn range_semi_join_only_for_numeric_mid_attrs() {
        let db = mini_imdb();
        let props = discover_properties(&db);
        let year = props
            .iter()
            .find(|p| p.entity == "person" && p.attr_name == "movie.year")
            .unwrap();
        assert!(year.semi_join_ge("id", &Value::Int(2010), 10).is_some());
        let country = props
            .iter()
            .find(|p| p.entity == "person" && p.attr_name == "movie.country")
            .unwrap();
        assert!(country.semi_join_ge("id", &Value::Int(0), 1).is_none());
    }
}

#[cfg(test)]
mod identity_tests {
    use super::*;
    use crate::test_fixtures::mini_imdb;

    #[test]
    fn identity_properties_for_mid_entities() {
        let db = mini_imdb();
        let props = discover_properties(&db);
        // person ~ castinfo ~ movie!title: "appeared in the movie titled X".
        let p = props
            .iter()
            .find(|p| p.id == "person~castinfo~movie!title")
            .expect("movie identity property for person");
        assert!(matches!(p.kind, PropKind::FactCategorical { .. }));
        assert!(!p.kind.is_derived());
        // movie ~ castinfo ~ person!name: "features the person named X".
        assert!(props.iter().any(|p| p.id == "movie~castinfo~person!name"));
    }

    #[test]
    fn identity_semi_join_is_a_plain_exists() {
        let db = mini_imdb();
        let props = discover_properties(&db);
        let p = props
            .iter()
            .find(|p| p.id == "movie~castinfo~person!name")
            .unwrap();
        let sj = p.semi_join("id", &Value::text("Jim Carrey"), 1).unwrap();
        assert_eq!(sj.min_count, 1);
        assert_eq!(sj.path.len(), 2);
        assert_eq!(sj.path[1].table, "person");
    }
}
