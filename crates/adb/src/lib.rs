//! # squid-adb
//!
//! The abduction-ready database (αDB) of the SQuID paper, Section 5: an
//! offline module that walks the schema graph to discover basic and derived
//! semantic properties, precomputes their selectivity statistics, builds the
//! global inverted column index for entity lookup, and materializes derived
//! relations (like `persontogenre`) so that SPJAI queries on the original
//! database reduce to SPJ queries on the αDB.

#![warn(missing_docs)]

pub mod build;
pub mod properties;
pub mod snapshot;
pub mod stats;
pub mod test_fixtures;

pub use build::{ADb, AdbConfig, BuildStats, EntityProps, PropId, Property};
pub use properties::{discover_properties, PropKind, PropertyDef, QueryFragments};
pub use stats::{
    CategoricalStats, DerivedNumericStats, DerivedStats, FilterFingerprint, FilterSetCache,
    NumericStats, PropStats, SharedCacheStats, SharedFilterSetCache, SHARED_CACHE_SHARDS,
};
